"""Setup shim.

This environment has no ``wheel`` package and no network, so PEP 660
editable installs (which require ``bdist_wheel``) fail. Keeping a
``setup.py`` lets ``pip install -e . --no-use-pep517`` fall back to the
legacy ``setup.py develop`` path. All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
