"""Tests for unit helpers and identifier generation."""

import pytest

from repro.common.units import KB, MB, GB, USEC, MSEC, fmt_bytes, fmt_rate, fmt_time
from repro.common.idgen import IdGenerator


def test_size_constants():
    assert KB == 1024
    assert MB == 1024 * 1024
    assert GB == 1024**3


def test_time_constants():
    assert MSEC == pytest.approx(1e-3)
    assert USEC == pytest.approx(1e-6)


def test_fmt_bytes():
    assert fmt_bytes(100) == "100 B"
    assert fmt_bytes(16 * KB) == "16.0 KiB"
    assert fmt_bytes(8 * MB) == "8.0 MiB"


def test_fmt_rate():
    assert fmt_rate(4_200_000) == "4.20 Mrec/s"
    assert fmt_rate(12_500) == "12.5 Krec/s"
    assert fmt_rate(900) == "900 rec/s"


def test_fmt_time():
    assert fmt_time(0) == "0 s"
    assert fmt_time(2.5) == "2.500 s"
    assert fmt_time(1.5e-3) == "1.500 ms"
    assert fmt_time(250e-6) == "250.0 us"
    assert fmt_time(30e-9) == "30.0 ns"


def test_idgen_sequential():
    gen = IdGenerator()
    assert [gen.next() for _ in range(3)] == [0, 1, 2]
    assert gen.peek() == 3
    assert gen.next() == 3


def test_idgen_start_and_reserve():
    gen = IdGenerator(start=10)
    block = gen.reserve(4)
    assert list(block) == [10, 11, 12, 13]
    assert gen.next() == 14
    assert list(gen.reserve(0)) == []
    with pytest.raises(ValueError):
        gen.reserve(-1)
