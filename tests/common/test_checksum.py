"""Unit and property tests for the CRC-32C substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.common.checksum import crc32c, crc32c_update, crc32c_combine, verify_crc32c
from repro.common.errors import ChecksumError

# Known-answer tests from RFC 3720 (iSCSI) appendix B.4.
KNOWN = [
    (b"", 0x00000000),
    (b"\x00" * 32, 0x8A9136AA),
    (b"\xff" * 32, 0x62A8AB43),
    (bytes(range(32)), 0x46DD794E),
    (bytes(range(31, -1, -1)), 0x113FDB5C),
    (b"123456789", 0xE3069283),
]


@pytest.mark.parametrize("data,expected", KNOWN)
def test_known_answers(data, expected):
    assert crc32c(data) == expected


def test_incremental_equals_oneshot():
    data = bytes(range(256)) * 7
    whole = crc32c(data)
    crc = 0
    for i in range(0, len(data), 13):
        crc = crc32c_update(crc, data[i : i + 13])
    assert crc == whole


@given(st.binary(max_size=512), st.binary(max_size=512))
def test_combine_matches_concatenation(a, b):
    assert crc32c_combine(crc32c(a), crc32c(b), len(b)) == crc32c(a + b)


@given(st.binary(min_size=1, max_size=256), st.integers(0, 255))
def test_single_byte_corruption_detected(data, flip):
    # Flipping any byte to a different value must change the checksum.
    idx = flip % len(data)
    mutated = bytearray(data)
    mutated[idx] ^= 0xA5
    assert crc32c(data) != crc32c(bytes(mutated))


def test_verify_raises_with_context():
    with pytest.raises(ChecksumError) as exc:
        verify_crc32c(b"hello", 0xDEADBEEF, context="unit test")
    assert "unit test" in str(exc.value)
    assert exc.value.expected == 0xDEADBEEF


def test_verify_passes():
    verify_crc32c(b"hello", crc32c(b"hello"))


@given(st.binary(max_size=1024))
def test_accepts_memoryview_and_bytearray(data):
    assert crc32c(memoryview(data)) == crc32c(bytearray(data)) == crc32c(data)


def test_combine_empty_suffix_is_identity():
    c = crc32c(b"abc")
    assert crc32c_combine(c, 0, 0) == c
