"""Unit and property tests for the CRC-32C substrate."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common.checksum import (
    BULK_THRESHOLD,
    crc32c,
    crc32c_bulk,
    crc32c_combine,
    crc32c_lanes,
    crc32c_update,
    verify_crc32c,
)
from repro.common.errors import ChecksumError

# Known-answer tests from RFC 3720 (iSCSI) appendix B.4.
KNOWN = [
    (b"", 0x00000000),
    (b"\x00" * 32, 0x8A9136AA),
    (b"\xff" * 32, 0x62A8AB43),
    (bytes(range(32)), 0x46DD794E),
    (bytes(range(31, -1, -1)), 0x113FDB5C),
    (b"123456789", 0xE3069283),
]


@pytest.mark.parametrize("data,expected", KNOWN)
def test_known_answers(data, expected):
    assert crc32c(data) == expected


def test_incremental_equals_oneshot():
    data = bytes(range(256)) * 7
    whole = crc32c(data)
    crc = 0
    for i in range(0, len(data), 13):
        crc = crc32c_update(crc, data[i : i + 13])
    assert crc == whole


@given(st.binary(max_size=512), st.binary(max_size=512))
def test_combine_matches_concatenation(a, b):
    assert crc32c_combine(crc32c(a), crc32c(b), len(b)) == crc32c(a + b)


@given(st.binary(min_size=1, max_size=256), st.integers(0, 255))
def test_single_byte_corruption_detected(data, flip):
    # Flipping any byte to a different value must change the checksum.
    idx = flip % len(data)
    mutated = bytearray(data)
    mutated[idx] ^= 0xA5
    assert crc32c(data) != crc32c(bytes(mutated))


def test_verify_raises_with_context():
    with pytest.raises(ChecksumError) as exc:
        verify_crc32c(b"hello", 0xDEADBEEF, context="unit test")
    assert "unit test" in str(exc.value)
    assert exc.value.expected == 0xDEADBEEF


def test_verify_passes():
    verify_crc32c(b"hello", crc32c(b"hello"))


@given(st.binary(max_size=1024))
def test_accepts_memoryview_and_bytearray(data):
    assert crc32c(memoryview(data)) == crc32c(bytearray(data)) == crc32c(data)


def test_combine_empty_suffix_is_identity():
    c = crc32c(b"abc")
    assert crc32c_combine(c, 0, 0) == c


# -- vectorized bulk path ------------------------------------------------------


def scalar_crc(data: bytes) -> int:
    """Reference CRC through the byte-at-a-time path only: feed slices
    smaller than the bulk dispatch threshold."""
    crc = 0
    for i in range(0, len(data), 1024):
        crc = crc32c_update(crc, data[i : i + 1024])
    return crc


def pattern(n: int, seed: int = 0) -> bytes:
    return bytes((seed + i * 37) % 256 for i in range(n))


@pytest.mark.parametrize(
    "n",
    [0, 1, 15, 16, 17, 31, 32, 33, 255, 4095, 4096, 4097, 16 * 1024, 100_003],
)
def test_bulk_matches_scalar_at_boundaries(n):
    data = pattern(n)
    assert crc32c_bulk(data) == scalar_crc(data)


def test_bulk_handles_odd_lane_counts():
    # Lane counts that are not powers of two exercise the sequential
    # remainder fold after the pairwise log-fold.
    for lanes in (2, 3, 5, 6, 7, 9, 31):
        data = pattern(lanes * 16 + 5, seed=lanes)
        assert crc32c_bulk(data) == scalar_crc(data)


def test_dispatch_above_threshold_is_transparent():
    data = pattern(3 * BULK_THRESHOLD + 7)
    assert crc32c(data) == scalar_crc(data)
    # Non-zero seed takes the combine branch of the dispatcher.
    seed = crc32c(b"prefix")
    assert crc32c_update(seed, data) == crc32c(b"prefix" + data)


@given(st.binary(min_size=0, max_size=3 * 4096))
def test_bulk_matches_scalar_property(data):
    assert crc32c_bulk(data) == scalar_crc(data)


@given(st.binary(max_size=256), st.integers(4096, 8192), st.integers(0, 255))
def test_seeded_bulk_update_property(prefix, n, seed):
    data = pattern(n, seed)
    assert crc32c_update(crc32c(prefix), data) == scalar_crc(prefix + data)


def test_lanes_matches_per_lane_scalar():
    rows, lanes = 27, 13
    data = pattern(rows * lanes, seed=3)
    m = (
        np.frombuffer(data, dtype=np.uint8)
        .reshape(rows, lanes)
        .astype(np.uint32)
    )
    expected = [
        scalar_crc(bytes(data[lane::lanes])) for lane in range(lanes)
    ]
    assert crc32c_lanes(m).tolist() == expected


def test_lanes_empty_rows():
    m = np.zeros((0, 4), dtype=np.uint32)
    assert crc32c_lanes(m).tolist() == [0, 0, 0, 0]
