"""ThroughputMeter and LatencyReservoir tests."""

import threading

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.common.metrics import LatencyReservoir, ThroughputMeter


class TestThroughputMeter:
    def test_rate_over_window(self):
        meter = ThroughputMeter()
        for t in range(10):
            meter.add(100, t * 0.1)
        # Window [0.3, 0.8): events at 0.3..0.7 -> 500 events / 0.5 s.
        assert meter.rate(0.3, 0.8) == pytest.approx(1000.0)
        assert meter.total == 1000
        assert len(meter) == 10

    def test_empty_meter(self):
        meter = ThroughputMeter()
        assert meter.rate(0.0, 1.0) == 0.0
        assert meter.total == 0

    def test_degenerate_window_rejected(self):
        meter = ThroughputMeter()
        with pytest.raises(ConfigError):
            meter.rate(1.0, 1.0)

    def test_per_second_series(self):
        meter = ThroughputMeter()
        meter.add(10, 0.5)
        meter.add(20, 1.5)
        meter.add(30, 1.9)
        series = meter.per_second_series(0.0, 2.0)
        assert list(series) == [10.0, 50.0]

    def test_per_second_series_empty(self):
        meter = ThroughputMeter()
        assert meter.per_second_series(0.0, 3.0).tolist() == [0.0, 0.0, 0.0]

    def test_thread_safe_concurrent_adds(self):
        meter = ThroughputMeter(thread_safe=True)
        threads_n, adds_n = 8, 1000

        def work(t):
            for i in range(adds_n):
                meter.add(1, 0.5 + (i % 3) * 0.0001)

        threads = [threading.Thread(target=work, args=(t,)) for t in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert meter.total == threads_n * adds_n
        assert len(meter) == threads_n * adds_n
        assert meter.rate(0.0, 1.0) == pytest.approx(threads_n * adds_n)

    def test_thread_safe_query_during_adds(self):
        """Queries taken mid-stream must see a consistent snapshot: the
        masked count sum can never exceed the number of timestamps seen."""
        meter = ThroughputMeter(thread_safe=True)

        def producer():
            for i in range(20_000):
                meter.add(1, float(i % 10) / 10.0)

        thread = threading.Thread(target=producer)
        thread.start()
        try:
            for _ in range(50):
                total = meter.total
                assert meter.rate(0.0, 1.0) >= total  # window covers all adds
                assert len(meter.per_second_series(0.0, 1.0)) == 1
        finally:
            thread.join()
        assert meter.total == 20_000


class TestLatencyReservoir:
    def test_percentiles(self):
        res = LatencyReservoir()
        for v in range(1, 101):
            res.add(float(v))
        assert res.percentile(50) == pytest.approx(50.5)
        assert res.mean() == pytest.approx(50.5)
        summary = res.summary()
        assert set(summary) == {"mean", "p50", "p95", "p99"}
        assert res.count == 100

    def test_empty_reservoir_nan(self):
        res = LatencyReservoir()
        assert np.isnan(res.percentile(50))
        assert np.isnan(res.mean())

    def test_decimation_bounds_memory(self):
        res = LatencyReservoir(capacity=64)
        for v in range(10_000):
            res.add(float(v))
        assert len(res._samples) < 128
        assert res.count == 10_000
        # Percentiles remain sane after decimation.
        assert 3000 < res.percentile(50) < 7000

    def test_deterministic(self):
        def build():
            res = LatencyReservoir(capacity=32)
            for v in range(1000):
                res.add(v * 0.001)
            return res.summary()

        assert build() == build()

    def test_capacity_validated(self):
        with pytest.raises(ConfigError):
            LatencyReservoir(capacity=0)
