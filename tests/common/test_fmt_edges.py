"""Formatting helpers: the edges not covered by the basic unit tests."""

from repro.common.units import GB, fmt_bytes, fmt_rate, fmt_time


def test_fmt_bytes_large_units():
    assert fmt_bytes(3 * GB) == "3.0 GiB"
    assert fmt_bytes(5 * 1024 * GB) == "5.0 TiB"
    # Beyond TiB stays in TiB rather than inventing units.
    assert fmt_bytes(5000 * 1024 * GB).endswith("TiB")


def test_fmt_bytes_zero_and_negative():
    assert fmt_bytes(0) == "0 B"
    assert fmt_bytes(-512) == "-512 B"


def test_fmt_rate_boundaries():
    assert fmt_rate(1e6) == "1.00 Mrec/s"
    assert fmt_rate(999_999).endswith("Krec/s")
    assert fmt_rate(1000).endswith("Krec/s")
    assert fmt_rate(999.4) == "999 rec/s"


def test_fmt_time_negative():
    assert fmt_time(-2.0) == "-2.000 s"
