"""Flow control: credit window and adaptive batcher (deterministic)."""

import threading

import pytest

from repro.common.errors import ConfigError
from repro.replication.flow import AdaptiveBatcher, FlowController


# -- FlowController ----------------------------------------------------------


def test_unbounded_window_always_admits():
    flow = FlowController(0)
    assert flow.try_acquire(1 << 40)
    assert flow.credit() > 1 << 40
    flow.release(1 << 40)
    assert flow.in_flight_bytes == 0


def test_window_bounds_in_flight_bytes():
    flow = FlowController(100)
    assert flow.try_acquire(60)
    assert flow.credit() == 40
    assert not flow.try_acquire(50)
    assert flow.try_acquire(40)
    assert flow.credit() == 0
    flow.release(60)
    assert flow.in_flight_bytes == 40
    assert flow.try_acquire(50)


def test_oversized_batch_admitted_when_idle():
    # A batch larger than the whole window must still ship (otherwise it
    # would starve forever) — but only with nothing else in flight.
    flow = FlowController(100)
    assert flow.try_acquire(500)
    assert not flow.try_acquire(1)
    flow.release(500)
    assert flow.try_acquire(1)
    assert not flow.try_acquire(500)


def test_acquire_times_out_without_credit():
    flow = FlowController(10)
    assert flow.acquire(10)
    assert not flow.acquire(5, timeout=0.01)
    assert flow.in_flight_bytes == 10


def test_release_unblocks_waiter():
    flow = FlowController(10)
    assert flow.try_acquire(10)
    acquired = []
    waiter = threading.Thread(target=lambda: acquired.append(flow.acquire(8, timeout=5.0)))
    waiter.start()
    flow.release(10)
    waiter.join(timeout=5.0)
    assert acquired == [True]
    assert flow.in_flight_bytes == 8


def test_release_floors_at_zero():
    flow = FlowController(10)
    flow.release(99)
    assert flow.in_flight_bytes == 0


def test_negative_window_rejected():
    with pytest.raises(ConfigError):
        FlowController(-1)


# -- AdaptiveBatcher ---------------------------------------------------------


def test_batcher_validation():
    with pytest.raises(ConfigError):
        AdaptiveBatcher(min_target_chunks=0)
    with pytest.raises(ConfigError):
        AdaptiveBatcher(min_target_chunks=8, max_target_chunks=4)
    with pytest.raises(ConfigError):
        AdaptiveBatcher(linger_s=-1.0)


def test_no_linger_when_disabled_or_idle():
    b = AdaptiveBatcher(min_target_chunks=4, linger_s=0.0)
    assert b.linger_delay(2, now=0.0) == 0.0
    b = AdaptiveBatcher(min_target_chunks=4, linger_s=1.0)
    assert b.linger_delay(0, now=0.0) == 0.0


def test_full_batch_ships_immediately():
    b = AdaptiveBatcher(min_target_chunks=4, linger_s=1.0)
    assert b.linger_delay(4, now=0.0) == 0.0
    assert b.linger_delay(7, now=0.0) == 0.0


def test_linger_window_counts_from_last_ship():
    b = AdaptiveBatcher(min_target_chunks=4, linger_s=1.0)
    b.observe_ship(4, now=10.0)
    # Under target, inside the linger window: wait out the remainder.
    assert b.linger_delay(1, now=10.4) == pytest.approx(0.6)
    # Window elapsed: ship what we have.
    assert b.linger_delay(1, now=11.5) == 0.0


def test_target_grows_on_full_batches_and_decays_when_small():
    b = AdaptiveBatcher(min_target_chunks=2, max_target_chunks=16)
    assert b.target_chunks == 2
    b.observe_ship(2, now=0.0)
    assert b.target_chunks == 4
    b.observe_ship(4, now=0.0)
    assert b.target_chunks == 8
    b.observe_ship(99, now=0.0)
    assert b.target_chunks == 16
    b.observe_ship(16, now=0.0)
    assert b.target_chunks == 16  # capped
    b.observe_ship(1, now=0.0)
    assert b.target_chunks == 8
    for _ in range(10):
        b.observe_ship(1, now=0.0)
    assert b.target_chunks == 2  # floored


def test_backpressure_grows_consolidation():
    b = AdaptiveBatcher(min_target_chunks=2, max_target_chunks=8)
    b.observe_backpressure()
    assert b.target_chunks == 4
    b.observe_backpressure()
    b.observe_backpressure()
    assert b.target_chunks == 8
