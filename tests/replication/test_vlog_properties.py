"""Property-based tests of the virtual-log replication invariants.

Random interleavings of appends and batch completions must preserve:

* chunks become durable exactly once, in append order per virtual log;
* physical segments' durable heads advance contiguously;
* every reference is shipped in exactly one (non-repair) batch;
* virtual offsets partition the virtual space without gaps.
"""

from hypothesis import given, settings, strategies as st

from repro.common.units import KB
from repro.replication.config import ReplicationConfig
from repro.replication.policy import BackupSelector
from repro.replication.virtual_log import VirtualLog
from repro.storage.config import StorageConfig
from repro.storage.memory import SegmentAllocator
from repro.storage.streamlet import Streamlet
from repro.wire.chunk import Chunk


def make_streamlet():
    config = StorageConfig(
        segment_size=4 * KB, segments_per_group=64, materialize=False
    )
    return Streamlet(
        stream_id=1, streamlet_id=0, config=config, allocator=SegmentAllocator(config)
    )


def make_vlog(vseg_capacity):
    selector = BackupSelector(primary=0, nodes=[0, 1, 2, 3], copies=2)
    config = ReplicationConfig(
        replication_factor=3, virtual_segment_size=vseg_capacity
    )
    return VirtualLog(vlog_id=0, config=config, selector=selector)


# An op sequence: True = append a chunk, False = try ship+complete a batch.
ops_strategy = st.lists(st.booleans(), min_size=1, max_size=120)


@settings(max_examples=60, deadline=None)
@given(ops=ops_strategy, vseg_chunks=st.integers(1, 7))
def test_interleaved_appends_and_batches(ops, vseg_chunks):
    streamlet = make_streamlet()
    # Chunk wire length is 40 + 160 = 200 bytes; capacity in chunks.
    vlog = make_vlog(vseg_capacity=200 * vseg_chunks)
    appended = []
    durable = []
    shipped_refs = 0
    seq = 0
    for do_append in ops:
        if do_append:
            chunk = Chunk.meta(
                stream_id=1, streamlet_id=0, producer_id=0, chunk_seq=seq,
                record_count=2, payload_len=160,
            )
            seq += 1
            stored = streamlet.append(chunk)
            vlog.append(stored)
            appended.append(stored)
        else:
            batch = vlog.next_batch()
            if batch is not None:
                shipped_refs += len(batch.refs)
                durable.extend(vlog.complete_batch(batch))
    # Drain the remainder.
    while True:
        batch = vlog.next_batch()
        if batch is None:
            break
        shipped_refs += len(batch.refs)
        durable.extend(vlog.complete_batch(batch))

    # Exactly-once, in order.
    assert durable == appended
    assert shipped_refs == len(appended)
    assert all(s.is_durable for s in appended)
    # Virtual segments: single open one, contiguous virtual offsets, and
    # capacity respected.
    open_count = sum(1 for v in vlog.vsegs if not v.sealed)
    assert open_count <= 1
    for vseg in vlog.vsegs:
        assert vseg.header <= vseg.capacity
        offset = 0
        for ref in vseg.refs:
            assert ref.virtual_offset == offset
            offset += ref.length
        assert vseg.fully_replicated
    # Physical segments: durable heads reached their write heads.
    for group in streamlet.groups:
        for segment in group.segments:
            assert segment.durable_head == segment.head


@settings(max_examples=30, deadline=None)
@given(
    chunk_counts=st.lists(st.integers(1, 5), min_size=1, max_size=20),
    cap_chunks=st.integers(1, 4),
)
def test_batch_caps_respected(chunk_counts, cap_chunks):
    streamlet = make_streamlet()
    selector = BackupSelector(primary=0, nodes=[0, 1, 2], copies=1)
    config = ReplicationConfig(
        replication_factor=2,
        virtual_segment_size=64 * KB,
        max_batch_chunks=cap_chunks,
    )
    vlog = VirtualLog(vlog_id=0, config=config, selector=selector)
    seq = 0
    total = 0
    for n in chunk_counts:
        for _ in range(n):
            chunk = Chunk.meta(
                stream_id=1, streamlet_id=0, producer_id=0, chunk_seq=seq,
                record_count=1, payload_len=60,
            )
            seq += 1
            vlog.append(streamlet.append(chunk))
            total += 1
    shipped = 0
    while True:
        batch = vlog.next_batch()
        if batch is None:
            break
        assert 1 <= batch.chunk_count <= cap_chunks
        shipped += batch.chunk_count
        vlog.complete_batch(batch)
    assert shipped == total
