"""Virtual segment invariants: headers, checksum, atomic replication."""

import struct

import pytest

from repro.common.checksum import crc32c
from repro.common.errors import ReplicationError, SegmentFullError, SegmentSealedError
from repro.replication.virtual_segment import VirtualSegment


def make_vseg(capacity=4096, backups=(1, 2)):
    return VirtualSegment(vlog_id=0, vseg_id=0, capacity=capacity, backups=backups)


def store_chunks(streamlet_factory, chunk_factory, count, **chunk_kwargs):
    streamlet = streamlet_factory()
    return [streamlet.append(chunk_factory(**chunk_kwargs)) for _ in range(count)]


def test_header_accumulates_chunk_lengths(streamlet_factory, chunk_factory):
    vseg = make_vseg()
    stored = store_chunks(streamlet_factory, chunk_factory, 3)
    refs = [vseg.append_ref(s) for s in stored]
    assert refs[0].virtual_offset == 0
    assert refs[1].virtual_offset == stored[0].length
    assert vseg.header == sum(s.length for s in stored)
    assert [r.ref_index for r in refs] == [0, 1, 2]


def test_virtual_space_exhaustion(streamlet_factory, chunk_factory):
    stored = store_chunks(streamlet_factory, chunk_factory, 3)
    vseg = make_vseg(capacity=stored[0].length * 2)
    vseg.append_ref(stored[0])
    vseg.append_ref(stored[1])
    with pytest.raises(SegmentFullError):
        vseg.append_ref(stored[2])
    assert len(vseg.refs) == 2


def test_sealed_rejects_appends(streamlet_factory, chunk_factory):
    vseg = make_vseg()
    (stored,) = store_chunks(streamlet_factory, chunk_factory, 1)
    vseg.seal()
    with pytest.raises(SegmentSealedError):
        vseg.append_ref(stored)


def test_checksum_covers_chunk_checksums(streamlet_factory, chunk_factory):
    vseg = make_vseg()
    stored = store_chunks(streamlet_factory, chunk_factory, 3)
    for s in stored:
        vseg.append_ref(s)
    expected = crc32c(b"".join(struct.pack("<I", s.payload_crc) for s in stored))
    assert vseg.checksum == expected


def test_durable_header_tracks_atomic_chunks(streamlet_factory, chunk_factory):
    vseg = make_vseg()
    stored = store_chunks(streamlet_factory, chunk_factory, 4)
    for s in stored:
        vseg.append_ref(s)
    assert vseg.durable_header == 0
    assert vseg.durable_index == 0
    done = vseg.mark_replicated(2)
    assert [r.stored for r in done] == stored[:2]
    assert vseg.durable_index == 2
    assert vseg.durable_header == stored[0].length + stored[1].length
    assert not vseg.fully_replicated
    assert [r.stored for r in vseg.unreplicated()] == stored[2:]
    vseg.mark_replicated(2)
    assert vseg.fully_replicated


def test_mark_replicated_bounds(streamlet_factory, chunk_factory):
    vseg = make_vseg()
    (stored,) = store_chunks(streamlet_factory, chunk_factory, 1)
    vseg.append_ref(stored)
    with pytest.raises(ReplicationError):
        vseg.mark_replicated(2)
    with pytest.raises(ReplicationError):
        vseg.mark_replicated(-1)
