"""Remaining replication edges: policy distribution quality, vseg ids."""

from collections import Counter

from repro.common.idgen import IdGenerator
from repro.replication.config import PolicyMode, ReplicationConfig
from repro.replication.policy import BackupSelector, ReplicationPolicy, _mix64
from repro.replication.virtual_log import VirtualLog


def test_mix64_avalanche_on_residue_classes():
    """Stream ids sharing a residue class (one broker's streams) must not
    collapse onto one virtual log — the regression behind the original
    multiplicative-hash bug."""
    for vlogs in (2, 4, 8):
        config = ReplicationConfig(vlogs_per_broker=vlogs)
        policy = ReplicationPolicy(config)
        # Streams a broker leads: ids congruent mod 4.
        keys = Counter(policy.vlog_key(s, 0, 0) for s in range(0, 512, 4))
        assert len(keys) == vlogs
        # No vlog gets more than twice its fair share.
        assert max(keys.values()) <= 2 * (128 / vlogs)


def test_mix64_is_pure():
    assert _mix64(12345) == _mix64(12345)
    assert _mix64(12345) != _mix64(12346)
    assert 0 <= _mix64(2**63) < 2**64


def test_shared_vseg_ids_globally_ordered():
    """Virtual logs sharing one id generator produce globally unique,
    creation-ordered virtual segment ids — what recovery merges by."""
    gen = IdGenerator()
    config = ReplicationConfig(replication_factor=2, virtual_segment_size=1 << 20)
    vlogs = [
        VirtualLog(
            vlog_id=i,
            config=config,
            selector=BackupSelector(primary=0, nodes=[0, 1, 2], copies=1),
            vseg_ids=gen,
        )
        for i in range(3)
    ]
    ids = []
    for vlog in vlogs:
        vlog._roll_vseg()
        ids.append(vlog.vsegs[0].vseg_id)
    assert ids == [0, 1, 2]


def test_per_subpartition_keys_dense():
    policy = ReplicationPolicy(ReplicationConfig(policy=PolicyMode.PER_SUBPARTITION))
    keys = [policy.vlog_key(0, sl, e) for sl in range(4) for e in range(4)]
    assert sorted(keys) == list(range(16))
