"""Frame replication: verbatim append of encoded chunks at the backup.

Materialized replication ships already-encoded, placement-stamped frames;
the backup validates each frame against its own header CRC, appends the
bytes untouched, and only decodes :class:`Chunk` objects lazily (recovery,
tests). These tests pin that contract.
"""

import pytest

from repro.common.errors import ChecksumError, ReplicationError
from repro.common.units import MB
from repro.replication.backup_store import BackupStore, ReplicatedSegment
from repro.wire.chunk import Chunk, CHUNK_HEADER_SIZE, encode_chunk
from repro.wire.framing import decode_chunks
from repro.wire.record import Record, encode_records


def make_frame(chunk_seq=0, value=b"data", group_id=3, segment_id=1):
    payload = encode_records([Record(value=value)])
    chunk = Chunk(
        stream_id=1,
        streamlet_id=0,
        producer_id=0,
        chunk_seq=chunk_seq,
        record_count=1,
        payload_len=len(payload),
        payload=payload,
        group_id=group_id,
        segment_id=segment_id,
    )
    return chunk, encode_chunk(chunk)


def test_append_frames_verbatim():
    store = BackupStore(node_id=2, materialize=True)
    chunks, frames = zip(*(make_frame(chunk_seq=i) for i in range(3)))
    seg = store.append_frames(
        src_broker=0, vlog_id=1, vseg_id=5, frames=frames, segment_capacity=1 * MB
    )
    # The backup holds the exact shipped bytes, stamps included.
    held = bytes(seg.buffer.view(0, seg.buffer.head))
    assert held == b"".join(frames)
    assert seg.bytes_held == sum(len(f) for f in frames)
    assert store.chunks_received == 3
    assert store.batches_received == 1
    assert decode_chunks(held) == list(chunks)


def test_frames_accept_memoryviews():
    store = BackupStore(node_id=2, materialize=True)
    _, frame = make_frame()
    seg = store.append_frames(
        src_broker=0,
        vlog_id=0,
        vseg_id=0,
        frames=(memoryview(frame),),
        segment_capacity=1 * MB,
    )
    assert bytes(seg.buffer.view(0, seg.buffer.head)) == frame


def test_lazy_decode_preserves_placement():
    store = BackupStore(node_id=2, materialize=True)
    chunk, frame = make_frame(group_id=7, segment_id=4)
    seg = store.append_frames(
        src_broker=0, vlog_id=0, vseg_id=0, frames=(frame,), segment_capacity=1 * MB
    )
    assert seg.chunk_count == 1
    (decoded,) = seg.chunks
    assert (decoded.group_id, decoded.segment_id) == (7, 4)
    assert decoded == chunk
    assert decoded.records() == [Record(value=b"data")]


def test_corrupt_frame_payload_rejected():
    store = BackupStore(node_id=2, materialize=True)
    _, frame = make_frame()
    corrupt = bytearray(frame)
    corrupt[CHUNK_HEADER_SIZE] ^= 0x55
    with pytest.raises(ChecksumError):
        store.append_frames(
            src_broker=0,
            vlog_id=0,
            vseg_id=0,
            frames=(bytes(corrupt),),
            segment_capacity=1 * MB,
        )


def test_bad_magic_frame_rejected():
    _, frame = make_frame()
    corrupt = bytearray(frame)
    corrupt[0] ^= 0xFF
    seg = ReplicatedSegment(src_broker=0, vlog_id=0, vseg_id=0, capacity=1 * MB)
    with pytest.raises(ReplicationError):
        seg.append_frame(bytes(corrupt))


def test_truncated_frame_rejected():
    _, frame = make_frame()
    seg = ReplicatedSegment(src_broker=0, vlog_id=0, vseg_id=0, capacity=1 * MB)
    with pytest.raises(ReplicationError):
        seg.append_frame(frame[:-1])
    with pytest.raises(ReplicationError):
        seg.append_frame(frame[: CHUNK_HEADER_SIZE - 1])


def test_metadata_backup_rejects_frames():
    seg = ReplicatedSegment(
        src_broker=0, vlog_id=0, vseg_id=0, capacity=1 * MB, materialize=False
    )
    _, frame = make_frame()
    with pytest.raises(ReplicationError):
        seg.append_frame(frame)


def test_frames_and_chunks_interleave():
    """Frame and object appends land in one buffer in arrival order."""
    store = BackupStore(node_id=2, materialize=True)
    first, frame = make_frame(chunk_seq=0)
    second, _ = make_frame(chunk_seq=1, value=b"other")
    store.append_frames(
        src_broker=0, vlog_id=0, vseg_id=0, frames=(frame,), segment_capacity=1 * MB
    )
    seg = store.append_batch(
        src_broker=0, vlog_id=0, vseg_id=0, chunks=[second], segment_capacity=1 * MB
    )
    assert seg.chunks == [first, second]
    held = bytes(seg.buffer.view(0, seg.buffer.head))
    assert decode_chunks(held) == [first, second]


def test_sealed_segment_rejects_frames():
    store = BackupStore(node_id=2, materialize=True)
    _, frame = make_frame()
    store.append_frames(
        src_broker=0, vlog_id=0, vseg_id=0, frames=(frame,), segment_capacity=1 * MB
    )
    store.seal(0, 0, 0)
    with pytest.raises(ReplicationError):
        store.append_frames(
            src_broker=0, vlog_id=0, vseg_id=0, frames=(frame,), segment_capacity=1 * MB
        )


def test_recovery_sees_frame_chunks():
    store = BackupStore(node_id=2, materialize=True)
    chunk, frame = make_frame(chunk_seq=0)
    store.append_frames(
        src_broker=4, vlog_id=0, vseg_id=0, frames=(frame,), segment_capacity=1 * MB
    )
    assert list(store.chunks_for_broker(4)) == [chunk]
