"""Virtual log behaviour: rolling, batching discipline, failure repair."""

import pytest

from repro.common.errors import ReplicationError
from repro.common.units import KB
from repro.replication.config import ReplicationConfig
from repro.replication.policy import BackupSelector
from repro.replication.virtual_log import VirtualLog


def make_vlog(vseg_capacity=4 * KB, copies=2, nodes=4, **cfg_kwargs):
    config = ReplicationConfig(
        replication_factor=copies + 1,
        virtual_segment_size=vseg_capacity,
        **cfg_kwargs,
    )
    selector = BackupSelector(primary=0, nodes=list(range(nodes)), copies=copies)
    return VirtualLog(vlog_id=0, config=config, selector=selector)


def fill(vlog, streamlet_factory, chunk_factory, count):
    streamlet = streamlet_factory()
    stored = [streamlet.append(chunk_factory()) for _ in range(count)]
    refs = [vlog.append(s) for s in stored]
    return stored, refs


def test_single_open_vseg_rolls_with_fresh_backups(streamlet_factory, chunk_factory):
    # Chunks are 200 bytes; a 500-byte virtual segment holds 2.
    vlog = make_vlog(vseg_capacity=500)
    stored, _ = fill(vlog, streamlet_factory, chunk_factory, 5)
    assert len(vlog.vsegs) == 3
    # Exactly one open vseg; earlier ones sealed.
    assert [v.sealed for v in vlog.vsegs] == [True, True, False]
    # Rotating backup choice: consecutive vsegs differ.
    assert vlog.vsegs[0].backups != vlog.vsegs[1].backups
    # All backup sets exclude the primary and have the right size.
    for vseg in vlog.vsegs:
        assert 0 not in vseg.backups
        assert len(vseg.backups) == 2
        assert len(set(vseg.backups)) == 2


def test_batching_one_in_flight(streamlet_factory, chunk_factory):
    vlog = make_vlog()
    stored, _ = fill(vlog, streamlet_factory, chunk_factory, 3)
    batch = vlog.next_batch()
    assert batch is not None
    assert [r.stored for r in batch.refs] == stored
    # While in flight, no second batch.
    assert vlog.next_batch() is None
    assert vlog.in_flight
    durable = vlog.complete_batch(batch)
    assert durable == stored
    assert not vlog.in_flight
    assert all(s.is_durable for s in stored)
    assert vlog.next_batch() is None  # nothing left


def test_group_commit_accumulates_during_flight(streamlet_factory, chunk_factory):
    vlog = make_vlog()
    streamlet = streamlet_factory()
    first = streamlet.append(chunk_factory())
    vlog.append(first)
    batch1 = vlog.next_batch()
    # Two more chunks arrive while batch1 is in flight.
    later = [streamlet.append(chunk_factory()) for _ in range(2)]
    for s in later:
        vlog.append(s)
    assert vlog.next_batch() is None
    vlog.complete_batch(batch1)
    batch2 = vlog.next_batch()
    assert [r.stored for r in batch2.refs] == later
    vlog.complete_batch(batch2)
    assert all(s.is_durable for s in later)


def test_batches_never_span_vsegs(streamlet_factory, chunk_factory):
    vlog = make_vlog(vseg_capacity=500)  # 2 chunks per vseg
    stored, _ = fill(vlog, streamlet_factory, chunk_factory, 5)
    seen_vsegs = []
    while True:
        batch = vlog.next_batch()
        if batch is None:
            break
        assert len({id(r.stored.segment) for r in batch.refs}) >= 1
        vseg_ids = {batch.vseg.vseg_id}
        assert len(vseg_ids) == 1
        seen_vsegs.append((batch.vseg.vseg_id, len(batch.refs)))
        vlog.complete_batch(batch)
    assert seen_vsegs == [(0, 2), (1, 2), (2, 1)]
    assert all(s.is_durable for s in stored)


def test_batch_caps(streamlet_factory, chunk_factory):
    vlog = make_vlog(max_batch_chunks=2)
    stored, _ = fill(vlog, streamlet_factory, chunk_factory, 5)
    sizes = []
    while True:
        batch = vlog.next_batch()
        if batch is None:
            break
        sizes.append(batch.chunk_count)
        vlog.complete_batch(batch)
    assert sizes == [2, 2, 1]


def test_byte_cap_allows_at_least_one_chunk(streamlet_factory, chunk_factory):
    vlog = make_vlog(max_batch_bytes=10)  # smaller than one chunk
    fill(vlog, streamlet_factory, chunk_factory, 2)
    batch = vlog.next_batch()
    assert batch.chunk_count == 1
    vlog.complete_batch(batch)


def test_complete_without_flight_rejected(streamlet_factory, chunk_factory):
    vlog = make_vlog()
    stored, _ = fill(vlog, streamlet_factory, chunk_factory, 1)
    batch = vlog.next_batch()
    vlog.complete_batch(batch)
    with pytest.raises(ReplicationError):
        vlog.complete_batch(batch)


def test_abort_rewinds_for_reshipping(streamlet_factory, chunk_factory):
    vlog = make_vlog()
    stored, _ = fill(vlog, streamlet_factory, chunk_factory, 3)
    batch = vlog.next_batch()
    vlog.abort_batch(batch)
    assert not vlog.in_flight
    retry = vlog.next_batch()
    assert [r.stored for r in retry.refs] == stored
    vlog.complete_batch(retry)
    assert all(s.is_durable for s in stored)


def test_payload_bytes_includes_ref_metadata(streamlet_factory, chunk_factory):
    from repro.replication.chunk_ref import CHUNK_REF_WIRE_SIZE

    vlog = make_vlog()
    stored, _ = fill(vlog, streamlet_factory, chunk_factory, 2)
    batch = vlog.next_batch()
    expected = sum(s.length for s in stored) + 2 * CHUNK_REF_WIRE_SIZE
    assert batch.payload_bytes == expected


def test_backup_failure_repairs_durable_prefix(streamlet_factory, chunk_factory):
    vlog = make_vlog(nodes=5)
    stored, _ = fill(vlog, streamlet_factory, chunk_factory, 3)
    batch = vlog.next_batch()
    vlog.complete_batch(batch)
    failed = vlog.vsegs[0].backups[0]
    old_backups = vlog.vsegs[0].backups
    repairs = vlog.handle_backup_failure(failed)
    assert len(repairs) == 1
    repair = repairs[0]
    assert repair.repair
    # Repair re-ships the durable prefix to the replacement only.
    assert len(repair.refs) == 3
    assert len(repair.backups) == 1
    assert repair.backups[0] not in old_backups
    new_backups = vlog.vsegs[0].backups
    assert failed not in new_backups
    assert len(new_backups) == 2
    # Durability was never lost.
    assert all(s.is_durable for s in stored)
    # Completing the repair batch does not move watermarks.
    vlog.in_flight = True
    assert vlog.complete_batch(repair) == []


def test_backup_failure_unreplicated_refs_reship_to_new_set(
    streamlet_factory, chunk_factory
):
    vlog = make_vlog(nodes=5)
    stored, _ = fill(vlog, streamlet_factory, chunk_factory, 2)
    failed = None
    # Nothing shipped yet: failure should produce no repair batches but
    # future batches go to the repaired set.
    vseg = vlog.vsegs[-1] if vlog.vsegs else None
    batch = vlog.next_batch()
    failed = batch.backups[0]
    vlog.abort_batch(batch)
    repairs = vlog.handle_backup_failure(failed)
    assert repairs == []  # durable prefix empty
    retry = vlog.next_batch()
    assert failed not in retry.backups
    vlog.complete_batch(retry)
    assert all(s.is_durable for s in stored)
