"""Backup store: replicated segments, checksums, flush, recovery reads."""

import pytest

from repro.common.errors import ChecksumError, ReplicationError
from repro.common.units import MB
from repro.wire.chunk import Chunk
from repro.wire.record import Record, encode_records
from repro.replication.backup_store import BackupStore


def meta_chunk(chunk_seq=0, streamlet_id=0, group_id=1, segment_id=0):
    chunk = Chunk.meta(
        stream_id=1,
        streamlet_id=streamlet_id,
        producer_id=0,
        chunk_seq=chunk_seq,
        record_count=4,
        payload_len=160,
    )
    return chunk.assigned(group_id=group_id, segment_id=segment_id)


def real_chunk(value=b"data", chunk_seq=0):
    payload = encode_records([Record(value=value)])
    return Chunk(
        stream_id=1, streamlet_id=0, producer_id=0, chunk_seq=chunk_seq,
        record_count=1, payload_len=len(payload), payload=payload,
    )


def test_append_batch_creates_segment():
    store = BackupStore(node_id=2, materialize=False)
    chunks = [meta_chunk(chunk_seq=i) for i in range(3)]
    seg = store.append_batch(
        src_broker=0, vlog_id=1, vseg_id=5, chunks=chunks, segment_capacity=1 * MB
    )
    assert seg.bytes_held == sum(c.size for c in chunks)
    assert seg.chunks == chunks
    assert store.segment_count == 1
    assert store.chunks_received == 3
    assert store.batches_received == 1


def test_append_batch_accumulates_same_vseg():
    store = BackupStore(node_id=2, materialize=False)
    seg1 = store.append_batch(
        src_broker=0, vlog_id=1, vseg_id=5, chunks=[meta_chunk(0)], segment_capacity=1 * MB
    )
    seg2 = store.append_batch(
        src_broker=0, vlog_id=1, vseg_id=5, chunks=[meta_chunk(1)], segment_capacity=1 * MB
    )
    assert seg1 is seg2
    assert len(seg1.chunks) == 2


def test_corrupt_payload_rejected():
    store = BackupStore(node_id=2)
    good = real_chunk()
    # A chunk whose claimed CRC does not match its bytes and that was
    # never validated in this process (verified=False): the backup must
    # re-check and reject it. (A builder-built chunk carries verified=True
    # and skips the re-hash — validation is paid at boundaries only.)
    chunk = Chunk(
        stream_id=1, streamlet_id=0, producer_id=0, chunk_seq=0,
        record_count=1, payload_len=good.payload_len, payload=good.payload,
        payload_crc=good.payload_crc ^ 0xFF,
    )
    assert not chunk.verified
    with pytest.raises(ChecksumError):
        store.append_batch(
            src_broker=0, vlog_id=0, vseg_id=0, chunks=[chunk], segment_capacity=1 * MB
        )


def test_sealed_segment_rejects():
    store = BackupStore(node_id=2, materialize=False)
    store.append_batch(
        src_broker=0, vlog_id=0, vseg_id=0, chunks=[meta_chunk(0)], segment_capacity=1 * MB
    )
    store.seal(0, 0, 0)
    with pytest.raises(ReplicationError):
        store.append_batch(
            src_broker=0, vlog_id=0, vseg_id=0, chunks=[meta_chunk(1)], segment_capacity=1 * MB
        )


def test_flush_accounting():
    store = BackupStore(node_id=2, materialize=False)
    seg = store.append_batch(
        src_broker=0, vlog_id=0, vseg_id=0, chunks=[meta_chunk(0)], segment_capacity=1 * MB
    )
    assert store.total_unflushed() == seg.bytes_held
    taken = store.take_flush_work(seg)
    assert taken == seg.bytes_held
    assert seg.unflushed_bytes == 0
    assert store.total_unflushed() == 0
    # New data re-dirties the segment.
    store.append_batch(
        src_broker=0, vlog_id=0, vseg_id=0, chunks=[meta_chunk(1)], segment_capacity=1 * MB
    )
    assert seg.unflushed_bytes > 0


def test_recovery_reads_ordered_by_vlog():
    store = BackupStore(node_id=2, materialize=False)
    store.append_batch(
        src_broker=0, vlog_id=1, vseg_id=1, chunks=[meta_chunk(1)], segment_capacity=1 * MB
    )
    store.append_batch(
        src_broker=0, vlog_id=0, vseg_id=0, chunks=[meta_chunk(0)], segment_capacity=1 * MB
    )
    store.append_batch(
        src_broker=3, vlog_id=0, vseg_id=0, chunks=[meta_chunk(9)], segment_capacity=1 * MB
    )
    segs = store.segments_for_broker(0)
    assert [(s.vlog_id, s.vseg_id) for s in segs] == [(0, 0), (1, 1)]
    chunks = list(store.chunks_for_broker(0))
    assert [c.chunk_seq for c in chunks] == [0, 1]
    # Other broker's data untouched.
    assert [c.chunk_seq for c in store.chunks_for_broker(3)] == [9]


def test_drop_broker_frees():
    store = BackupStore(node_id=2, materialize=False)
    store.append_batch(
        src_broker=0, vlog_id=0, vseg_id=0, chunks=[meta_chunk(0)], segment_capacity=1 * MB
    )
    held = store.bytes_held
    assert held > 0
    freed = store.drop_broker(0)
    assert freed == held
    assert store.segment_count == 0
    assert store.drop_broker(0) == 0


def test_materialized_roundtrip():
    store = BackupStore(node_id=2, materialize=True)
    chunk = real_chunk(value=b"persisted")
    seg = store.append_batch(
        src_broker=0, vlog_id=0, vseg_id=0, chunks=[chunk], segment_capacity=1 * MB
    )
    from repro.wire.framing import decode_chunks

    stored_bytes = seg.buffer.view(0, seg.buffer.head)
    (decoded,) = decode_chunks(stored_bytes)
    assert decoded.records() == [Record(value=b"persisted")]
