"""Replication policy, backup selection, and manager routing tests."""

import pytest

from repro.common.errors import ConfigError, ReplicationError
from repro.replication.config import PolicyMode, ReplicationConfig
from repro.replication.manager import ReplicationManager, wire_chunks
from repro.replication.policy import BackupSelector, ReplicationPolicy


class TestPolicy:
    def test_shared_mode_bounded_and_deterministic(self):
        config = ReplicationConfig(vlogs_per_broker=4, policy=PolicyMode.SHARED)
        policy = ReplicationPolicy(config)
        keys = {policy.vlog_key(s, l, 0) for s in range(50) for l in range(4)}
        assert keys <= set(range(4))
        assert policy.vlog_key(3, 1, 0) == policy.vlog_key(3, 1, 0)  # stable
        # Sub-partitions of one streamlet spread over the shared logs too
        # (Figure 21: 32 sub-partitions over N virtual logs).
        entry_keys = {policy.vlog_key(0, 0, e) for e in range(16)}
        assert len(entry_keys) > 1
        assert policy.max_vlogs == 4

    def test_per_subpartition_mode_unique_per_entry(self):
        config = ReplicationConfig(policy=PolicyMode.PER_SUBPARTITION)
        policy = ReplicationPolicy(config)
        k1 = policy.vlog_key(1, 0, 0)
        k2 = policy.vlog_key(1, 0, 1)
        k3 = policy.vlog_key(1, 1, 0)
        assert len({k1, k2, k3}) == 3
        assert policy.vlog_key(1, 0, 0) == k1  # stable
        assert policy.max_vlogs is None


class TestBackupSelector:
    def test_selects_distinct_non_primary(self):
        sel = BackupSelector(primary=0, nodes=[0, 1, 2, 3], copies=2)
        for _ in range(10):
            chosen = sel.select()
            assert len(chosen) == 2
            assert 0 not in chosen
            assert len(set(chosen)) == 2

    def test_rotation_covers_all_candidates(self):
        sel = BackupSelector(primary=0, nodes=[0, 1, 2, 3], copies=1)
        seen = {sel.select()[0] for _ in range(6)}
        assert seen == {1, 2, 3}

    def test_zero_copies(self):
        sel = BackupSelector(primary=0, nodes=[0, 1], copies=0)
        assert sel.select() == ()

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ReplicationError):
            BackupSelector(primary=0, nodes=[0, 1], copies=2)

    def test_negative_copies_rejected(self):
        with pytest.raises(ConfigError):
            BackupSelector(primary=0, nodes=[0, 1], copies=-1)

    def test_replace_swaps_failed(self):
        sel = BackupSelector(primary=0, nodes=[0, 1, 2, 3, 4], copies=2)
        backups = sel.select()
        repaired = sel.replace(backups, backups[0])
        assert backups[0] not in repaired
        assert backups[1] in repaired
        assert len(set(repaired)) == 2
        with pytest.raises(ReplicationError):
            sel.replace(repaired, 99)

    def test_remove_candidate_shrinks_pool(self):
        sel = BackupSelector(primary=0, nodes=[0, 1, 2, 3], copies=2)
        sel.remove_candidate(3)
        for _ in range(5):
            assert 3 not in sel.select()
        with pytest.raises(ReplicationError):
            sel.remove_candidate(2)  # would leave too few


class TestManager:
    def make(self, r=3, vlogs=2, policy=PolicyMode.SHARED, on_durable=None):
        config = ReplicationConfig(
            replication_factor=r, vlogs_per_broker=vlogs, policy=policy
        )
        return ReplicationManager(
            broker_id=0, nodes=[0, 1, 2, 3], config=config, on_durable=on_durable
        )

    def test_r1_short_circuits(self, streamlet_factory, chunk_factory):
        durable = []
        mgr = self.make(r=1, on_durable=durable.append)
        streamlet = streamlet_factory()
        stored = streamlet.append(chunk_factory())
        assert mgr.replicate(stored, entry=0) is None
        assert stored.is_durable
        assert durable == [stored]
        assert mgr.vlog_count == 0
        assert mgr.collect_batches() == []

    def test_routing_creates_bounded_vlogs(self, streamlet_factory, chunk_factory):
        mgr = self.make(vlogs=2)
        for streamlet_id in range(8):
            streamlet = streamlet_factory(streamlet_id=streamlet_id)
            stored = streamlet.append(chunk_factory(streamlet_id=streamlet_id))
            ref = mgr.replicate(stored, entry=0)
            assert ref is not None
        assert mgr.vlog_count <= 2
        assert mgr.pending_chunks() == 8

    def test_full_cycle_fires_durability_listener(
        self, streamlet_factory, chunk_factory
    ):
        durable = []
        mgr = self.make(on_durable=durable.append)
        streamlet = streamlet_factory()
        stored = [streamlet.append(chunk_factory()) for _ in range(3)]
        for s in stored:
            mgr.replicate(s, entry=0)
        batches = mgr.collect_batches()
        assert len(batches) == 1  # one dirty vlog
        for b in batches:
            mgr.complete_batch(b)
        assert durable == stored
        assert mgr.pending_chunks() == 0
        assert mgr.total_batches() == 1
        assert mgr.total_chunks_shipped() == 3

    def test_unknown_batch_rejected(self, streamlet_factory, chunk_factory):
        mgr = self.make()
        other = self.make()
        streamlet = streamlet_factory()
        stored = streamlet.append(chunk_factory())
        other.replicate(stored, entry=0)
        (batch,) = other.collect_batches()
        batch_alien = batch
        # Forge a vlog id the first manager does not know.
        batch_alien.vlog_id = 12345
        with pytest.raises(ReplicationError):
            mgr.complete_batch(batch_alien)

    def test_backup_failure_propagates_to_all_vlogs(
        self, streamlet_factory, chunk_factory
    ):
        mgr = self.make(vlogs=2)
        for streamlet_id in range(8):
            streamlet = streamlet_factory(streamlet_id=streamlet_id)
            stored = streamlet.append(chunk_factory(streamlet_id=streamlet_id))
            mgr.replicate(stored, entry=0)
        for batch in mgr.collect_batches():
            mgr.complete_batch(batch)
        repairs = mgr.handle_backup_failure(2)
        for repair in repairs:
            assert repair.repair
            assert 2 not in repair.backups
        for vlog in mgr.vlogs:
            for vseg in vlog.vsegs:
                assert 2 not in vseg.backups


def test_wire_chunks_meta_mode(streamlet_factory, chunk_factory):
    config = ReplicationConfig(replication_factor=2, vlogs_per_broker=1)
    mgr = ReplicationManager(broker_id=0, nodes=[0, 1], config=config)
    streamlet = streamlet_factory()
    stored = [streamlet.append(chunk_factory(n=4)) for _ in range(2)]
    for s in stored:
        mgr.replicate(s, entry=0)
    (batch,) = mgr.collect_batches()
    wires = list(wire_chunks(batch))
    assert len(wires) == 2
    for wire, s in zip(wires, stored):
        # Broker-assigned placement tags travel with the chunk.
        assert wire.group_id == s.group_id
        assert wire.segment_id == s.segment_id
        assert wire.payload_len == s.payload_len
        assert wire.record_count == s.record_count
        assert wire.payload is None


def test_wire_chunks_materialized_mode():
    from repro.storage.config import StorageConfig
    from repro.storage.memory import SegmentAllocator
    from repro.storage.streamlet import Streamlet
    from repro.wire.chunk import Chunk
    from repro.wire.record import Record, encode_records

    cfg = StorageConfig(segment_size=4096, materialize=True)
    streamlet = Streamlet(
        stream_id=1, streamlet_id=0, config=cfg, allocator=SegmentAllocator(cfg)
    )
    payload = encode_records([Record(value=b"hello world")])
    chunk = Chunk(
        stream_id=1, streamlet_id=0, producer_id=0, chunk_seq=0,
        record_count=1, payload_len=len(payload), payload=payload,
    )
    stored = streamlet.append(chunk)
    config = ReplicationConfig(replication_factor=2, vlogs_per_broker=1)
    mgr = ReplicationManager(broker_id=0, nodes=[0, 1], config=config)
    mgr.replicate(stored, entry=0)
    (batch,) = mgr.collect_batches()
    (wire,) = list(wire_chunks(batch))
    assert wire.payload is not None
    assert wire.records() == [Record(value=b"hello world")]
    assert wire.group_id == stored.group_id
