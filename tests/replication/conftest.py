"""Shared fixtures for replication tests."""

import pytest

from repro.storage.config import StorageConfig
from repro.storage.memory import SegmentAllocator
from repro.storage.streamlet import Streamlet
from repro.wire.chunk import Chunk


@pytest.fixture
def storage_config():
    return StorageConfig(
        segment_size=4096, segments_per_group=4, q_active_groups=1, materialize=False
    )


@pytest.fixture
def streamlet_factory(storage_config):
    def make(stream_id=1, streamlet_id=0, config=None):
        cfg = config or storage_config
        return Streamlet(
            stream_id=stream_id,
            streamlet_id=streamlet_id,
            config=cfg,
            allocator=SegmentAllocator(cfg),
        )

    return make


@pytest.fixture
def chunk_factory():
    counters = {}

    def make(stream_id=1, streamlet_id=0, producer_id=0, payload_len=160, n=4):
        key = (streamlet_id, producer_id)
        seq = counters.get(key, 0)
        counters[key] = seq + 1
        return Chunk.meta(
            stream_id=stream_id,
            streamlet_id=streamlet_id,
            producer_id=producer_id,
            chunk_seq=seq,
            record_count=n,
            payload_len=payload_len,
        )

    return make
