"""Discrete-event engine semantics tests."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import Environment, Interrupt


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(1.5)
        return env.now

    p = env.process(proc(env))
    result = env.run(p)
    assert result == 1.5
    assert env.now == 1.5


def test_same_time_events_fifo():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in range(5):
        env.process(proc(env, tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    seen = []

    def waiter(env):
        value = yield gate
        seen.append((env.now, value))

    def trigger(env):
        yield env.timeout(3.0)
        gate.succeed("go")

    env.process(waiter(env))
    env.process(trigger(env))
    env.run()
    assert seen == [(3.0, "go")]


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()

    def waiter(env):
        with pytest.raises(ValueError, match="boom"):
            yield gate
        return "handled"

    def trigger(env):
        yield env.timeout(1.0)
        gate.fail(ValueError("boom"))

    p = env.process(waiter(env))
    env.process(trigger(env))
    assert env.run(p) == "handled"


def test_process_failure_propagates_to_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise RuntimeError("dead")

    p = env.process(bad(env))
    with pytest.raises(RuntimeError, match="dead"):
        env.run(p)


def test_yield_on_already_processed_event():
    env = Environment()
    gate = env.event()
    gate.succeed(42)
    env.run()  # process the event so it is 'processed'
    assert gate.processed

    def late(env):
        value = yield gate
        return value

    p = env.process(late(env))
    assert env.run(p) == 42


def test_nested_processes():
    env = Environment()

    def child(env, delay):
        yield env.timeout(delay)
        return delay * 10

    def parent(env):
        result = yield env.process(child(env, 2.0))
        return result + 1

    assert env.run(env.process(parent(env))) == 21.0
    assert env.now == 2.0


def test_all_of_waits_for_everything():
    env = Environment()

    def proc(env):
        values = yield env.all_of([env.timeout(1.0, "a"), env.timeout(3.0, "b")])
        return (env.now, values)

    assert env.run(env.process(proc(env))) == (3.0, ["a", "b"])


def test_all_of_fails_fast():
    env = Environment()
    gate = env.event()

    def failer(env):
        yield env.timeout(1.0)
        gate.fail(KeyError("x"))

    def proc(env):
        with pytest.raises(KeyError):
            yield env.all_of([gate, env.timeout(100.0)])
        return env.now

    env.process(failer(env))
    assert env.run(env.process(proc(env))) == 1.0


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc(env):
        values = yield env.all_of([])
        return (env.now, values)

    assert env.run(env.process(proc(env))) == (0.0, [])


def test_any_of_first_wins():
    env = Environment()

    def proc(env):
        event, value = yield env.any_of([env.timeout(5.0, "slow"), env.timeout(1.0, "fast")])
        return (env.now, value)

    assert env.run(env.process(proc(env))) == (1.0, "fast")


def test_interrupt_wakes_blocked_process():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as intr:
            log.append((env.now, intr.cause))
        yield env.timeout(1.0)
        return "recovered"

    def interrupter(env, victim):
        yield env.timeout(2.0)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    assert env.run(victim) == "recovered"
    assert log == [(2.0, "wake up")]
    assert env.now == 3.0


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(0.1)

    p = env.process(quick(env))
    env.run(p)
    with pytest.raises(SimulationError):
        p.interrupt()


def test_run_until_time_stops_exactly():
    env = Environment()
    fired = []

    def proc(env):
        for _ in range(10):
            yield env.timeout(1.0)
            fired.append(env.now)

    env.process(proc(env))
    env.run(until=4.5)
    assert fired == [1.0, 2.0, 3.0, 4.0]
    assert env.now == 4.5
    env.run(until=10.5)
    assert len(fired) == 10


def test_run_backwards_rejected():
    env = Environment()
    env.run(until=5.0)
    with pytest.raises(SimulationError):
        env.run(until=1.0)


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_double_trigger_rejected():
    env = Environment()
    gate = env.event()
    gate.succeed()
    with pytest.raises(SimulationError):
        gate.succeed()


def test_deadlock_detected():
    env = Environment()
    gate = env.event()

    def stuck(env):
        yield gate

    p = env.process(stuck(env))
    with pytest.raises(SimulationError, match="deadlock"):
        env.run(p)


def test_yield_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield "not an event"

    p = env.process(bad(env))
    with pytest.raises(SimulationError, match="non-event"):
        env.run(p)


def test_determinism_same_trace():
    def build():
        env = Environment()
        trace = []

        def proc(env, tag, delay):
            for i in range(3):
                yield env.timeout(delay)
                trace.append((env.now, tag, i))

        for tag in range(4):
            env.process(proc(env, tag, 0.5 + tag * 0.25))
        env.run()
        return trace

    assert build() == build()


def test_process_return_value_via_event():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return {"answer": 42}

    p = env.process(proc(env))
    env.run()
    assert p.value == {"answer": 42}
    assert p.ok
