"""Consumer partition assignment: balance and completeness."""

from repro.common.units import KB
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kera import KeraConfig, SimKeraCluster
from repro.simdriver import SimWorkload


def make_cluster(streams=16, consumers=4, q=1, streamlets=None):
    config = KeraConfig(
        num_brokers=4,
        storage=StorageConfig(materialize=False, q_active_groups=q),
        replication=ReplicationConfig(replication_factor=2, vlogs_per_broker=2),
        chunk_size=1 * KB,
    )
    kwargs = dict(num_producers=consumers, num_consumers=consumers,
                  duration=0.02, warmup=0.005)
    workload = (SimWorkload.many_streams(streams, **kwargs) if streamlets is None
                else SimWorkload.one_stream(streamlets, **kwargs))
    return SimKeraCluster(config, workload)


def collect_assignments(cluster, consumers):
    all_triples = []
    for idx in range(consumers):
        for broker, positions in cluster._consumer_assignment(idx).items():
            for pos in positions:
                assert cluster.coordinator.stream(pos.stream_id).leaders[
                    pos.streamlet_id
                ] == broker
                all_triples.append((idx, pos.stream_id, pos.streamlet_id, pos.entry))
    return all_triples


def test_every_subpartition_assigned_exactly_once():
    cluster = make_cluster(streams=16, consumers=4)
    triples = collect_assignments(cluster, 4)
    keys = [(s, l, e) for _, s, l, e in triples]
    assert len(keys) == len(set(keys)) == 16  # 16 streams x 1 streamlet x Q1


def test_assignment_balanced():
    cluster = make_cluster(streams=16, consumers=4)
    triples = collect_assignments(cluster, 4)
    loads = {}
    for idx, *_ in triples:
        loads[idx] = loads.get(idx, 0) + 1
    assert set(loads.values()) == {4}


def test_q_entries_all_covered():
    cluster = make_cluster(consumers=4, q=4, streams=None, streamlets=8)
    triples = collect_assignments(cluster, 4)
    keys = {(s, l, e) for _, s, l, e in triples}
    assert len(keys) == 8 * 4  # 8 streamlets x 4 entries
