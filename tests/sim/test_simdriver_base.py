"""SimWorkload/SimResult validation and fluid-producer behaviours."""

import pytest

from repro.common.errors import ConfigError
from repro.common.units import KB
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.simdriver import SimResult, SimWorkload
from repro.kera import KeraConfig, SimKeraCluster


class TestSimWorkload:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SimWorkload(num_producers=0)
        with pytest.raises(ConfigError):
            SimWorkload(streams=())
        with pytest.raises(ConfigError):
            SimWorkload(record_size=0)
        with pytest.raises(ConfigError):
            SimWorkload(duration=0.1, warmup=0.1)

    def test_builders(self):
        many = SimWorkload.many_streams(5)
        assert many.streams == ((0, 1), (1, 1), (2, 1), (3, 1), (4, 1))
        one = SimWorkload.one_stream(32)
        assert one.streams == ((0, 32),)


class TestSimResult:
    def test_unit_properties(self):
        result = SimResult(
            producer_rate=2_500_000,
            consumer_rate=1_000_000,
            records_acked=1,
            records_consumed=1,
            latency={},
            duration=1.0,
            warmup=0.1,
        )
        assert result.mrecords_per_sec == pytest.approx(2.5)
        assert result.consumer_mrecords_per_sec == pytest.approx(1.0)


def run_cluster(chunk_kb=1, streams=8, producers=2, duration=0.04, linger=1e-3):
    config = KeraConfig(
        num_brokers=4,
        storage=StorageConfig(materialize=False),
        replication=ReplicationConfig(replication_factor=2, vlogs_per_broker=2),
        chunk_size=int(chunk_kb * KB),
        linger=linger,
    )
    workload = SimWorkload.many_streams(
        streams, num_producers=producers, num_consumers=0,
        duration=duration, warmup=duration / 4,
    )
    cluster = SimKeraCluster(config, workload)
    return cluster, cluster.run()


class TestFluidProducer:
    def test_chunk_size_scaling(self):
        """Bigger chunks amortize per-chunk costs: throughput rises."""
        _, small = run_cluster(chunk_kb=1)
        _, big = run_cluster(chunk_kb=16)
        assert big.producer_rate > small.producer_rate

    def test_linger_pacing_bounds_request_rate(self):
        # With 512 partitions a full per-partition load takes far longer
        # than the linger to fill, so the pacing path governs: at most
        # ~one request per linger per (producer, broker) pair.
        cluster, result = run_cluster(streams=512, duration=0.05)
        produces = result.rpc_calls.get(("broker", "produce"), 0)
        pairs = 2 * 4
        assert produces <= pairs * (0.05 / 1e-3) * 1.5

    def test_more_producers_more_throughput(self):
        _, two = run_cluster(producers=2)
        _, four = run_cluster(producers=4)
        assert four.producer_rate > two.producer_rate * 1.3

    def test_chunks_carry_at_most_capacity(self):
        cluster, _ = run_cluster(chunk_kb=1)
        cap = cluster.chunk_capacity_records
        for core in cluster.broker_cores.values():
            for stream in core.registry:
                for stored in stream.chunks():
                    assert 1 <= stored.record_count <= cap

    def test_sequences_dense_per_partition(self):
        """Chunk sequence numbers per (partition, producer) have no gaps —
        the invariant exactly-once de-duplication relies on."""
        cluster, _ = run_cluster()
        seqs: dict[tuple, list[int]] = {}
        for core in cluster.broker_cores.values():
            for stream in core.registry:
                for stored in stream.chunks():
                    key = (stream.stream_id, stored.streamlet_id, stored.producer_id)
                    seqs.setdefault(key, []).append(stored.chunk_seq)
        assert seqs
        for key, values in seqs.items():
            assert sorted(values) == list(range(len(values))), key
