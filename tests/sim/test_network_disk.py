"""Network and disk model tests."""

import pytest

from repro.common.errors import SimulationError
from repro.common.units import USEC
from repro.sim.costmodel import CostModel
from repro.sim.disk import DiskModel
from repro.sim.engine import Environment
from repro.sim.network import NetworkModel, LOOPBACK_LATENCY


def make_net(num_nodes=2, **cost_overrides):
    env = Environment()
    cost = CostModel().scaled(**cost_overrides)
    return env, NetworkModel(env, num_nodes, cost)


def test_transfer_time_components():
    env, net = make_net(
        link_bandwidth=1e9, net_latency=10 * USEC, rpc_overhead_bytes=0
    )
    payload = 10**6  # 1 MB at 1 GB/s = 1 ms per side

    def sender(env):
        yield from net.transfer(0, 1, payload)
        return env.now

    elapsed = env.run(env.process(sender(env)))
    assert elapsed == pytest.approx(1e-3 + 10e-6 + 1e-3)


def test_loopback_is_cheap():
    env, net = make_net()

    def sender(env):
        yield from net.transfer(0, 0, 10**9)
        return env.now

    assert env.run(env.process(sender(env))) == pytest.approx(LOOPBACK_LATENCY)


def test_nic_serializes_concurrent_sends():
    env, net = make_net(
        link_bandwidth=1e9, net_latency=0.0, rpc_overhead_bytes=0
    )
    done = []

    def sender(env, tag):
        yield from net.transfer(0, 1, 10**6)
        done.append((round(env.now, 9), tag))

    env.process(sender(env, "a"))
    env.process(sender(env, "b"))
    env.run()
    # Sender tx serializes: second message leaves 1 ms after the first.
    # Receive side pipelines behind it.
    assert done[0][1] == "a"
    assert done[1][0] >= done[0][0] + 1e-3 - 1e-12


def test_transfer_accounting_includes_overhead():
    env, net = make_net(rpc_overhead_bytes=128)

    def sender(env):
        yield from net.transfer(0, 1, 1000)

    env.process(sender(env))
    env.run()
    assert net.bytes_sent == 1128
    assert net.messages_sent == 1


def test_unknown_node_rejected():
    env, net = make_net(num_nodes=2)

    def sender(env):
        yield from net.transfer(0, 7, 10)

    p = env.process(sender(env))
    with pytest.raises(SimulationError):
        env.run(p)


def test_disk_write_and_read_times():
    env = Environment()
    cost = CostModel().scaled(disk_bandwidth=100e6, disk_seek=1e-3)
    disk = DiskModel(env, cost)

    def flusher(env):
        yield from disk.write(10**7)  # 100 ms + 1 ms seek
        yield from disk.read(10**7)
        return env.now

    assert env.run(env.process(flusher(env))) == pytest.approx(2 * (0.1 + 1e-3))
    assert disk.bytes_written == 10**7
    assert disk.bytes_read == 10**7
    assert disk.flush_count == 1


def test_disk_fifo_queue():
    env = Environment()
    disk = DiskModel(env, CostModel())
    order = []

    def flusher(env, tag):
        yield from disk.write(1000)
        order.append(tag)

    for tag in range(3):
        env.process(flusher(env, tag))
    env.run()
    assert order == [0, 1, 2]
