"""Resource and Store semantics tests."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import Environment
from repro.sim.resources import Resource, Store


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, 2)
    done = []

    def worker(env, tag):
        yield res.acquire()
        yield env.timeout(1.0)
        res.release()
        done.append((env.now, tag))

    for tag in range(4):
        env.process(worker(env, tag))
    env.run()
    # Two run in [0,1], the next two in [1,2].
    assert done == [(1.0, 0), (1.0, 1), (2.0, 2), (2.0, 3)]


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, 1)
    order = []

    def worker(env, tag):
        yield res.acquire()
        order.append(tag)
        yield env.timeout(0.1)
        res.release()

    for tag in range(5):
        env.process(worker(env, tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_use_helper():
    env = Environment()
    res = Resource(env, 1)

    def worker(env):
        yield from res.use(2.5)
        return env.now

    assert env.run(env.process(worker(env))) == 2.5
    assert res.in_use == 0


def test_release_without_acquire_rejected():
    env = Environment()
    res = Resource(env, 1)
    with pytest.raises(SimulationError):
        res.release()


def test_utilization_accounting():
    env = Environment()
    res = Resource(env, 2)

    def worker(env):
        yield from res.use(4.0)

    env.process(worker(env))
    env.run(until=8.0)
    # One of two units busy for 4 of 8 seconds -> 25%.
    assert res.utilization(8.0) == pytest.approx(0.25)


def test_capacity_positive():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, 0)


def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    store.put("a")
    store.put("b")

    def consumer(env):
        first = yield store.get()
        second = yield store.get()
        return [first, second]

    assert env.run(env.process(consumer(env))) == ["a", "b"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append((env.now, item))

    def producer(env):
        yield env.timeout(2.0)
        store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [(2.0, "late")]


def test_store_getters_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env, tag):
        item = yield store.get()
        got.append((tag, item))

    for tag in range(3):
        env.process(consumer(env, tag))

    def producer(env):
        yield env.timeout(1.0)
        for item in "abc":
            store.put(item)

    env.process(producer(env))
    env.run()
    assert got == [(0, "a"), (1, "b"), (2, "c")]


def test_store_nowait_and_drain():
    env = Environment()
    store = Store(env)
    with pytest.raises(SimulationError):
        store.get_nowait()
    store.put(1)
    store.put(2)
    assert store.get_nowait() == 1
    assert store.drain() == [2]
    assert len(store) == 0
