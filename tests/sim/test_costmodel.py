"""Cost-model arithmetic and override tests."""

import pytest

from repro.common.units import GB, USEC
from repro.sim.costmodel import CostModel


def test_worker_cores_excludes_dispatch():
    cost = CostModel(cores_per_node=16, dispatch_cores=1)
    assert cost.worker_cores == 15


def test_scaled_overrides_one_field():
    base = CostModel()
    doubled = base.scaled(dispatch_cost=base.dispatch_cost * 2)
    assert doubled.dispatch_cost == pytest.approx(base.dispatch_cost * 2)
    assert doubled.link_bandwidth == base.link_bandwidth
    # The original is frozen and untouched.
    assert base.dispatch_cost != doubled.dispatch_cost


def test_wire_size_adds_framing():
    cost = CostModel(rpc_overhead_bytes=128)
    assert cost.wire_size(1000) == 1128
    assert cost.wire_size(0) == 128


def test_transfer_time():
    cost = CostModel().scaled(link_bandwidth=1 * GB)
    assert cost.transfer_time(1 * GB) == pytest.approx(1.0)


def test_record_cost_grows_with_partitions():
    cost = CostModel(producer_record_cost=0.4 * USEC, producer_cache_partitions=64)
    small = cost.record_cost_for(1)
    at_knee = cost.record_cost_for(64)
    large = cost.record_cost_for(512)
    assert small < at_knee < large
    assert at_knee == pytest.approx(2 * cost.producer_record_cost)
    assert large == pytest.approx(9 * cost.producer_record_cost)


def test_frozen():
    cost = CostModel()
    with pytest.raises(AttributeError):
        cost.dispatch_cost = 0.0
