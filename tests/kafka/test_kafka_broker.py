"""Kafka broker core: produce, replica fetch protocol, consumer fetch."""

import pytest

from repro.common.errors import StorageError, UnknownStreamError
from repro.wire.chunk import Chunk
from repro.kafka.broker import KafkaBrokerCore, ReplicaFetchItem
from repro.kafka.config import KafkaConfig


def batch(topic=0, partition=0, seq=0, n=10, size=1000):
    return Chunk.meta(
        stream_id=topic, streamlet_id=partition, producer_id=0, chunk_seq=seq,
        record_count=n, payload_len=size,
    )


def make_core(r=3, on_complete=None, **cfg):
    config = KafkaConfig(num_brokers=4, replication_factor=r, **cfg)
    core = KafkaBrokerCore(broker_id=0, config=config, on_request_complete=on_complete)
    followers = tuple(range(1, r))
    core.add_leader_partition(0, 0, followers)
    core.add_leader_partition(0, 1, followers)
    return core


def produce(core, chunks, request_id=0):
    from repro.kera.messages import ProduceRequest

    return core.handle_produce(
        ProduceRequest(request_id=request_id, producer_id=0, chunks=chunks)
    )


def test_produce_appends_and_waits_for_hw():
    done = []
    core = make_core(on_complete=done.append)
    outcome = produce(core, [batch(partition=0), batch(partition=1)], request_id=3)
    assert outcome.pending
    assert outcome.new_records == 20
    assert sorted(outcome.touched) == [(0, 0), (0, 1)]
    # Followers fetch: first fetch at 0 returns the data...
    for follower in (1, 2):
        response = core.handle_replica_fetch(
            follower,
            [ReplicaFetchItem(0, 0, 0), ReplicaFetchItem(0, 1, 0)],
        )
        assert all(len(batches) == 1 for _, batches, _ in response)
    assert done == []  # data fetched but not yet confirmed
    # ...the NEXT fetch (offset 1) is the acknowledgment.
    for follower in (1, 2):
        core.handle_replica_fetch(
            follower,
            [ReplicaFetchItem(0, 0, 1), ReplicaFetchItem(0, 1, 1)],
        )
    assert done == [3]


def test_r1_produce_acks_immediately():
    core = make_core(r=1)
    outcome = produce(core, [batch()])
    assert not outcome.pending


def test_unknown_partition_rejected():
    core = make_core()
    with pytest.raises(UnknownStreamError):
        produce(core, [batch(topic=9)])
    with pytest.raises(StorageError):
        core.add_leader_partition(0, 0, (1, 2))


def test_replica_fetch_respects_response_cap():
    core = make_core(
        replica_fetch_max_bytes=10_000, replica_fetch_response_max_bytes=2500
    )
    for partition in (0, 1):
        for seq in range(3):
            produce(core, [batch(partition=partition, seq=seq, size=1000)])
    response = core.handle_replica_fetch(
        1, [ReplicaFetchItem(0, 0, 0), ReplicaFetchItem(0, 1, 0)]
    )
    total = sum(b.size for _, batches, _ in response for b in batches)
    # Partition 0 fills most of the 2.5 KB budget; partition 1 still makes
    # progress with its guaranteed single batch.
    (item0, batches0, next0) = response[0]
    (item1, batches1, next1) = response[1]
    assert len(batches0) == 2 and next0 == 2
    assert len(batches1) == 1 and next1 == 1


def test_has_replica_data():
    core = make_core()
    items = [ReplicaFetchItem(0, 0, 0)]
    assert not core.has_replica_data(1, items)
    produce(core, [batch()])
    assert core.has_replica_data(1, items)
    assert not core.has_replica_data(1, [ReplicaFetchItem(0, 0, 1)])


def test_consumer_fetch_below_hw_only():
    from repro.kera.messages import FetchPosition, FetchRequest

    core = make_core()
    produce(core, [batch(seq=0), batch(partition=0, seq=1)])
    request = FetchRequest(
        request_id=0,
        consumer_id=0,
        positions=[FetchPosition(stream_id=0, streamlet_id=0, entry=0)],
        max_chunks_per_entry=10,
    )
    assert core.handle_fetch(request).record_count == 0
    for follower in (1, 2):
        core.handle_replica_fetch(follower, [ReplicaFetchItem(0, 0, 2)])
    response = core.handle_fetch(request)
    assert response.record_count == 20
    next_pos = response.entries[0].next_position
    assert next_pos.chunk_pos == 2


def test_apply_replica_batches_tracks_follower_copy():
    core = make_core()
    core.add_replica_partition(5, 0)
    core.apply_replica_batches(5, 0, [batch(topic=5)])
    assert core.replica_batches_fetched == 1
    assert len(core.replica_logs[(5, 0)]) == 1
