"""Kafka sim-driver wiring: topology, fetcher assignment, wake plumbing."""

from repro.common.units import KB
from repro.kafka import KafkaConfig, SimKafkaCluster
from repro.simdriver import SimWorkload


def make_cluster(r=3, streams=8, fetchers=1):
    config = KafkaConfig(
        num_brokers=4,
        replication_factor=r,
        chunk_size=1 * KB,
        num_replica_fetchers=fetchers,
    )
    workload = SimWorkload.many_streams(
        streams, num_producers=2, num_consumers=2, duration=0.02, warmup=0.005
    )
    return SimKafkaCluster(config, workload)


def test_followers_are_next_brokers_round_robin():
    cluster = make_cluster()
    assert cluster._followers_of(0) == (1, 2)
    assert cluster._followers_of(3) == (0, 1)


def test_every_partition_has_leader_and_replicas():
    cluster = make_cluster(streams=8)
    leaders = 0
    replicas = 0
    for core in cluster.broker_cores.values():
        leaders += len(core.leader_logs)
        replicas += len(core.replica_logs)
    assert leaders == 8
    assert replicas == 16  # R-1 = 2 per partition


def test_follow_map_covers_all_pairs():
    cluster = make_cluster(streams=8)
    # Every (follower, leader) pair that shares partitions appears once,
    # and each partition is tracked by exactly its two followers.
    tracked = {}
    for (follower, leader), partitions in cluster._follow_map.items():
        assert follower != leader
        for p in partitions:
            tracked[p] = tracked.get(p, 0) + 1
    assert set(tracked.values()) == {2}


def test_r1_has_no_followers():
    cluster = make_cluster(r=1)
    assert cluster._follow_map == {}
    for core in cluster.broker_cores.values():
        for log in core.leader_logs.values():
            assert log.followers == ()


def test_multiple_fetchers_split_partitions():
    cluster = make_cluster(streams=8, fetchers=2)
    cluster._spawn_system_processes()
    # Two fetcher processes per non-empty pair; their partition slices
    # partition the pair's set.
    for (follower, leader), partitions in cluster._follow_map.items():
        slices = [partitions[i::2] for i in range(2)]
        merged = sorted(slices[0] + slices[1])
        assert merged == sorted(partitions)


def test_wake_event_plumbing():
    cluster = make_cluster()
    event = cluster._follower_wait_event(leader=0, follower=1)
    assert not event.triggered
    cluster._wake_followers(leader=0)
    assert event.triggered
    # Waking again with no parked fetch is a no-op.
    cluster._wake_followers(leader=0)


def test_kafka_uses_q1():
    cluster = make_cluster()
    assert cluster.q_active_groups == 1
    assert cluster.broker_service == "kafka"
