"""Kafka partition log: offsets, high watermark, acks, fetch bounds."""

import pytest

from repro.common.errors import ReplicationError, StorageError
from repro.wire.chunk import Chunk
from repro.kafka.log import PartitionLog


def batch(seq=0, n=10, size=1000):
    return Chunk.meta(
        stream_id=0, streamlet_id=0, producer_id=0, chunk_seq=seq,
        record_count=n, payload_len=size,
    )


def make_log(followers=(1, 2)):
    return PartitionLog(topic=0, partition=0, leader=0, followers=tuple(followers))


def test_append_assigns_offsets():
    log = make_log()
    assert log.append(batch(0)) == 0
    assert log.append(batch(1)) == 1
    assert log.log_end_offset == 2
    assert log.record_count == 20
    assert log.high_watermark == 0  # nothing replicated yet


def test_r1_watermark_tracks_log_end():
    log = make_log(followers=())
    log.append(batch(0))
    assert log.high_watermark == 1
    assert log.register_ack(1, request_id=5)  # immediate ack


def test_hw_is_min_over_followers():
    log = make_log(followers=(1, 2))
    for i in range(4):
        log.append(batch(i))
    assert log.advance_follower(1, 3) == []
    assert log.high_watermark == 0  # follower 2 still at 0
    log.advance_follower(2, 2)
    assert log.high_watermark == 2


def test_acks_release_on_watermark():
    log = make_log()
    log.append(batch(0))
    log.append(batch(1))
    assert not log.register_ack(2, request_id=7)
    assert log.pending_acks == 1
    assert log.advance_follower(1, 2) == []
    released = log.advance_follower(2, 2)
    assert released == [7]
    assert log.pending_acks == 0


def test_follower_regression_rejected():
    log = make_log()
    log.append(batch(0))
    log.advance_follower(1, 1)
    with pytest.raises(ReplicationError):
        log.advance_follower(1, 0)
    with pytest.raises(ReplicationError):
        log.advance_follower(1, 5)  # beyond log end
    with pytest.raises(ReplicationError):
        log.advance_follower(9, 0)  # not a follower


def test_fetch_from_respects_max_bytes_but_returns_one():
    log = make_log()
    for i in range(5):
        log.append(batch(i, size=1000))
    batches, nxt = log.fetch_from(0, max_bytes=2100)
    assert [b.chunk_seq for b in batches] == [0, 1]  # header makes #2 not fit
    assert nxt == 2
    # A single huge batch still goes out (progress guarantee).
    tiny, nxt2 = log.fetch_from(2, max_bytes=1)
    assert len(tiny) == 1
    assert nxt2 == 3
    with pytest.raises(StorageError):
        log.fetch_from(99, max_bytes=100)


def test_consumer_fetch_bounded_by_hw():
    log = make_log()
    for i in range(3):
        log.append(batch(i))
    assert log.consumer_fetch(0, 10) == ([], 0)
    log.advance_follower(1, 2)
    log.advance_follower(2, 2)
    batches, nxt = log.consumer_fetch(0, 10)
    assert [b.chunk_seq for b in batches] == [0, 1]
    assert nxt == 2
    # Beyond HW: nothing.
    assert log.consumer_fetch(2, 10) == ([], 2)
