"""scripts/perf_compare.py: run comparison tolerant of missing stages.

Runs measure different stage subsets as the suite grows (the ``sockets``
rows carry gateway stages no earlier row has), so the comparer must
treat a missing stage as a note or a named violation — never a crash.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "perf_compare.py"
_spec = importlib.util.spec_from_file_location("perf_compare", _SCRIPT)
perf_compare = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(perf_compare)


def _doc(tmp_path: Path, runs: list[dict]) -> str:
    path = tmp_path / "bench.json"
    path.write_text(json.dumps({"schema": 1, "runs": runs}))
    return str(path)


def _run(label: str, benchmarks: dict[str, float], **extra) -> dict:
    return {
        "label": label,
        "benchmarks": {
            name: {"value": value, "unit": "chunks/s"}
            for name, value in benchmarks.items()
        },
        **extra,
    }


def test_shared_stage_ratio(tmp_path, capsys):
    doc = _doc(
        tmp_path,
        [_run("base", {"ship": 100.0}), _run("cand", {"ship": 99.0})],
    )
    assert perf_compare.main([doc, "--baseline", "base", "--candidate", "cand"]) == 0
    assert "0.99x" in capsys.readouterr().out


def test_candidate_missing_a_baseline_stage_is_tolerated(tmp_path, capsys):
    doc = _doc(
        tmp_path,
        [
            _run("base", {"ship": 100.0, "flush": 50.0}),
            _run("cand", {"ship": 120.0}),
        ],
    )
    assert perf_compare.main([doc, "--baseline", "base", "--candidate", "cand"]) == 0
    out = capsys.readouterr().out
    assert "ship" in out
    assert "flush" not in out


def test_disjoint_runs_do_not_crash(tmp_path, capsys):
    doc = _doc(
        tmp_path,
        [_run("base", {"ship": 100.0}), _run("cand", {"gateway": 8000.0})],
    )
    assert perf_compare.main([doc, "--baseline", "base", "--candidate", "cand"]) == 0
    assert "share no benchmarks" in capsys.readouterr().out


def test_require_abs_checked_on_disjoint_runs(tmp_path, capsys):
    doc = _doc(
        tmp_path,
        [_run("base", {"ship": 100.0}), _run("cand", {"gateway": 8000.0})],
    )
    assert (
        perf_compare.main(
            [
                doc,
                "--baseline",
                "base",
                "--candidate",
                "cand",
                "--require-abs",
                "gateway=10000",
                "--strict",
            ]
        )
        != 0
    )
    assert "below required absolute" in capsys.readouterr().out


def test_require_on_unshared_stage_is_a_violation(tmp_path, capsys):
    doc = _doc(
        tmp_path,
        [_run("base", {"ship": 100.0}), _run("cand", {"ship": 90.0})],
    )
    code = perf_compare.main(
        [doc, "--baseline", "base", "--candidate", "cand",
         "--require", "flush=1.0", "--strict"]
    )
    assert code != 0
    assert "not measured" in capsys.readouterr().out


def test_run_without_benchmarks_key_is_tolerated(tmp_path, capsys):
    doc = _doc(
        tmp_path,
        [{"label": "base"}, _run("cand", {"ship": 90.0})],
    )
    assert perf_compare.main([doc, "--baseline", "base", "--candidate", "cand"]) == 0
    assert "share no benchmarks" in capsys.readouterr().out


def test_history_spans_runs_with_different_stages(tmp_path, capsys):
    doc = _doc(
        tmp_path,
        [
            _run("base", {"ship": 100.0}),
            _run("sockets", {"ship": 99.0, "gateway": 8000.0}),
        ],
    )
    assert (
        perf_compare.main(
            [doc, "--baseline", "base", "--candidate", "sockets", "--history"]
        )
        == 0
    )
    out = capsys.readouterr().out
    # Each stage's trajectory is anchored to its own first measurement.
    assert "gateway" in out
    assert "1.00x" in out


def test_strict_flags_regression(tmp_path, capsys):
    doc = _doc(
        tmp_path,
        [_run("base", {"ship": 100.0}), _run("cand", {"ship": 10.0})],
    )
    code = perf_compare.main(
        [doc, "--baseline", "base", "--candidate", "cand", "--strict"]
    )
    assert code != 0
    assert "regression" in capsys.readouterr().out


def test_unknown_label_exits_with_inventory(tmp_path):
    doc = _doc(tmp_path, [_run("base", {"ship": 100.0})])
    with pytest.raises(SystemExit) as exc:
        perf_compare.main([doc, "--baseline", "nope", "--candidate", "base"])
    assert "nope" in str(exc.value)


def _run_typed(label: str, benchmarks: dict[str, tuple[float, str]]) -> dict:
    return {
        "label": label,
        "benchmarks": {
            name: {"value": value, "unit": unit}
            for name, (value, unit) in benchmarks.items()
        },
    }


def test_frac_unit_compares_downward_under_latency(tmp_path, capsys):
    # failover_throughput_dip is a fraction: smaller is better, so the
    # improvement ratio inverts to baseline/candidate just like ms.
    doc = _doc(
        tmp_path,
        [
            _run_typed("base", {"dip": (0.8, "frac")}),
            _run_typed("cand", {"dip": (0.4, "frac")}),
        ],
    )
    code = perf_compare.main(
        [doc, "--baseline", "base", "--candidate", "cand", "--latency", "--strict"]
    )
    assert code == 0
    assert "2.00x" in capsys.readouterr().out


def test_require_abs_is_a_ceiling_for_downward_units(tmp_path, capsys):
    doc = _doc(
        tmp_path,
        [
            _run_typed(
                "failover",
                {
                    "recovery_time_ms": (120.0, "ms"),
                    "failover_throughput_dip": (0.7, "frac"),
                },
            )
        ],
    )
    ok = perf_compare.main(
        [
            doc,
            "--baseline", "failover", "--candidate", "failover", "--latency",
            "--require-abs", "recovery_time_ms=2000",
            "--require-abs", "failover_throughput_dip=0.99",
        ]
    )
    assert ok == 0
    assert "thresholds met" in capsys.readouterr().out
    too_slow = perf_compare.main(
        [
            doc,
            "--baseline", "failover", "--candidate", "failover", "--latency",
            "--strict", "--require-abs", "recovery_time_ms=100",
        ]
    )
    assert too_slow != 0
    assert "violation" in capsys.readouterr().out


def test_frac_unit_stays_upward_without_latency_flag(tmp_path, capsys):
    # Without --latency nothing flips: a shrinking frac value reads as a
    # regression, which is why the failover gate always passes the flag.
    doc = _doc(
        tmp_path,
        [
            _run_typed("base", {"dip": (0.8, "frac")}),
            _run_typed("cand", {"dip": (0.4, "frac")}),
        ],
    )
    code = perf_compare.main(
        [
            doc, "--baseline", "base", "--candidate", "cand",
            "--strict", "--max-regression", "0.2",
        ]
    )
    assert code != 0
    assert "regression" in capsys.readouterr().out
