"""scripts/perf_compare.py: run comparison tolerant of missing stages.

Runs measure different stage subsets as the suite grows (the ``sockets``
rows carry gateway stages no earlier row has), so the comparer must
treat a missing stage as a note or a named violation — never a crash.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "perf_compare.py"
_spec = importlib.util.spec_from_file_location("perf_compare", _SCRIPT)
perf_compare = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(perf_compare)


def _doc(tmp_path: Path, runs: list[dict]) -> str:
    path = tmp_path / "bench.json"
    path.write_text(json.dumps({"schema": 1, "runs": runs}))
    return str(path)


def _run(label: str, benchmarks: dict[str, float], **extra) -> dict:
    return {
        "label": label,
        "benchmarks": {
            name: {"value": value, "unit": "chunks/s"}
            for name, value in benchmarks.items()
        },
        **extra,
    }


def test_shared_stage_ratio(tmp_path, capsys):
    doc = _doc(
        tmp_path,
        [_run("base", {"ship": 100.0}), _run("cand", {"ship": 99.0})],
    )
    assert perf_compare.main([doc, "--baseline", "base", "--candidate", "cand"]) == 0
    assert "0.99x" in capsys.readouterr().out


def test_candidate_missing_a_baseline_stage_is_tolerated(tmp_path, capsys):
    doc = _doc(
        tmp_path,
        [
            _run("base", {"ship": 100.0, "flush": 50.0}),
            _run("cand", {"ship": 120.0}),
        ],
    )
    assert perf_compare.main([doc, "--baseline", "base", "--candidate", "cand"]) == 0
    out = capsys.readouterr().out
    assert "ship" in out
    assert "flush" not in out


def test_disjoint_runs_do_not_crash(tmp_path, capsys):
    doc = _doc(
        tmp_path,
        [_run("base", {"ship": 100.0}), _run("cand", {"gateway": 8000.0})],
    )
    assert perf_compare.main([doc, "--baseline", "base", "--candidate", "cand"]) == 0
    assert "share no benchmarks" in capsys.readouterr().out


def test_require_abs_checked_on_disjoint_runs(tmp_path, capsys):
    doc = _doc(
        tmp_path,
        [_run("base", {"ship": 100.0}), _run("cand", {"gateway": 8000.0})],
    )
    assert (
        perf_compare.main(
            [
                doc,
                "--baseline",
                "base",
                "--candidate",
                "cand",
                "--require-abs",
                "gateway=10000",
                "--strict",
            ]
        )
        != 0
    )
    assert "below required absolute" in capsys.readouterr().out


def test_require_on_unshared_stage_is_a_violation(tmp_path, capsys):
    doc = _doc(
        tmp_path,
        [_run("base", {"ship": 100.0}), _run("cand", {"ship": 90.0})],
    )
    code = perf_compare.main(
        [doc, "--baseline", "base", "--candidate", "cand",
         "--require", "flush=1.0", "--strict"]
    )
    assert code != 0
    assert "not measured" in capsys.readouterr().out


def test_run_without_benchmarks_key_is_tolerated(tmp_path, capsys):
    doc = _doc(
        tmp_path,
        [{"label": "base"}, _run("cand", {"ship": 90.0})],
    )
    assert perf_compare.main([doc, "--baseline", "base", "--candidate", "cand"]) == 0
    assert "share no benchmarks" in capsys.readouterr().out


def test_history_spans_runs_with_different_stages(tmp_path, capsys):
    doc = _doc(
        tmp_path,
        [
            _run("base", {"ship": 100.0}),
            _run("sockets", {"ship": 99.0, "gateway": 8000.0}),
        ],
    )
    assert (
        perf_compare.main(
            [doc, "--baseline", "base", "--candidate", "sockets", "--history"]
        )
        == 0
    )
    out = capsys.readouterr().out
    # Each stage's trajectory is anchored to its own first measurement.
    assert "gateway" in out
    assert "1.00x" in out


def test_strict_flags_regression(tmp_path, capsys):
    doc = _doc(
        tmp_path,
        [_run("base", {"ship": 100.0}), _run("cand", {"ship": 10.0})],
    )
    code = perf_compare.main(
        [doc, "--baseline", "base", "--candidate", "cand", "--strict"]
    )
    assert code != 0
    assert "regression" in capsys.readouterr().out


def test_unknown_label_exits_with_inventory(tmp_path):
    doc = _doc(tmp_path, [_run("base", {"ship": 100.0})])
    with pytest.raises(SystemExit) as exc:
        perf_compare.main([doc, "--baseline", "nope", "--candidate", "base"])
    assert "nope" in str(exc.value)
