"""The `python -m repro.bench` command-line interface."""

import json

from repro.bench.__main__ import main


def test_list_shows_every_figure(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for fig_id in ("fig08", "fig21", "abl_consolidation", "abl_dispatch"):
        assert fig_id in out


def test_no_args_lists(capsys):
    assert main([]) == 0
    assert "fig08" in capsys.readouterr().out


def test_unknown_figure_rejected(capsys):
    assert main(["fig99"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_runs_figure_and_saves(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DURATION", "0.02")
    out_path = tmp_path / "series.json"
    # fig12 trimmed is 9 tiny points — the fastest real figure.
    assert main(["fig12", "--save", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "fig12" in out
    payload = json.loads(out_path.read_text())
    assert payload[0]["fig_id"] == "fig12"
    assert payload[0]["series"]
