"""Benchmark harness tests: specs are well-formed, reports render."""

import json

import pytest

from repro.bench import FIGURES
from repro.bench.figures import FigureResult, FigureSpec
from repro.bench.report import format_figure, save_results
from repro.bench.workload import bench_duration, kafka_point, kera_point


def test_registry_covers_every_figure_and_ablation():
    expected = {f"fig{n:02d}" for n in range(8, 22)} | {
        "abl_consolidation",
        "abl_dispatch",
    }
    assert set(FIGURES) == expected


@pytest.mark.parametrize("fig_id", sorted(FIGURES))
def test_specs_are_well_formed(fig_id):
    spec = FIGURES[fig_id]()
    assert isinstance(spec, FigureSpec)
    assert spec.fig_id == fig_id
    assert spec.points, "a figure needs datapoints"
    assert spec.paper_claim
    labels = [(p.series, p.x) for p in spec.points]
    assert len(labels) == len(set(labels)), "duplicate (series, x) point"


def test_point_runs_and_reports(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DURATION", "0.02")
    point = kera_point(series="KerA R1", x=8, streams=8, producers=1, r=1, vlogs=1)
    pr = point.run()
    assert pr.mrps > 0
    assert pr.result.records_acked > 0


def test_kafka_point_runs(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DURATION", "0.02")
    point = kafka_point(series="Kafka R2", x=8, streams=8, producers=1, r=2)
    pr = point.run()
    assert pr.mrps > 0


def test_bench_duration_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DURATION", "0.33")
    assert bench_duration() == pytest.approx(0.33)
    monkeypatch.delenv("REPRO_BENCH_DURATION")
    assert bench_duration() == pytest.approx(0.15)


def test_format_and_save(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DURATION", "0.02")
    spec = FigureSpec(
        "figXX",
        "toy",
        "claim",
        [
            kera_point(series="A", x=4, streams=4, producers=1, r=1, vlogs=1),
            kera_point(series="A", x=8, streams=8, producers=1, r=1, vlogs=1),
        ],
    )
    result = FigureResult(spec=spec, results=[p.run() for p in spec.points])
    text = format_figure(result)
    assert "figXX" in text and "A" in text and "claim" in text
    out = tmp_path / "results.json"
    save_results([result], out)
    payload = json.loads(out.read_text())
    assert payload[0]["fig_id"] == "figXX"
    assert len(payload[0]["series"]["A"]) == 2


def test_full_axis_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_FULL", "1")
    full = FIGURES["fig14"]()
    monkeypatch.setenv("REPRO_BENCH_FULL", "0")
    trimmed = FIGURES["fig14"]()
    assert len(full.points) > len(trimmed.points)
