"""AppendBuffer invariant tests."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import SegmentFullError, SegmentSealedError, StorageError
from repro.wire.buffers import AppendBuffer


def test_append_and_view():
    buf = AppendBuffer(64)
    off1 = buf.append(b"hello")
    off2 = buf.append(b"world")
    assert (off1, off2) == (0, 5)
    assert bytes(buf.view(0, 5)) == b"hello"
    assert bytes(buf.view(5, 5)) == b"world"
    assert buf.head == 10
    assert len(buf) == 10


def test_full_append_rejected():
    buf = AppendBuffer(8)
    buf.append(b"123456")
    assert not buf.fits(3)
    with pytest.raises(SegmentFullError):
        buf.append(b"789")
    # Failed append leaves state untouched.
    assert buf.head == 6


def test_seal_blocks_appends():
    buf = AppendBuffer(8)
    buf.append(b"a")
    buf.seal()
    assert buf.sealed
    with pytest.raises(SegmentSealedError):
        buf.append(b"b")
    with pytest.raises(SegmentSealedError):
        buf.reserve(1)


def test_durable_head_monotone_and_bounded():
    buf = AppendBuffer(16)
    buf.append(b"abcdefgh")
    buf.advance_durable(4)
    assert buf.durable_head == 4
    with pytest.raises(StorageError):
        buf.advance_durable(3)  # backwards
    with pytest.raises(StorageError):
        buf.advance_durable(9)  # past head
    buf.advance_durable(8)
    assert buf.durable_head == 8


def test_metadata_only_mode():
    buf = AppendBuffer(100, materialize=False)
    off = buf.reserve(40)
    assert off == 0
    assert buf.head == 40
    # Appends still do accounting without storing.
    buf.append(b"x" * 10)
    assert buf.head == 50
    with pytest.raises(StorageError):
        buf.view(0, 10)


def test_view_bounds_checked():
    buf = AppendBuffer(32)
    buf.append(b"abc")
    with pytest.raises(StorageError):
        buf.view(0, 4)  # beyond head
    with pytest.raises(StorageError):
        buf.view(-1, 1)


def test_capacity_must_be_positive():
    with pytest.raises(StorageError):
        AppendBuffer(0)


@given(st.lists(st.binary(min_size=1, max_size=20), max_size=30))
def test_invariant_head_durable_order(parts):
    buf = AppendBuffer(256)
    written = []
    for part in parts:
        if buf.fits(len(part)):
            buf.append(part)
            written.append(part)
    joined = b"".join(written)
    assert buf.head == len(joined)
    if joined:
        assert bytes(buf.view(0, buf.head)) == joined
    buf.advance_durable(buf.head)
    assert 0 <= buf.durable_head <= buf.head <= buf.capacity
