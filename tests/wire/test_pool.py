"""Buffer pool tests: accounting, reuse, and misuse rejection."""

import threading

import pytest

from repro.common.errors import StorageError
from repro.wire.pool import BufferPool


def test_rent_allocates_and_release_recycles():
    pool = BufferPool(64)
    buf = pool.rent()
    assert len(buf) == 64
    assert (pool.rented, pool.free, pool.allocated) == (1, 0, 1)
    pool.release(buf)
    assert (pool.rented, pool.free, pool.allocated) == (0, 1, 1)
    again = pool.rent()
    assert again is buf
    assert pool.allocated == 1


def test_wrong_size_release_rejected():
    pool = BufferPool(64)
    with pytest.raises(StorageError):
        pool.release(bytearray(63))


def test_free_list_is_bounded():
    pool = BufferPool(16, max_free=2)
    buffers = [pool.rent() for _ in range(4)]
    for buf in buffers:
        pool.release(buf)
    assert pool.free == 2
    assert pool.rented == 0


def test_invalid_construction():
    with pytest.raises(StorageError):
        BufferPool(0)
    with pytest.raises(StorageError):
        BufferPool(16, max_free=-1)


def test_concurrent_rent_release_accounting():
    pool = BufferPool(32, max_free=64)
    errors = []

    def churn():
        try:
            for _ in range(200):
                buf = pool.rent()
                buf[0] = 0xAB
                pool.release(buf)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=churn) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert pool.rented == 0
    assert pool.free <= pool.allocated <= 4
