"""Golden-bytes wire compatibility tests.

The encode-once data path (pooled builders, cached frames, in-place
placement stamps, vectorized record batches) must not change the wire
format by a single byte. These tests pin the exact encodings against
hex literals captured from the reference encoders, and prove every
fast-path encoder byte-identical to its straightforward counterpart.
"""

import pytest
from hypothesis import given, strategies as st

from repro.storage.segment import Segment
from repro.wire.chunk import (
    Chunk,
    ChunkBuilder,
    CHUNK_HEADER_SIZE,
    CHUNK_PLACEMENT_OFFSET,
    encode_chunk,
    decode_chunk,
    placement_bytes,
)
from repro.wire.pool import BufferPool
from repro.wire.record import Record, encode_record, encode_records, decode_records

# -- record golden bytes ----------------------------------------------------

RECORD_GOLDEN = [
    (Record(value=b"hello"), "fa6f235f00000500000068656c6c6f"),
    (Record(value=b""), "8a7c2a57000000000000"),
    (Record(value=b"v", version=7), "8b6c0b94010001000000070000000000000076"),
    (
        Record(value=b"ts", timestamp=1_700_000_000_000),
        "032ba5fc0200020000000068e5cf8b0100007473",
    ),
    (
        Record(value=b"payload", keys=(b"k1", b"key-two"), version=3, timestamp=42),
        "aab4a3ee03020700000003000000000000002a00000000000000"
        "020007006b316b65792d74776f7061796c6f6164",
    ),
]


@pytest.mark.parametrize("record,expected_hex", RECORD_GOLDEN)
def test_record_golden_bytes(record, expected_hex):
    encoded = encode_record(record)
    assert encoded.hex() == expected_hex
    assert decode_records(encoded) == [record]


# -- chunk golden bytes -----------------------------------------------------


def golden_chunk():
    payload = encode_records(
        [Record(value=b"abc"), Record(value=b"defg", keys=(b"k",))]
    )
    return Chunk(
        stream_id=1,
        streamlet_id=2,
        producer_id=3,
        chunk_seq=4,
        record_count=2,
        payload_len=len(payload),
        payload=payload,
    )


CHUNK_UNASSIGNED_HEX = (
    "7ace010101000000020000000300000004000000ffffffffffffffff"
    "020000001e00000033f88b733681cf55000003000000616263"
    "edbfdb5400010400000001006b64656667"
)
CHUNK_PLACED_HEX = (
    "7ace01010100000002000000030000000400000005000000110000"
    "00020000001e00000033f88b733681cf55000003000000616263"
    "edbfdb5400010400000001006b64656667"
)
CHUNK_META_HEX = (
    "7ace010009000000080000000700000006000000ffffffffffffffff"
    "0200000010000000000000000000000000000000000000000000"
    "0000"
)


def test_chunk_golden_bytes():
    chunk = golden_chunk()
    assert encode_chunk(chunk).hex() == CHUNK_UNASSIGNED_HEX
    placed = chunk.assigned(group_id=5, segment_id=17)
    assert encode_chunk(placed).hex() == CHUNK_PLACED_HEX


def test_meta_chunk_golden_bytes():
    meta = Chunk.meta(
        stream_id=9,
        streamlet_id=8,
        producer_id=7,
        chunk_seq=6,
        record_count=2,
        payload_len=16,
    )
    assert encode_chunk(meta).hex() == CHUNK_META_HEX


def test_placement_stamp_equals_reencode():
    """Patching the 8 placement bytes in an encoded frame must produce the
    exact bytes of re-encoding the assigned clone from scratch."""
    chunk = golden_chunk()
    frame = bytearray(encode_chunk(chunk))
    frame[CHUNK_PLACEMENT_OFFSET : CHUNK_PLACEMENT_OFFSET + 8] = placement_bytes(
        5, 17
    )
    assert bytes(frame).hex() == CHUNK_PLACED_HEX
    decoded, _ = decode_chunk(bytes(frame))
    assert (decoded.group_id, decoded.segment_id) == (5, 17)
    assert decoded.records() == chunk.records()


# -- zero-copy encoders are byte-identical ----------------------------------


def test_vectorized_uniform_batch_matches_per_record():
    records = [Record(value=bytes([i]) * 90) for i in range(16)]
    assert encode_records(records) == b"".join(encode_record(r) for r in records)


def test_mixed_batch_matches_per_record():
    records = [
        Record(value=b"a" * 10),
        Record(value=b"b" * 10, keys=(b"k",)),
        Record(value=b"c" * 10, version=1),
        Record(value=b"d" * 12),
    ] * 3
    assert encode_records(records) == b"".join(encode_record(r) for r in records)


@given(
    st.integers(min_value=8, max_value=40),
    st.integers(min_value=0, max_value=64),
    st.integers(min_value=0, max_value=255),
)
def test_vectorized_batch_property(count, value_len, seed):
    values = [
        bytes((seed + i + j) % 256 for j in range(value_len)) for i in range(count)
    ]
    records = [Record(value=v) for v in values]
    assert encode_records(records) == b"".join(encode_record(r) for r in records)


def test_builder_frame_matches_reference_encoding():
    records = [Record(value=b"r" * 30), Record(value=b"s" * 7, keys=(b"key",))]
    builder = ChunkBuilder(1024, stream_id=1, streamlet_id=2, producer_id=3)
    for record in records:
        assert builder.try_append(record)
    chunk = builder.build(chunk_seq=9)
    payload = b"".join(encode_record(r) for r in records)
    reference = Chunk(
        stream_id=1,
        streamlet_id=2,
        producer_id=3,
        chunk_seq=9,
        record_count=2,
        payload_len=len(payload),
        payload=payload,
    )
    assert chunk.wire == encode_chunk(reference)
    assert bytes(chunk.payload) == payload


def test_pooled_builder_matches_unpooled():
    pool = BufferPool(CHUNK_HEADER_SIZE + 256)
    pooled = ChunkBuilder(
        256, stream_id=1, streamlet_id=2, producer_id=3, pool=pool
    )
    plain = ChunkBuilder(256, stream_id=1, streamlet_id=2, producer_id=3)
    for record in [Record(value=b"x" * 40), Record(value=b"y" * 12)]:
        assert pooled.try_append(record)
        assert plain.try_append(record)
    assert pooled.build(chunk_seq=5).wire == plain.build(chunk_seq=5).wire
    pooled.close()
    assert pool.free == 1


def test_builder_reuse_is_byte_stable():
    """Building, resetting, and building again from one scratch buffer must
    not leak bytes of the previous chunk into the next frame."""
    builder = ChunkBuilder(256, stream_id=1, streamlet_id=2, producer_id=3)
    assert builder.try_append(Record(value=b"\xff" * 100))
    first = builder.build(chunk_seq=0)
    assert builder.try_append(Record(value=b"\x00" * 8))
    second = builder.build(chunk_seq=1)
    assert bytes(first.payload) == encode_record(Record(value=b"\xff" * 100))
    assert bytes(second.payload) == encode_record(Record(value=b"\x00" * 8))
    decoded, _ = decode_chunk(second.wire)
    assert decoded.records() == [Record(value=b"\x00" * 8)]


# -- segment bytes carry the stamped placement ------------------------------


def test_segment_append_stamps_encoded_bytes():
    """A materialized segment's bytes must equal the full re-encoding of
    each assigned chunk: the in-place header patch is invisible on the
    wire."""
    seg = Segment(
        stream_id=1,
        streamlet_id=2,
        group_id=7,
        segment_id=3,
        capacity=4096,
        materialize=True,
    )
    chunks = [golden_chunk().assigned(group_id=c, segment_id=c) for c in (0, 1)]
    expected = b""
    for chunk in chunks:
        seg.append(chunk, base_record_offset=0)
        expected += encode_chunk(chunk.assigned(group_id=7, segment_id=3))
    assert bytes(seg.buffer.view(0, seg.buffer.head)) == expected
    for stored in seg.entries:
        decoded = stored.to_chunk(verify=True)
        assert (decoded.group_id, decoded.segment_id) == (7, 3)
