"""SPSC ring: framing, wrap-around pads, credit, close/drain contract."""

import pytest

from repro.common.errors import RpcError
from repro.wire.ring import HEADER_SIZE, RECORD_HEADER, RingClosed, SpscRing


def make_ring(capacity=256):
    return SpscRing(bytearray(HEADER_SIZE + capacity), reset=True)


def test_roundtrip_single_record():
    ring = make_ring()
    assert ring.try_write(1, [b"hello ", b"world"])
    kind, view = ring.try_read()
    assert kind == 1
    assert bytes(view) == b"hello world"
    ring.consume()
    assert ring.try_read() is None
    assert ring.free_bytes == ring.capacity


def test_zero_copy_view_aliases_ring():
    ring = make_ring()
    ring.try_write(7, [b"abc"])
    _, view = ring.try_read()
    assert isinstance(view, memoryview)
    ring.consume()


def test_fifo_order_many_records():
    ring = make_ring(1024)
    for i in range(10):
        assert ring.try_write(2, [bytes([i]) * (i + 1)])
    for i in range(10):
        kind, view = ring.try_read()
        assert kind == 2
        assert bytes(view) == bytes([i]) * (i + 1)
        ring.consume()
    assert ring.try_read() is None


def test_full_ring_refuses_then_recovers():
    ring = make_ring(64)
    payload = b"x" * 24  # 8 header + 24 = 32 per record
    assert ring.try_write(1, [payload])
    assert ring.try_write(1, [payload])
    assert not ring.try_write(1, [payload])  # full
    assert ring.free_bytes == 0
    ring.try_read()
    ring.consume()
    assert ring.try_write(1, [payload])


def test_wraparound_inserts_pad():
    ring = make_ring(64)
    # First record takes 40 bytes; after consuming it the next 40-byte
    # record would straddle the wrap point — the writer pads and wraps.
    assert ring.try_write(1, [b"a" * 32])
    ring.try_read()
    ring.consume()
    assert ring.try_write(1, [b"b" * 32])
    kind, view = ring.try_read()
    assert kind == 1
    assert bytes(view) == b"b" * 32
    ring.consume()
    # Sustained traffic across many wraps stays intact.
    for i in range(100):
        n = (i % 3) * 8 + 4
        assert ring.write(3, [bytes([i % 251]) * n], timeout=1.0)
        kind, view = ring.try_read()
        assert (kind, bytes(view)) == (3, bytes([i % 251]) * n)
        ring.consume()


def test_oversized_record_rejected():
    ring = make_ring(64)
    with pytest.raises(RpcError):
        ring.try_write(1, [b"x" * 100])


def test_pad_kind_reserved():
    ring = make_ring()
    with pytest.raises(RpcError):
        ring.try_write(0, [b"nope"])


def test_consume_without_peek_rejected():
    ring = make_ring()
    with pytest.raises(RpcError):
        ring.consume()


def test_close_then_drain():
    ring = make_ring()
    ring.try_write(1, [b"queued"])
    ring.close()
    with pytest.raises(RingClosed):
        ring.try_write(1, [b"late"])
    # Queued records still drain after close.
    kind, view = ring.read(timeout=0.1)
    assert (kind, bytes(view)) == (1, b"queued")
    ring.consume()
    assert ring.read(timeout=0.1) is None


def test_write_timeout_when_full():
    ring = make_ring(32)
    assert ring.try_write(1, [b"x" * 24])
    assert not ring.write(1, [b"x" * 24], timeout=0.02)


def test_credit_tracks_free_bytes():
    ring = make_ring(128)
    assert ring.free_bytes == 128
    ring.try_write(1, [b"x" * 8])
    assert ring.free_bytes == 128 - RECORD_HEADER - 8
    ring.try_read()
    ring.consume()
    assert ring.free_bytes == 128


def test_shared_view_two_ring_objects():
    # Reader and writer attach separate SpscRing objects over the same
    # buffer, as two processes do over one shared-memory block.
    buf = bytearray(HEADER_SIZE + 256)
    writer = SpscRing(buf, reset=True)
    reader = SpscRing(buf)
    writer.try_write(5, [b"cross-process"])
    kind, view = reader.try_read()
    assert (kind, bytes(view)) == (5, b"cross-process")
    reader.consume()
    assert writer.free_bytes == writer.capacity
