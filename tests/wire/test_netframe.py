"""Frame protocol edge cases: partial reads, short writes, garbage, EOF.

The TCP framing layer must never wedge a connection into an undefined
state: every malformed input maps to a typed :class:`FrameProtocolError`
and every partial-progress syscall (short write, dribbled read) resumes
from the exact byte boundary.
"""

import asyncio
import socket

import pytest

from repro.common.errors import WireFormatError
from repro.wire.netframe import (
    FRAME_HEADER_SIZE,
    FRAME_MAGIC,
    FrameProtocolError,
    FrameReceiver,
    pack_frame_header,
    parse_frame_header,
    read_frame_async,
    send_frame,
    write_frame_async,
)


class DribbleSocket:
    """recv_into-only socket double that returns at most ``chunk`` bytes
    per call — the pathological slow-peer read pattern."""

    def __init__(self, data: bytes, chunk: int = 1):
        self._data = memoryview(bytes(data))
        self._pos = 0
        self._chunk = chunk

    def recv_into(self, buf) -> int:
        n = min(self._chunk, len(buf), len(self._data) - self._pos)
        buf[:n] = self._data[self._pos : self._pos + n]
        self._pos += n
        return n


class StingySendSocket:
    """sendmsg-only socket double that accepts at most ``accept`` bytes
    per call, forcing the short-write resume path mid-part and mid-vector."""

    def __init__(self, accept: int = 3):
        self._accept = accept
        self.sent = bytearray()
        self.calls = 0

    def sendmsg(self, buffers) -> int:
        self.calls += 1
        budget = self._accept
        taken = 0
        for part in buffers:
            view = memoryview(part)
            n = min(budget - taken, len(view))
            self.sent += view[:n]
            taken += n
            if taken == budget:
                break
        return taken


def _frame_bytes(kind: int, payload: bytes) -> bytes:
    return pack_frame_header(kind, len(payload)) + payload


# -- header parsing ------------------------------------------------------------


def test_parse_header_roundtrip():
    head = pack_frame_header(7, 1234)
    assert len(head) == FRAME_HEADER_SIZE
    assert parse_frame_header(head, max_frame_bytes=1 << 20) == (7, 1234)


def test_garbage_magic_is_typed_error():
    head = b"HTTP" + pack_frame_header(0, 0)[4:]
    with pytest.raises(FrameProtocolError, match="magic"):
        parse_frame_header(head, max_frame_bytes=1 << 20)


def test_absurd_length_is_garbage_not_allocation():
    head = pack_frame_header(0, 1 << 30)
    with pytest.raises(FrameProtocolError, match="cap"):
        parse_frame_header(head, max_frame_bytes=1 << 20)


def test_frame_error_is_wire_format_error():
    # Callers catch the storage taxonomy, not a transport-private type.
    assert issubclass(FrameProtocolError, WireFormatError)


# -- blocking receiver ---------------------------------------------------------


def test_recv_frame_assembles_from_single_byte_reads():
    payload = bytes(range(256)) * 3
    rx = FrameReceiver(DribbleSocket(_frame_bytes(5, payload), chunk=1))
    kind, view = rx.recv_frame()
    assert kind == 5
    assert bytes(view) == payload


def test_recv_frame_clean_eof_between_frames_returns_none():
    rx = FrameReceiver(DribbleSocket(_frame_bytes(1, b"abc"), chunk=64))
    assert rx.recv_frame() is not None
    assert rx.recv_frame() is None


def test_recv_frame_eof_mid_header_raises():
    data = _frame_bytes(1, b"abc")[: FRAME_HEADER_SIZE - 3]
    rx = FrameReceiver(DribbleSocket(data, chunk=64))
    with pytest.raises(FrameProtocolError, match="mid-frame"):
        rx.recv_frame()


def test_recv_frame_eof_mid_payload_raises():
    data = _frame_bytes(1, b"x" * 100)[:-40]
    rx = FrameReceiver(DribbleSocket(data, chunk=7))
    with pytest.raises(FrameProtocolError, match="mid-frame"):
        rx.recv_frame()


def test_recv_frame_garbage_header_raises_before_payload_read():
    rx = FrameReceiver(DribbleSocket(b"\x00" * 64, chunk=64))
    with pytest.raises(FrameProtocolError, match="magic"):
        rx.recv_frame()


def test_receive_buffer_grows_for_large_frames():
    payload = bytes(200) * 1024  # 200 KiB > the 64 KiB initial buffer
    rx = FrameReceiver(DribbleSocket(_frame_bytes(2, payload), chunk=8192))
    kind, view = rx.recv_frame()
    assert (kind, len(view)) == (2, len(payload))


def test_returned_view_is_invalidated_by_next_recv():
    data = _frame_bytes(1, b"first") + _frame_bytes(1, b"secon")
    rx = FrameReceiver(DribbleSocket(data, chunk=64))
    _, first = rx.recv_frame()
    assert bytes(first) == b"first"
    rx.recv_frame()
    # Same backing buffer, new contents: the borrow expired.
    assert bytes(first) == b"secon"


# -- vectored send -------------------------------------------------------------


def test_send_frame_short_writes_resume_at_exact_boundary():
    parts = [b"hello ", memoryview(b"zero-copy "), bytearray(b"world")]
    sock = StingySendSocket(accept=3)
    total = send_frame(sock, 9, parts)
    assert total == FRAME_HEADER_SIZE + 21
    assert bytes(sock.sent) == _frame_bytes(9, b"hello zero-copy world")
    assert sock.calls >= total // 3


def test_send_frame_empty_payload():
    sock = StingySendSocket(accept=1024)
    send_frame(sock, 4, [])
    assert bytes(sock.sent) == pack_frame_header(4, 0)


def test_send_recv_roundtrip_over_real_socketpair():
    left, right = socket.socketpair()
    try:
        payload_parts = [memoryview(b"a" * 1000)[100:200], b"tail"]
        send_frame(left, 3, payload_parts)
        left.shutdown(socket.SHUT_WR)
        rx = FrameReceiver(right)
        kind, view = rx.recv_frame()
        assert kind == 3
        assert bytes(view) == b"a" * 100 + b"tail"
        assert rx.recv_frame() is None
    finally:
        left.close()
        right.close()


def test_send_frame_vector_larger_than_iov_cap():
    # 1030 one-byte parts exceed the 512-entry sendmsg vector cap; the
    # frame must still arrive intact via multiple sendmsg calls.
    left, right = socket.socketpair()
    try:
        parts = [b"%d" % (i % 10) for i in range(1030)]
        send_frame(left, 1, parts)
        left.shutdown(socket.SHUT_WR)
        kind, view = FrameReceiver(right).recv_frame()
        assert kind == 1
        assert bytes(view) == b"".join(parts)
    finally:
        left.close()
        right.close()


# -- asyncio twins -------------------------------------------------------------


def _feed_reader(data: bytes, *, eof: bool = True) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    if eof:
        reader.feed_eof()
    return reader


def test_read_frame_async_roundtrip():
    async def run():
        reader = _feed_reader(_frame_bytes(6, b"payload"))
        assert await read_frame_async(reader) == (6, b"payload")
        assert await read_frame_async(reader) is None

    asyncio.run(run())


def test_read_frame_async_mid_header_eof_raises():
    async def run():
        reader = _feed_reader(b"\x4b\x46")
        with pytest.raises(FrameProtocolError, match="mid-header"):
            await read_frame_async(reader)

    asyncio.run(run())


def test_read_frame_async_mid_payload_eof_raises():
    async def run():
        reader = _feed_reader(_frame_bytes(1, b"x" * 50)[:-10])
        with pytest.raises(FrameProtocolError, match="mid-frame"):
            await read_frame_async(reader)

    asyncio.run(run())


def test_read_frame_async_garbage_raises():
    async def run():
        reader = _feed_reader(b"GET / HTTP/1.1\r\n")
        with pytest.raises(FrameProtocolError, match="magic"):
            await read_frame_async(reader)

    asyncio.run(run())


def test_write_frame_async_matches_blocking_layout():
    class SinkWriter:
        def __init__(self):
            self.data = bytearray()

        def write(self, b):
            self.data += b

    sink = SinkWriter()
    total = write_frame_async(sink, 8, [b"ab", memoryview(b"cd")])
    assert total == FRAME_HEADER_SIZE + 4
    assert bytes(sink.data) == _frame_bytes(8, b"abcd")


def test_magic_spells_kfrm():
    assert FRAME_MAGIC.to_bytes(4, "little") == b"KFRM"
