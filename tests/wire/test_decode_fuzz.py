"""Decoder robustness: arbitrary bytes never crash, only raise wire errors.

A storage system scans backup segments during recovery; a corrupted or
truncated region must surface as a structured error, never as an
IndexError/struct.error/MemoryError blow-up.
"""

from hypothesis import given, strategies as st

import pytest

from repro.common.errors import WireFormatError
from repro.wire.chunk import decode_chunk, encode_chunk, Chunk
from repro.wire.framing import decode_chunks, encode_chunks
from repro.wire.record import decode_record, decode_records, encode_record, Record


@given(st.binary(max_size=300))
def test_record_decoder_total(data):
    try:
        decode_record(data)
    except WireFormatError:
        pass  # includes ChecksumError


@given(st.binary(max_size=300))
def test_chunk_decoder_total(data):
    try:
        decode_chunk(data)
    except WireFormatError:
        pass


@given(st.binary(min_size=1, max_size=200), st.integers(0, 199))
def test_bitflip_in_valid_record_detected_or_rejected(value, position):
    encoded = bytearray(encode_record(Record(value=value)))
    position %= len(encoded)
    encoded[position] ^= 0x01
    if bytes(encoded) == encode_record(Record(value=value)):
        return  # no-op flip cannot happen with xor, but keep the guard
    try:
        record, end = decode_record(bytes(encoded))
    except WireFormatError:
        return
    # A flip in the checksum field itself is the only undetectable-by-
    # content case — but then the checksum check must have caught it, so
    # reaching here means the decode consumed a *different* framing; the
    # decoder must at least not return the original record unchanged
    # while claiming full consumption.
    assert not (record == Record(value=value) and end == len(encoded))


@given(
    st.lists(
        st.builds(
            lambda v, n: Chunk.meta(
                stream_id=0, streamlet_id=0, producer_id=0, chunk_seq=n,
                record_count=1, payload_len=len(v),
            ),
            st.binary(max_size=50),
            st.integers(0, 1000),
        ),
        max_size=5,
    ),
    st.integers(1, 20),
)
def test_truncated_frames_rejected(chunks, cut):
    buf = encode_chunks(chunks)
    if not buf:
        return
    truncated = buf[: max(0, len(buf) - cut)]
    if len(truncated) == len(buf):
        return
    with pytest.raises(WireFormatError):
        decode_chunks(truncated)


@given(st.lists(st.binary(max_size=60), max_size=6))
def test_records_concat_is_self_synchronizing(values):
    records = [Record(value=v) for v in values]
    buf = b"".join(encode_record(r) for r in records)
    assert decode_records(buf) == records
