"""Zero-copy decode views: golden equivalence with the eager decoders,
laziness (no payload copies until materialized), and boundary checks."""

import pytest

from repro.common.checksum import crc32c
from repro.common.errors import ChecksumError, WireFormatError
from repro.wire.chunk import CHUNK_HEADER_SIZE, ChunkBuilder, decode_chunk
from repro.wire.record import Record, decode_records, encode_record
from repro.wire.views import ChunkView, RecordView


RECORDS = [
    Record(value=b"plain"),
    Record(value=b"keyed", keys=(b"k1", b"key-two")),
    Record(value=b"versioned", version=7),
    Record(value=b"stamped", timestamp=123456789),
    Record(value=b"full", keys=(b"a",), version=2, timestamp=42),
    Record(value=b""),
]


def build_chunk(records=None, **kwargs):
    builder = ChunkBuilder(
        4096,
        stream_id=kwargs.get("stream_id", 3),
        streamlet_id=kwargs.get("streamlet_id", 1),
        producer_id=kwargs.get("producer_id", 9),
    )
    for record in records if records is not None else RECORDS:
        assert builder.try_append(record)
    return builder.build(chunk_seq=kwargs.get("chunk_seq", 5))


# -- RecordView ---------------------------------------------------------------


def test_record_view_golden_equivalence():
    for record in RECORDS:
        buf = memoryview(encode_record(record))
        view = RecordView(buf)
        assert view.to_record() == record
        assert view.value == record.value
        assert view.keys == record.keys
        assert view.version == record.version
        assert view.timestamp == record.timestamp
        assert view.size == record.encoded_size()
        view.verify()  # intact bytes pass


def test_record_view_value_is_zero_copy():
    raw = bytearray(encode_record(Record(value=b"mutable-backing")))
    view = RecordView(memoryview(raw))
    value_view = view.value_view
    assert bytes(value_view) == b"mutable-backing"
    # The view aliases the buffer: flipping a backing byte shows through.
    raw[view.end_offset - 1] ^= 0xFF
    assert bytes(value_view) != b"mutable-backing"


def test_record_view_verify_detects_corruption():
    raw = bytearray(encode_record(Record(value=b"checked")))
    raw[-1] ^= 0x01
    with pytest.raises(ChecksumError):
        RecordView(memoryview(raw)).verify()


def test_record_view_truncated_raises():
    raw = encode_record(Record(value=b"short"))
    with pytest.raises(WireFormatError):
        RecordView(memoryview(raw[: len(raw) - 2]))


# -- ChunkView ----------------------------------------------------------------


def test_chunk_view_header_golden_equivalence():
    chunk = build_chunk()
    view = ChunkView(chunk.wire)
    assert view.stream_id == chunk.stream_id
    assert view.streamlet_id == chunk.streamlet_id
    assert view.producer_id == chunk.producer_id
    assert view.chunk_seq == chunk.chunk_seq
    assert view.record_count == chunk.record_count
    assert view.payload_len == chunk.payload_len
    assert view.payload_crc == chunk.payload_crc
    assert view.size == CHUNK_HEADER_SIZE + chunk.payload_len


def test_chunk_view_records_match_eager_decode():
    chunk = build_chunk()
    view = ChunkView(chunk.wire)
    eager = decode_records(chunk.payload)
    assert view.records() == eager
    assert [rv.to_record() for rv in view.record_views()] == eager


def test_chunk_view_records_memoized():
    view = ChunkView(build_chunk().wire)
    assert view.records() is view.records()


def test_chunk_view_to_chunk_roundtrip():
    chunk = build_chunk()
    view = ChunkView(chunk.wire)
    decoded = view.to_chunk(verify=True)
    reference, _ = decode_chunk(chunk.wire)
    assert decoded.dedup_key() == reference.dedup_key()
    assert decoded.records() == reference.records()


def test_chunk_view_verify_payload_sets_and_checks():
    chunk = build_chunk()
    view = ChunkView(chunk.wire)
    assert not view.verified
    view.verify_payload()
    assert view.verified
    view.verify_payload()  # idempotent

    torn = bytearray(bytes(chunk.wire))
    torn[-1] ^= 0x40
    bad = ChunkView(memoryview(torn))
    with pytest.raises(ChecksumError):
        bad.verify_payload()
    assert not bad.verified


def test_chunk_view_payload_view_is_zero_copy():
    chunk = build_chunk()
    raw = bytearray(bytes(chunk.wire))
    view = ChunkView(memoryview(raw))
    payload = view.payload_view
    assert crc32c(payload) == chunk.payload_crc
    raw[CHUNK_HEADER_SIZE] ^= 0xFF
    assert crc32c(payload) != chunk.payload_crc  # aliases, not a copy


def test_chunk_view_header_is_lazy():
    # A garbage buffer only fails once a header field is demanded.
    view = ChunkView(b"\x00" * CHUNK_HEADER_SIZE)
    with pytest.raises(WireFormatError):
        _ = view.record_count


def test_chunk_view_rejects_truncated_frame():
    chunk = build_chunk()
    view = ChunkView(bytes(chunk.wire)[: chunk.size - 3])
    with pytest.raises(WireFormatError):
        _ = view.payload_len


def test_view_types_declare_slots():
    assert not hasattr(ChunkView(build_chunk().wire), "__dict__")
    buf = memoryview(encode_record(Record(value=b"x")))
    assert not hasattr(RecordView(buf), "__dict__")
