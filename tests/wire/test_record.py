"""Record codec tests: round-trips, corruption detection, size accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ChecksumError, WireFormatError
from repro.wire.record import (
    Record,
    RECORD_FIXED_HEADER,
    encode_record,
    decode_record,
    decode_records,
    encode_records,
    make_uniform_payload,
)

records_strategy = st.builds(
    Record,
    value=st.binary(max_size=300),
    keys=st.lists(st.binary(max_size=40), max_size=5).map(tuple),
    version=st.one_of(st.none(), st.integers(0, 2**64 - 1)),
    timestamp=st.one_of(st.none(), st.integers(0, 2**64 - 1)),
)


@given(records_strategy)
def test_roundtrip(record):
    encoded = encode_record(record)
    decoded, end = decode_record(encoded)
    assert decoded == record
    assert end == len(encoded)
    assert record.encoded_size() == len(encoded)


@given(st.lists(records_strategy, max_size=8))
def test_batch_roundtrip(records):
    buf = encode_records(records)
    assert decode_records(buf) == records


def test_plain_record_is_header_plus_value():
    record = Record(value=b"x" * 90)
    assert len(encode_record(record)) == RECORD_FIXED_HEADER + 90
    # The paper's 100-byte benchmark record.
    assert record.encoded_size() == 100


def test_key_accessor():
    assert Record(value=b"v").key is None
    assert Record(value=b"v", keys=(b"k1", b"k2")).key == b"k1"


@given(records_strategy.filter(lambda r: r.encoded_size() > 4))
def test_corruption_detected(record):
    # Flipping any post-checksum byte must be detected — either as a
    # checksum mismatch or, when a length field was hit, as a framing error.
    encoded = bytearray(encode_record(record))
    encoded[len(encoded) - 1] ^= 0xFF
    with pytest.raises(WireFormatError):
        decode_record(bytes(encoded))


def test_body_corruption_is_checksum_error():
    encoded = bytearray(encode_record(Record(value=b"abcdef")))
    encoded[-1] ^= 0xFF
    with pytest.raises(ChecksumError):
        decode_record(bytes(encoded))


def test_corruption_skippable_without_verify():
    encoded = bytearray(encode_record(Record(value=b"payload")))
    encoded[-1] ^= 0xFF
    decoded, _ = decode_record(bytes(encoded), verify=False)
    assert decoded.value != b"payload"


def test_truncated_header_rejected():
    with pytest.raises(WireFormatError):
        decode_record(b"\x00\x01\x02")


def test_truncated_body_rejected():
    encoded = encode_record(Record(value=b"0123456789"))
    with pytest.raises(WireFormatError):
        decode_record(encoded[:-3])


def test_too_many_keys_rejected():
    record = Record(value=b"", keys=tuple(bytes([i % 256]) for i in range(256)))
    with pytest.raises(WireFormatError):
        encode_record(record)


@given(st.integers(1, 50), st.integers(RECORD_FIXED_HEADER, 200))
def test_uniform_payload_matches_per_record_encoding(count, record_size):
    fast = make_uniform_payload(count, record_size)
    value = bytes([0x5A]) * (record_size - RECORD_FIXED_HEADER)
    slow = encode_records([Record(value=value)] * count)
    assert fast == slow
    assert len(fast) == count * record_size


def test_uniform_payload_rejects_tiny_records():
    with pytest.raises(WireFormatError):
        make_uniform_payload(1, RECORD_FIXED_HEADER - 1)
