"""Chunk codec and builder tests."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ChecksumError, WireFormatError
from repro.wire.chunk import (
    Chunk,
    ChunkBuilder,
    CHUNK_HEADER_SIZE,
    GROUP_UNASSIGNED,
    SEGMENT_UNASSIGNED,
    encode_chunk,
    decode_chunk,
)
from repro.wire.framing import encode_chunks, decode_chunks
from repro.wire.record import Record, encode_records


def make_chunk(records=None, **overrides):
    records = records if records is not None else [Record(value=b"v" * 20)] * 3
    payload = encode_records(records)
    kwargs = dict(
        stream_id=1,
        streamlet_id=2,
        producer_id=3,
        chunk_seq=4,
        record_count=len(records),
        payload_len=len(payload),
        payload=payload,
    )
    kwargs.update(overrides)
    return Chunk(**kwargs)


def test_roundtrip_with_payload():
    chunk = make_chunk()
    buf = encode_chunk(chunk)
    assert len(buf) == chunk.size == CHUNK_HEADER_SIZE + chunk.payload_len
    decoded, end = decode_chunk(buf)
    assert end == len(buf)
    assert decoded == chunk
    assert decoded.records() == [Record(value=b"v" * 20)] * 3


def test_roundtrip_meta_only():
    chunk = Chunk.meta(
        stream_id=9,
        streamlet_id=8,
        producer_id=7,
        chunk_seq=6,
        record_count=10,
        payload_len=1000,
    )
    buf = encode_chunk(chunk)
    assert len(buf) == CHUNK_HEADER_SIZE + 1000
    decoded, _ = decode_chunk(buf)
    assert decoded.payload is None
    assert decoded.payload_len == 1000
    assert decoded.record_count == 10
    with pytest.raises(WireFormatError):
        decoded.records()


def test_meta_chunk_size_accounting():
    chunk = Chunk.meta(
        stream_id=0, streamlet_id=0, producer_id=0, chunk_seq=0,
        record_count=10, payload_len=1024,
    )
    assert chunk.size == CHUNK_HEADER_SIZE + 1024
    assert not chunk.has_payload


def test_payload_len_mismatch_rejected():
    with pytest.raises(WireFormatError):
        make_chunk(payload_len=5)


def test_payload_crc_autocomputed_and_verified():
    chunk = make_chunk()
    assert chunk.payload_crc != 0
    chunk.verify_payload()
    buf = bytearray(encode_chunk(chunk))
    buf[CHUNK_HEADER_SIZE + 1] ^= 0x55
    with pytest.raises(ChecksumError):
        decode_chunk(bytes(buf))


def test_bad_magic_rejected():
    buf = bytearray(encode_chunk(make_chunk()))
    buf[0] ^= 0xFF
    with pytest.raises(WireFormatError):
        decode_chunk(bytes(buf))


def test_truncated_payload_rejected():
    buf = encode_chunk(make_chunk())
    with pytest.raises(WireFormatError):
        decode_chunk(buf[:-1])


def test_assignment_attributes():
    chunk = make_chunk()
    assert chunk.group_id == GROUP_UNASSIGNED
    assert chunk.segment_id == SEGMENT_UNASSIGNED
    placed = chunk.assigned(group_id=5, segment_id=17)
    assert (placed.group_id, placed.segment_id) == (5, 17)
    # Placement survives the wire.
    decoded, _ = decode_chunk(encode_chunk(placed))
    assert (decoded.group_id, decoded.segment_id) == (5, 17)
    # Original untouched.
    assert chunk.group_id == GROUP_UNASSIGNED


def test_dedup_key():
    chunk = make_chunk()
    assert chunk.dedup_key() == (2, 3, 4)


def test_framing_roundtrip():
    chunks = [make_chunk(chunk_seq=i) for i in range(4)]
    chunks.append(
        Chunk.meta(
            stream_id=1, streamlet_id=1, producer_id=1, chunk_seq=99,
            record_count=2, payload_len=64,
        )
    )
    buf = encode_chunks(chunks)
    assert decode_chunks(buf) == chunks


class TestChunkBuilder:
    def builder(self, capacity=128):
        return ChunkBuilder(capacity, stream_id=1, streamlet_id=2, producer_id=3)

    def test_fills_until_capacity(self):
        b = self.builder(capacity=100)
        record = Record(value=b"x" * 30)  # encodes to 40 bytes
        assert b.try_append(record)
        assert b.try_append(record)
        assert not b.try_append(record)  # 120 > 100
        assert b.record_count == 2
        assert b.payload_size == 80
        assert b.remaining() == 20

    def test_build_resets(self):
        b = self.builder()
        b.try_append(Record(value=b"hello"))
        chunk = b.build(chunk_seq=7)
        assert chunk.chunk_seq == 7
        assert chunk.record_count == 1
        assert chunk.records() == [Record(value=b"hello")]
        assert b.is_empty
        assert b.payload_size == 0

    def test_oversized_record_is_hard_error(self):
        b = self.builder(capacity=16)
        with pytest.raises(WireFormatError):
            b.try_append(Record(value=b"y" * 100))

    def test_append_encoded(self):
        from repro.wire.record import make_uniform_payload

        b = self.builder(capacity=1024)
        payload = make_uniform_payload(5, 100)
        assert b.try_append_encoded(payload, count=5)
        chunk = b.build(chunk_seq=0)
        assert chunk.record_count == 5
        assert chunk.payload_len == 500
        assert len(chunk.records()) == 5

    @given(st.lists(st.binary(max_size=40), min_size=1, max_size=30))
    def test_builder_roundtrip_property(self, values):
        b = ChunkBuilder(4096, stream_id=1, streamlet_id=1, producer_id=1)
        appended = []
        for v in values:
            record = Record(value=v)
            if b.try_append(record):
                appended.append(record)
        chunk = b.build(chunk_seq=0)
        decoded, _ = decode_chunk(encode_chunk(chunk))
        assert decoded.records() == appended


def test_builder_requires_positive_capacity():
    with pytest.raises(WireFormatError):
        ChunkBuilder(0, stream_id=1, streamlet_id=1, producer_id=1)
