"""ProcessTransport: shm-ring RPCs to child processes, drain on shutdown."""

import threading
import time

import pytest

from repro.common.errors import ChecksumError, RpcError
from repro.common.units import KB
from repro.runtime.process import (
    ProcessServiceSpec,
    ProcessTransport,
    decode_replicate,
    encode_replicate,
)
from repro.kera.messages import ReplicateRequest, ReplicateResponse
from repro.wire.chunk import CHUNK_HEADER_SIZE, ChunkBuilder
from repro.wire.record import Record


class Echo:
    """Minimal picklable service for the generic (pickle) path."""

    def __init__(self, suffix=""):
        self.suffix = suffix

    def handle(self, method, request):
        if method == "boom":
            raise ValueError("kapow")
        if method == "slow":
            time.sleep(request)
            return "slept"
        return f"{method}:{request}{self.suffix}"


class FrameCounter:
    """Backup-shaped service: validates and counts replicated frames."""

    def __init__(self):
        from repro.replication.backup_store import BackupStore

        self.store = BackupStore(node_id=9, materialize=True)

    def handle(self, method, request):
        assert method == "replicate"
        # The transport copied the frames across the ring, so the bit
        # must have been cleared — the child-side re-validation is the
        # whole point of validate-at-boundary.
        assert not request.frames_verified
        segment = self.store.append_frames(
            src_broker=request.src_broker,
            vlog_id=request.vlog_id,
            vseg_id=request.vseg_id,
            frames=request.frames,
            segment_capacity=request.vseg_capacity,
        )
        return ReplicateResponse(ok=True, bytes_held=segment.bytes_held)


def frame_request(values, corrupt=False):
    builder = ChunkBuilder(4 * KB, stream_id=1, streamlet_id=0, producer_id=0)
    frames = []
    for seq, value in enumerate(values):
        assert builder.try_append(Record(value=value))
        chunk = builder.build(seq)
        frame = bytearray(chunk.encoded_frame())
        if corrupt:
            frame[CHUNK_HEADER_SIZE] ^= 0xFF  # flip a payload byte
        frames.append(bytes(frame))
    return ReplicateRequest(
        src_broker=0,
        vlog_id=0,
        vseg_id=0,
        vseg_capacity=1 * KB * 1024,
        batch_checksum=0,
        frames=tuple(frames),
        frames_verified=True,  # the transport must clear this in transit
    )


@pytest.fixture
def transport():
    t = ProcessTransport(call_timeout=20.0)
    yield t
    t.shutdown()


class TestGenericPath:
    def test_call_round_trip(self, transport):
        transport.register(1, "echo", ProcessServiceSpec(factory=Echo, kwargs={"suffix": "!"}))
        transport.start()
        assert transport.call(0, 1, "echo", "greet", "hi") == "greet:hi!"

    def test_handler_exception_reraised_in_caller(self, transport):
        transport.register(1, "echo", ProcessServiceSpec(factory=Echo))
        transport.start()
        with pytest.raises(ValueError, match="kapow"):
            transport.call(0, 1, "echo", "boom", None)
        # The worker survives its handler's exception.
        assert transport.call(0, 1, "echo", "m", 1) == "m:1"

    def test_call_async_callback_fires(self, transport):
        transport.register(1, "echo", ProcessServiceSpec(factory=Echo))
        transport.start()
        done = threading.Event()
        results = []
        transport.call_async(
            0, 1, "echo", "m", "x", on_done=lambda r, e: (results.append((r, e)), done.set())
        )
        assert done.wait(10.0)
        assert results == [("m:x", None)]

    def test_thread_and_process_bindings_coexist(self, transport):
        class Local:
            def handle(self, method, request):
                return ("local", request)

        transport.register(1, "echo", ProcessServiceSpec(factory=Echo))
        transport.register(1, "local", Local())
        transport.start()
        assert transport.call(0, 1, "echo", "m", 1) == "m:1"
        assert transport.call(0, 1, "local", "m", 2) == ("local", 2)
        assert transport.credit(1, "local") > transport.credit(1, "echo") > 0

    def test_duplicate_registration_rejected(self, transport):
        transport.register(1, "echo", ProcessServiceSpec(factory=Echo))
        with pytest.raises(RpcError):
            transport.register(1, "echo", ProcessServiceSpec(factory=Echo))
        with pytest.raises(RpcError):
            transport.register(1, "echo", Echo())


class TestReplicateFastPath:
    def test_frames_cross_unpickled_and_revalidated(self, transport):
        transport.register(2, "backup", ProcessServiceSpec(factory=FrameCounter))
        transport.start()
        request = frame_request([b"alpha", b"beta", b"gamma"])
        response = transport.call(0, 2, "backup", "replicate", request)
        assert isinstance(response, ReplicateResponse)
        assert response.ok
        assert response.bytes_held == sum(len(f) for f in request.frames)

    def test_corrupt_frame_rejected_by_child(self, transport):
        transport.register(2, "backup", ProcessServiceSpec(factory=FrameCounter))
        transport.start()
        bad = frame_request([b"zap"], corrupt=True)
        with pytest.raises(ChecksumError):
            transport.call(0, 2, "backup", "replicate", bad)

    def test_encode_decode_round_trip(self):
        request = frame_request([b"one", b"two"])
        parts = encode_replicate(42, request)
        payload = memoryview(b"".join(bytes(p) for p in parts))
        call_id, decoded = decode_replicate(payload)
        assert call_id == 42
        assert decoded.src_broker == request.src_broker
        assert decoded.vseg_capacity == request.vseg_capacity
        assert not decoded.frames_verified  # cleared across the boundary
        assert [bytes(f) for f in decoded.frames] == [bytes(f) for f in request.frames]


class TestShutdownDrain:
    def test_shutdown_drains_in_flight_async_calls(self):
        """Every async call enqueued before shutdown resolves exactly
        once — the close-then-drain ring contract end to end."""
        transport = ProcessTransport(call_timeout=30.0)
        transport.register(1, "echo", ProcessServiceSpec(factory=Echo))
        transport.start()
        lock = threading.Lock()
        results = []
        for i in range(64):
            transport.call_async(
                0, 1, "echo", "m", i,
                on_done=lambda r, e: (lock.acquire(), results.append((r, e)), lock.release()),
            )
        transport.shutdown()
        assert len(results) == 64
        assert sorted(r for r, e in results) == sorted(f"m:{i}" for i in range(64))
        assert all(e is None for _, e in results)

    def test_shutdown_idempotent(self):
        transport = ProcessTransport()
        transport.register(1, "echo", ProcessServiceSpec(factory=Echo))
        transport.start()
        transport.shutdown()
        transport.shutdown()
        with pytest.raises(RpcError):
            transport.call(0, 1, "echo", "m", 1)
