"""InprocTransport and ThreadedTransport delivery semantics."""

import threading
import time

import pytest

from repro.common.errors import RpcError
from repro.runtime import InprocTransport, ThreadedTransport
from repro.runtime.transport import LiveService


class Echo(LiveService):
    def handle(self, method, request):
        if method == "boom":
            raise ValueError(request)
        return (method, request)


class TestInprocTransport:
    def test_inline_call(self):
        transport = InprocTransport()
        transport.register(0, "echo", Echo())
        assert transport.call(-1, 0, "echo", "ping", 41) == ("ping", 41)

    def test_unknown_service(self):
        transport = InprocTransport()
        with pytest.raises(RpcError):
            transport.call(-1, 0, "nope", "ping", None)

    def test_duplicate_registration_rejected(self):
        transport = InprocTransport()
        transport.register(0, "echo", Echo())
        with pytest.raises(RpcError):
            transport.register(0, "echo", Echo())

    def test_handler_exception_propagates(self):
        transport = InprocTransport()
        transport.register(0, "echo", Echo())
        with pytest.raises(ValueError):
            transport.call(-1, 0, "echo", "boom", "bad")


class TestThreadedTransport:
    def test_call_round_trip(self):
        transport = ThreadedTransport()
        transport.register(0, "echo", Echo())
        transport.start()
        try:
            assert transport.call(-1, 0, "echo", "ping", b"x") == ("ping", b"x")
        finally:
            transport.shutdown()

    def test_handler_exception_reraised_in_caller(self):
        transport = ThreadedTransport()
        transport.register(0, "echo", Echo())
        transport.start()
        try:
            with pytest.raises(ValueError, match="bad"):
                transport.call(-1, 0, "echo", "boom", "bad")
            # The worker survives the exception and serves the next call.
            assert transport.call(-1, 0, "echo", "ok", 1) == ("ok", 1)
        finally:
            transport.shutdown()

    def test_register_after_start_rejected(self):
        transport = ThreadedTransport()
        transport.start()
        try:
            with pytest.raises(RpcError):
                transport.register(0, "echo", Echo())
        finally:
            transport.shutdown()

    def test_call_before_start_rejected(self):
        transport = ThreadedTransport()
        transport.register(0, "echo", Echo())
        with pytest.raises(RpcError):
            transport.call(-1, 0, "echo", "ping", None)

    def test_unknown_service(self):
        transport = ThreadedTransport()
        transport.start()
        try:
            with pytest.raises(RpcError):
                transport.call(-1, 0, "nope", "ping", None)
        finally:
            transport.shutdown()

    def test_invalid_sizing_rejected(self):
        with pytest.raises(RpcError):
            ThreadedTransport(queue_depth=0)
        with pytest.raises(RpcError):
            ThreadedTransport(workers_per_service=0)

    def test_concurrent_calls_one_worker_serialize(self):
        """One worker: two slow calls overlap at the transport but run
        sequentially on the service."""

        class Slow(LiveService):
            def __init__(self):
                self.active = 0
                self.max_active = 0
                self._lock = threading.Lock()

            def handle(self, method, request):
                with self._lock:
                    self.active += 1
                    self.max_active = max(self.max_active, self.active)
                time.sleep(0.02)
                with self._lock:
                    self.active -= 1
                return request

        service = Slow()
        transport = ThreadedTransport(workers_per_service=1)
        transport.register(0, "slow", service)
        transport.start()
        try:
            results = []
            threads = [
                threading.Thread(
                    target=lambda i=i: results.append(
                        transport.call(-1, 0, "slow", "go", i)
                    )
                )
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert sorted(results) == [0, 1, 2, 3]
            assert service.max_active == 1
        finally:
            transport.shutdown()

    def test_concurrent_calls_multiple_workers_overlap(self):
        barrier = threading.Barrier(2, timeout=5.0)

        class Meet(LiveService):
            def handle(self, method, request):
                barrier.wait()  # only passes if two handlers run at once
                return request

        transport = ThreadedTransport(workers_per_service=2)
        transport.register(0, "meet", Meet())
        transport.start()
        try:
            results = []
            threads = [
                threading.Thread(
                    target=lambda i=i: results.append(
                        transport.call(-1, 0, "meet", "go", i)
                    )
                )
                for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert sorted(results) == [0, 1]
        finally:
            transport.shutdown()

    def test_shutdown_idempotent(self):
        transport = ThreadedTransport()
        transport.register(0, "echo", Echo())
        transport.start()
        transport.shutdown()
        transport.shutdown()
        with pytest.raises(RpcError):
            transport.call(-1, 0, "echo", "ping", None)
