"""ThreadedKeraCluster: real concurrency over the sans-IO cores.

N producer threads x M streamlets push real bytes through worker-thread
brokers, a shipper thread replicates R3, and consumers decode what comes
back: nothing lost, nothing duplicated, per-group order preserved, and
the broker-side counters agree with the producer-side counts.
"""

import threading

import pytest

from repro.common.units import KB
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kera import (
    KeraConfig,
    KeraConsumer,
    KeraProducer,
    ThreadedKeraCluster,
)


def make_cluster(r=3, vlogs=2, q=2, num_brokers=4, **kwargs):
    config = KeraConfig(
        num_brokers=num_brokers,
        storage=StorageConfig(segment_size=256 * KB, q_active_groups=q),
        replication=ReplicationConfig(replication_factor=r, vlogs_per_broker=vlogs),
        chunk_size=1 * KB,
    )
    return ThreadedKeraCluster(config, **kwargs)


def run_producers(cluster, num_threads, records_each, streamlets, flush_every=50):
    """Each thread is one producer pinned to one streamlet; returns the
    per-thread acked counts and any worker exceptions."""
    acked = [0] * num_threads
    errors = []

    def work(t):
        try:
            producer = KeraProducer(cluster, producer_id=t)
            streamlet = t % streamlets
            for i in range(records_each):
                producer.send(0, f"p{t:02d}-{i:06d}".encode(), streamlet_id=streamlet)
                if i % flush_every == flush_every - 1:
                    producer.flush()
            stats = producer.flush()
            acked[t] = stats.records_sent
        except BaseException as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    threads = [threading.Thread(target=work, args=(t,)) for t in range(num_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return acked, errors


def test_concurrent_producers_no_loss_no_duplication():
    num_threads, records_each, streamlets = 6, 400, 4
    with make_cluster() as cluster:
        cluster.create_stream(0, streamlets)
        acked, errors = run_producers(cluster, num_threads, records_each, streamlets)
        assert errors == []
        assert acked == [records_each] * num_threads

        consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
        records = consumer.drain()
        values = [r.value for r in records]
        # Every acked record recovered exactly once.
        assert len(values) == num_threads * records_each
        assert len(set(values)) == len(values)
        expected = {
            f"p{t:02d}-{i:06d}".encode()
            for t in range(num_threads)
            for i in range(records_each)
        }
        assert set(values) == expected


def test_per_group_order_preserved():
    """A producer's records within its (streamlet, entry) group come back
    in send order even with other producers appending concurrently."""
    num_threads, records_each, streamlets = 6, 300, 3
    with make_cluster() as cluster:
        cluster.create_stream(0, streamlets)
        _, errors = run_producers(cluster, num_threads, records_each, streamlets)
        assert errors == []
        consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
        records = consumer.drain()
        # drain() preserves per-(streamlet, entry) durable order, and each
        # producer writes to exactly one group: its subsequence is sorted.
        for t in range(num_threads):
            prefix = f"p{t:02d}-".encode()
            mine = [r.value for r in records if r.value.startswith(prefix)]
            assert mine == sorted(mine)
            assert len(mine) == records_each


def test_broker_stats_match_producer_counts():
    num_threads, records_each, streamlets = 4, 250, 4
    with make_cluster() as cluster:
        cluster.create_stream(0, streamlets)
        acked, errors = run_producers(cluster, num_threads, records_each, streamlets)
        assert errors == []
        ingested = sum(b.records_ingested for b in cluster.brokers.values())
        assert ingested == sum(acked)
        # Everything acked is durable: nothing parked, R-1 backup copies.
        assert all(b.pending_requests() == 0 for b in cluster.brokers.values())
        chunks = sum(b.chunks_ingested for b in cluster.brokers.values())
        backup_chunks = sum(
            b.store.chunks_received for b in cluster.backups.values()
        )
        assert backup_chunks == 2 * chunks  # R = 3


def test_retransmission_acks_and_deduplicates():
    """A full-request retransmit (same chunks, new request id) must ack
    and leave exactly one copy behind."""
    from repro.wire.chunk import ChunkBuilder
    from repro.wire.record import Record

    with make_cluster() as cluster:
        cluster.create_stream(0, 1)
        builder = ChunkBuilder(1 * KB, stream_id=0, streamlet_id=0, producer_id=0)
        for i in range(5):
            assert builder.try_append(Record(value=f"r{i}".encode()))
        chunk = builder.build(chunk_seq=0)

        first = cluster.produce([chunk], producer_id=0)
        assert not first[0].assignments[0].duplicate
        second = cluster.produce([chunk], producer_id=0)
        assert second[0].assignments[0].duplicate

        consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
        values = [r.value for r in consumer.drain()]
        assert values == [f"r{i}".encode() for i in range(5)]
        broker = cluster.brokers[cluster.leader_of(0, 0)]
        assert broker.duplicates_dropped == 1


def test_queue_depth_one_still_completes():
    """Tiny queues exercise backpressure without deadlock: parked
    produces hold workers, but the shipper thread keeps them moving."""
    with make_cluster(queue_depth=1, produce_workers=2) as cluster:
        cluster.create_stream(0, 2)
        acked, errors = run_producers(cluster, 4, 120, 2, flush_every=20)
        assert errors == []
        assert acked == [120] * 4
        consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
        assert len(consumer.drain()) == 480


def test_shipper_threads_run_per_broker():
    with make_cluster() as cluster:
        for node in cluster.system.node_ids:
            shipper = cluster.shipper(node)
            assert shipper.is_alive()
            assert shipper.error is None
    # Shutdown (via the context manager) stops them.
    for node in cluster.system.node_ids:
        assert not cluster.shipper(node).is_alive()


def test_crash_broker_rejected_for_unknown_node():
    from repro.common.errors import StorageError

    with make_cluster() as cluster:
        with pytest.raises(StorageError):
            cluster.crash_broker(99)
