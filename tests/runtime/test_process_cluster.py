"""ProcessKeraCluster: replication served by worker processes.

The same no-loss/no-duplication harness as the threaded cluster, now with
every backup core living in a child process behind a shared-memory ring —
plus the shutdown-drain and exactly-once-retransmit guarantees that must
survive the extra address-space hop.
"""

import pytest

from repro.common.units import KB, MB
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kera import KeraConfig, KeraConsumer
from repro.kera.process import ProcessKeraCluster
from repro.wire.chunk import ChunkBuilder
from repro.wire.record import Record

from tests.runtime.test_threaded_cluster import run_producers


def make_cluster(r=3, vlogs=2, q=2, num_brokers=3, *, pipeline_depth=2, **kwargs):
    config = KeraConfig(
        num_brokers=num_brokers,
        storage=StorageConfig(segment_size=256 * KB, q_active_groups=q),
        replication=ReplicationConfig(
            replication_factor=r,
            vlogs_per_broker=vlogs,
            pipeline_depth=pipeline_depth,
            ship_window_bytes=2 * MB,
        ),
        chunk_size=1 * KB,
    )
    kwargs.setdefault("ack_timeout", 30.0)
    return ProcessKeraCluster(config, **kwargs)


def test_concurrent_producers_no_loss_no_duplication():
    num_threads, records_each, streamlets = 4, 150, 3
    with make_cluster() as cluster:
        cluster.create_stream(0, streamlets)
        acked, errors = run_producers(cluster, num_threads, records_each, streamlets)
        assert errors == []
        assert acked == [records_each] * num_threads

        consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
        values = [r.value for r in consumer.drain()]
        assert len(values) == num_threads * records_each
        assert len(set(values)) == len(values)


def test_backup_workers_hold_all_copies():
    """Everything acked is durable on R-1 child-process backups, and the
    stats RPC exposes the children's accounting."""
    with make_cluster() as cluster:
        cluster.create_stream(0, 2)
        acked, errors = run_producers(cluster, 3, 100, 2)
        assert errors == []
        chunks = sum(b.chunks_ingested for b in cluster.brokers.values())
        backup_chunks = sum(
            cluster.backup_stats(node)["chunks_received"]
            for node in cluster.system.node_ids
        )
        assert backup_chunks == 2 * chunks  # R = 3
        # Parent-side backup cores see no traffic in process mode.
        assert all(b.store.chunks_received == 0 for b in cluster.backups.values())
        assert all(b.pending_requests() == 0 for b in cluster.brokers.values())


def test_retransmission_acks_and_deduplicates():
    """The exactly-once harness across the process boundary: a full
    retransmit acks as a duplicate and leaves exactly one copy."""
    with make_cluster() as cluster:
        cluster.create_stream(0, 1)
        builder = ChunkBuilder(1 * KB, stream_id=0, streamlet_id=0, producer_id=0)
        for i in range(5):
            assert builder.try_append(Record(value=f"r{i}".encode()))
        chunk = builder.build(chunk_seq=0)

        first = cluster.produce([chunk], producer_id=0)
        assert not first[0].assignments[0].duplicate
        second = cluster.produce([chunk], producer_id=0)
        assert second[0].assignments[0].duplicate

        consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
        values = [r.value for r in consumer.drain()]
        assert values == [f"r{i}".encode() for i in range(5)]
        broker = cluster.brokers[cluster.leader_of(0, 0)]
        assert broker.duplicates_dropped == 1


def test_shutdown_under_load_drains_cleanly():
    """Shutdown right after the last ack: shippers drain in-flight
    batches, nothing is lost, nothing double-applies (pending == 0 and
    every produced chunk is durable on both backups)."""
    cluster = make_cluster(pipeline_depth=4)
    try:
        cluster.create_stream(0, 2)
        acked, errors = run_producers(cluster, 4, 80, 2, flush_every=10)
        assert errors == []
        assert acked == [80] * 4
        chunks = sum(b.chunks_ingested for b in cluster.brokers.values())
        backup_chunks = sum(
            cluster.backup_stats(node)["chunks_received"]
            for node in cluster.system.node_ids
        )
        assert backup_chunks == 2 * chunks
    finally:
        cluster.shutdown()
    for node in cluster.system.node_ids:
        shipper = cluster.shipper(node)
        assert not shipper.is_alive()
        assert shipper.error is None
        assert shipper.in_flight_batches() == 0
    # Every ack was applied exactly once: nothing pending anywhere.
    assert all(b.pending_chunks() == 0 for b in cluster.brokers.values())


def test_shipper_error_surfaces_to_producer():
    """Replication to a crashed node surfaces on the shipper and fails
    the parked produce, exactly like the threaded driver."""
    from repro.common.errors import ReplicationError

    with make_cluster(ack_timeout=3.0) as cluster:
        cluster.create_stream(0, 1)
        leader = cluster.leader_of(0, 0)
        victim = next(
            n for n in cluster.system.node_ids if n != leader
        )
        with cluster._failed_lock:
            cluster._failed.update(
                n for n in cluster.system.node_ids if n != leader
            )
        builder = ChunkBuilder(1 * KB, stream_id=0, streamlet_id=0, producer_id=0)
        assert builder.try_append(Record(value=b"doomed"))
        chunk = builder.build(chunk_seq=0)
        with pytest.raises(ReplicationError):
            cluster.produce([chunk], producer_id=0)
        assert victim is not None
