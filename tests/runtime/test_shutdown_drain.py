"""Transport shutdown under load: in-flight work drains, acks apply once.

Satellite of the process-parallel replication plane: both concurrent
transports promise that async calls enqueued before ``shutdown()`` are
still executed and their callbacks fired exactly once — the property the
pipelined shipper's drain relies on.
"""

import threading
import time

from repro.common.units import KB, MB
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.runtime.threaded import ThreadedTransport
from repro.kera import KeraConfig, KeraConsumer, ThreadedKeraCluster

from tests.runtime.test_threaded_cluster import run_producers


class _Slow:
    """Handler slow enough that shutdown always lands mid-queue."""

    def __init__(self):
        self.lock = threading.Lock()
        self.served = []

    def handle(self, method, request):
        time.sleep(0.002)
        with self.lock:
            self.served.append(request)
        return request


def test_threaded_transport_drains_async_calls_on_shutdown():
    transport = ThreadedTransport(queue_depth=256, workers_per_service=1)
    service = _Slow()
    transport.register(0, "svc", service)
    transport.start()
    lock = threading.Lock()
    results = []

    def on_done(response, error, _l=lock):
        with _l:
            results.append((response, error))

    for i in range(100):
        transport.call_async(0, 0, "svc", "m", i, on_done=on_done)
    transport.shutdown()
    # Every call executed and called back exactly once, in queue order.
    assert service.served == list(range(100))
    assert [r for r, e in results] == list(range(100))
    assert all(e is None for _, e in results)


def test_pipelined_cluster_no_loss_with_window_and_linger():
    """The full pipelined-shipper configuration — depth, credit window,
    linger — under concurrent producers, then shutdown: nothing lost,
    nothing duplicated, every ack applied exactly once."""
    config = KeraConfig(
        num_brokers=4,
        storage=StorageConfig(segment_size=256 * KB, q_active_groups=2),
        replication=ReplicationConfig(
            replication_factor=3,
            vlogs_per_broker=2,
            pipeline_depth=4,
            ship_window_bytes=1 * MB,
            ship_linger_s=0.002,
        ),
        chunk_size=1 * KB,
    )
    num_threads, records_each, streamlets = 6, 300, 4
    cluster = ThreadedKeraCluster(config)
    try:
        cluster.create_stream(0, streamlets)
        acked, errors = run_producers(cluster, num_threads, records_each, streamlets)
        assert errors == []
        assert acked == [records_each] * num_threads

        consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
        values = [r.value for r in consumer.drain()]
        assert len(values) == num_threads * records_each
        assert len(set(values)) == len(values)

        chunks = sum(b.chunks_ingested for b in cluster.brokers.values())
        backup_chunks = sum(b.store.chunks_received for b in cluster.backups.values())
        assert backup_chunks == 2 * chunks  # R = 3, acked once each
    finally:
        cluster.shutdown()
    for node in cluster.system.node_ids:
        shipper = cluster.shipper(node)
        assert not shipper.is_alive()
        assert shipper.error is None
        assert shipper.in_flight_batches() == 0
    assert all(b.pending_chunks() == 0 for b in cluster.brokers.values())
