"""CompletionTracker: waiter registration vs early completions."""

import threading

from repro.runtime import CompletionTracker


def test_register_then_complete_fires_waiter():
    tracker = CompletionTracker()
    fired = []
    assert not tracker.register(0, 7, lambda: fired.append(7))
    assert fired == []
    tracker.complete(0, 7)
    assert fired == [7]
    # One-shot: a second completion of the same id is remembered anew.
    tracker.complete(0, 7)
    assert fired == [7]


def test_complete_before_register_is_remembered():
    tracker = CompletionTracker()
    tracker.complete(3, 11)
    fired = []
    # register() reports the early completion and does NOT store the waiter.
    assert tracker.register(3, 11, lambda: fired.append(11))
    assert fired == []
    # The early mark was consumed by register().
    assert not tracker.consume(3, 11)


def test_consume_polls_and_clears():
    tracker = CompletionTracker()
    assert not tracker.consume(1, 1)
    tracker.complete(1, 1)
    assert tracker.consume(1, 1)
    assert not tracker.consume(1, 1)


def test_callback_for_binds_node():
    tracker = CompletionTracker()
    tracker.callback_for(5)(42)
    assert tracker.consume(5, 42)
    assert not tracker.consume(4, 42)  # other nodes unaffected


def test_same_request_id_on_different_nodes_independent():
    tracker = CompletionTracker()
    fired = []
    tracker.register(0, 9, lambda: fired.append("n0"))
    tracker.register(1, 9, lambda: fired.append("n1"))
    tracker.complete(1, 9)
    assert fired == ["n1"]
    tracker.complete(0, 9)
    assert fired == ["n1", "n0"]


def test_concurrent_register_complete_race():
    """Hammer the register/complete race: every waiter must fire exactly
    once whether the completion lands before or after registration."""
    tracker = CompletionTracker()
    n = 500
    seen = []
    seen_lock = threading.Lock()

    def completer():
        for i in range(n):
            tracker.complete(0, i)

    def registrar():
        for i in range(n):
            done = threading.Event()
            if tracker.register(0, i, done.set):
                done.set()
            if done.wait(5.0):
                with seen_lock:
                    seen.append(i)

    threads = [threading.Thread(target=completer), threading.Thread(target=registrar)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert sorted(seen) == list(range(n))
