"""Regressions for the races analysis rule A001 surfaced.

Before the guarded-by pass, :class:`ThreadedTransport` lifecycle state
(``_started``/``_queues``/``_threads``) and the live cluster's failed-
node set were mutated without a lock. Two concrete consequences, pinned
here: concurrent ``start()`` calls could each observe ``_started ==
False`` and spawn a duplicate worker pool, and ``crash_broker`` raced
the shipper threads' reads of ``_failed``.
"""

import threading

import pytest

from repro.common.errors import ReplicationError, RpcError
from repro.common.units import KB
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kera import KeraConfig, KeraProducer, ThreadedKeraCluster
from repro.runtime.threaded import ThreadedTransport


class _Echo:
    def handle(self, method, request):
        return (method, request)


def _racing_threads(n, fn):
    barrier = threading.Barrier(n)

    def go():
        barrier.wait()
        fn()

    threads = [threading.Thread(target=go) for _ in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def test_concurrent_start_spawns_exactly_one_worker_pool():
    transport = ThreadedTransport(workers_per_service=3)
    transport.register(0, "svc", _Echo())
    try:
        _racing_threads(8, transport.start)
        # One binding, three workers: a double-spawn would double this.
        assert len(transport._threads) == 3
        assert transport.call(-1, 0, "svc", "ping", 42) == ("ping", 42)
    finally:
        transport.shutdown()


def test_concurrent_shutdown_is_idempotent():
    transport = ThreadedTransport(workers_per_service=2)
    transport.register(0, "svc", _Echo())
    transport.start()
    _racing_threads(6, transport.shutdown)
    assert all(not t.is_alive() for t in transport._threads)
    with pytest.raises(RpcError):
        transport.call(-1, 0, "svc", "ping", 1)


def test_register_after_start_rejected_under_contention():
    transport = ThreadedTransport()
    transport.register(0, "svc", _Echo())
    errors = []

    def try_register():
        try:
            transport.register(1, "late", _Echo())
        except RpcError as exc:
            errors.append(exc)

    try:
        transport.start()
        _racing_threads(4, try_register)
        assert len(errors) == 4
    finally:
        transport.shutdown()


def test_crash_broker_concurrent_with_producers():
    """Failing a node mid-traffic must neither hang nor corrupt: every
    producer either gets its ack or a ReplicationError, and the failed
    set is consistent afterwards."""
    config = KeraConfig(
        num_brokers=3,
        storage=StorageConfig(segment_size=256 * KB, q_active_groups=2),
        replication=ReplicationConfig(replication_factor=2, vlogs_per_broker=1),
        chunk_size=1 * KB,
    )
    with ThreadedKeraCluster(config, ack_timeout=5.0) as cluster:
        cluster.create_stream(0, 3)
        stop = threading.Event()
        outcomes = []

        def produce(producer_id):
            producer = KeraProducer(cluster, producer_id=producer_id)
            sent = 0
            try:
                for i in range(200):
                    if stop.is_set() and i > 60:
                        break
                    producer.send(
                        0,
                        f"p{producer_id}-{i}".encode(),
                        streamlet_id=producer_id % 3,
                    )
                    if i % 20 == 19:
                        producer.flush()
                        sent += 20
                outcomes.append(("ok", sent))
            except ReplicationError:
                outcomes.append(("failed", sent))

        threads = [threading.Thread(target=produce, args=(t,)) for t in range(3)]
        for t in threads:
            t.start()
        cluster.crash_broker(2)
        stop.set()
        for t in threads:
            t.join(timeout=30.0)
        assert all(not t.is_alive() for t in threads)
        # Every producer thread reached a clean verdict.
        assert len(outcomes) == 3
        assert cluster.live_broker_ids == [0, 1]
