"""Worker/reaper robustness: setup leaks, poison records, garbage acks.

Regression tests for three defects the A007 pool-balance and A008
boundary rules flagged in :mod:`repro.runtime.process`:

* ``_service_worker`` leaked its request-shm attach when attaching the
  response block raised, and leaked both when the service factory raised;
* a poison request record (undecodable pickle) escaped the serve loop
  before the slot was consumed, wedging the ring for every later caller;
* ``_reap`` trusted ``_ACK.unpack_from`` on boundary bytes — a short or
  garbage ack killed the reaper thread and with it every pending call.
"""

import pickle
import threading
import types
from multiprocessing import shared_memory

import pytest

import repro.runtime.process as process_mod
from repro.runtime.process import (
    _ACK,
    KIND_ACK,
    KIND_PICKLE,
    ProcessTransport,
    _service_worker,
)
from repro.runtime.threaded import _PendingCall
from repro.wire.ring import SpscRing


@pytest.fixture
def close_log(monkeypatch):
    """Record every ``_close_shm`` while still really closing."""
    real = process_mod._close_shm
    closed = []

    def record(shm):
        closed.append(shm)
        real(shm)

    monkeypatch.setattr(process_mod, "_close_shm", record)
    return closed


def test_worker_closes_request_shm_when_response_attach_fails(
    monkeypatch, close_log
):
    request_block = object()

    def fake_attach(name):
        if name == "req":
            return request_block
        raise FileNotFoundError(name)

    monkeypatch.setattr(process_mod, "_attach", fake_attach)
    monkeypatch.setattr(process_mod, "_close_shm", close_log.append)
    with pytest.raises(FileNotFoundError):
        _service_worker(lambda: None, {}, "req", "resp")
    assert close_log == [request_block]


def test_worker_closes_both_shms_when_factory_fails(close_log):
    req = shared_memory.SharedMemory(create=True, size=16384)
    resp = shared_memory.SharedMemory(create=True, size=16384)
    SpscRing(req.buf, reset=True)
    SpscRing(resp.buf, reset=True)

    def factory():
        raise RuntimeError("no service for you")

    try:
        with pytest.raises(RuntimeError):
            _service_worker(factory, {}, req.name, resp.name)
        # Both of the worker's attaches were closed, in either order.
        assert len(close_log) == 2
        assert {shm.name for shm in close_log} == {req.name, resp.name}
    finally:
        req.close()
        req.unlink()
        resp.close()
        resp.unlink()


class _EchoService:
    def handle(self, method, request):
        return f"{method}:{request}"


def test_poison_request_record_does_not_wedge_the_ring():
    """A garbage record is consumed and later requests still get served."""
    req = shared_memory.SharedMemory(create=True, size=16384)
    resp = shared_memory.SharedMemory(create=True, size=16384)
    requests = SpscRing(req.buf, reset=True)
    responses = SpscRing(resp.buf, reset=True)
    worker = threading.Thread(
        target=_service_worker,
        args=(_EchoService, {}, req.name, resp.name),
        daemon=True,
    )
    worker.start()
    try:
        assert requests.write(KIND_PICKLE, [b"\x80 not a pickle"], timeout=5.0)
        valid = pickle.dumps((7, "echo", "hi"))
        assert requests.write(KIND_PICKLE, [valid], timeout=5.0)

        record = responses.read(timeout=5.0)
        assert record is not None, "worker died on the poison record"
        kind, view = record
        assert kind == KIND_PICKLE
        assert pickle.loads(view) == (7, "echo:hi", None)
        del view, record  # release the ring view before the shm closes
        responses.consume()
        # No second response: the poison record produced nothing.
        assert responses.try_read() is None
    finally:
        requests.close()
        worker.join(timeout=5.0)
        assert not worker.is_alive()
        del requests, responses
        req.close()
        req.unlink()
        resp.close()
        resp.unlink()


def test_reaper_survives_short_and_garbage_acks():
    """Undecodable acks are skipped; the next valid ack still resolves."""
    from repro.kera.messages import ReplicateResponse

    transport = ProcessTransport()
    ring = SpscRing(bytearray(8192), reset=True)
    binding = types.SimpleNamespace(responses=ring, dead=False)
    transport._proc[(0, "backup")] = binding
    call = _PendingCall("replicate", None)
    # Pending entries carry the binding so a dead worker can fail the
    # calls routed through it (_fail_dead_binding).
    transport._pending[11] = (call, binding)

    assert ring.try_write(KIND_ACK, [b"\x01\x02"])  # too short to unpack
    assert ring.try_write(KIND_ACK, [b"\xff" * (_ACK.size + 3)])  # oversized
    assert ring.try_write(KIND_ACK, [_ACK.pack(11, 1, 4096)])

    reaper = threading.Thread(target=transport._reap, daemon=True)
    reaper.start()
    try:
        assert call.done.wait(timeout=5.0), "garbage ack killed the reaper"
        assert call.error is None
        assert call.response == ReplicateResponse(ok=True, bytes_held=4096)
    finally:
        transport._reaper_stop.set()
        reaper.join(timeout=5.0)
        assert not reaper.is_alive()
