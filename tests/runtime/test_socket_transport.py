"""SocketTransport: framed-TCP RPCs to child processes, drain on shutdown.

Mirrors the ProcessTransport suite (same services, same contracts) so the
two process-boundary transports stay behaviourally interchangeable, and
adds the socket-only surface: the rendezvous listener, connection
accounting, and the close-then-drain stream shutdown under load.
"""

import threading

import pytest

from repro.common.errors import ChecksumError, RpcError
from repro.runtime.socket_transport import SocketServiceSpec, SocketTransport
from repro.kera.messages import ReplicateResponse

from tests.runtime.test_process_transport import Echo, FrameCounter, frame_request


@pytest.fixture
def transport():
    t = SocketTransport(call_timeout=20.0)
    yield t
    t.shutdown()


class TestGenericPath:
    def test_call_round_trip(self, transport):
        transport.register(
            1, "echo", SocketServiceSpec(factory=Echo, kwargs={"suffix": "!"})
        )
        transport.start()
        assert transport.call(0, 1, "echo", "greet", "hi") == "greet:hi!"

    def test_handler_exception_reraised_in_caller(self, transport):
        transport.register(1, "echo", SocketServiceSpec(factory=Echo))
        transport.start()
        with pytest.raises(ValueError, match="kapow"):
            transport.call(0, 1, "echo", "boom", None)
        # The worker survives its handler's exception.
        assert transport.call(0, 1, "echo", "m", 1) == "m:1"

    def test_call_async_callback_fires(self, transport):
        transport.register(1, "echo", SocketServiceSpec(factory=Echo))
        transport.start()
        done = threading.Event()
        results = []
        transport.call_async(
            0, 1, "echo", "m", "x",
            on_done=lambda r, e: (results.append((r, e)), done.set()),
        )
        assert done.wait(10.0)
        assert results == [("m:x", None)]

    def test_thread_and_socket_bindings_coexist(self, transport):
        class Local:
            def handle(self, method, request):
                return ("local", request)

        transport.register(1, "echo", SocketServiceSpec(factory=Echo))
        transport.register(1, "local", Local())
        transport.start()
        assert transport.call(0, 1, "echo", "m", 1) == "m:1"
        assert transport.call(0, 1, "local", "m", 2) == ("local", 2)
        assert transport.credit(1, "local") > transport.credit(1, "echo") > 0

    def test_duplicate_registration_rejected(self, transport):
        transport.register(1, "echo", SocketServiceSpec(factory=Echo))
        with pytest.raises(RpcError):
            transport.register(1, "echo", SocketServiceSpec(factory=Echo))
        with pytest.raises(RpcError):
            transport.register(1, "echo", Echo())

    def test_register_after_start_rejected(self, transport):
        transport.register(1, "echo", SocketServiceSpec(factory=Echo))
        transport.start()
        with pytest.raises(RpcError):
            transport.register(2, "late", SocketServiceSpec(factory=Echo))

    def test_call_before_start_rejected(self, transport):
        transport.register(1, "echo", SocketServiceSpec(factory=Echo))
        with pytest.raises(RpcError):
            transport.call(0, 1, "echo", "m", 1)


class TestListenerSurface:
    def test_listen_address_requires_started_transport(self, transport):
        transport.register(1, "echo", SocketServiceSpec(factory=Echo))
        with pytest.raises(RpcError):
            transport.listen_address()
        transport.start()
        host, port = transport.listen_address()
        assert host == "127.0.0.1"
        assert port > 0

    def test_connection_count_tracks_worker_links(self, transport):
        transport.register(1, "echo", SocketServiceSpec(factory=Echo))
        transport.register(2, "echo", SocketServiceSpec(factory=Echo))
        assert transport.connection_count() == 0
        transport.start()
        assert transport.connection_count() == 2


class TestReplicateFastPath:
    def test_frames_cross_unpickled_and_revalidated(self, transport):
        transport.register(2, "backup", SocketServiceSpec(factory=FrameCounter))
        transport.start()
        request = frame_request([b"alpha", b"beta", b"gamma"])
        response = transport.call(0, 2, "backup", "replicate", request)
        assert isinstance(response, ReplicateResponse)
        assert response.ok
        assert response.bytes_held == sum(len(f) for f in request.frames)

    def test_corrupt_frame_rejected_by_child(self, transport):
        # The bytes crossed a kernel socket: frames_verified is cleared in
        # transit and the child re-earns the CRC before storing.
        transport.register(2, "backup", SocketServiceSpec(factory=FrameCounter))
        transport.start()
        bad = frame_request([b"zap"], corrupt=True)
        with pytest.raises(ChecksumError):
            transport.call(0, 2, "backup", "replicate", bad)


class TestShutdownDrain:
    def test_shutdown_drains_in_flight_async_calls(self):
        """Every async call enqueued before shutdown resolves exactly
        once — the close-then-drain contract over a TCP stream: the
        parent half-closes, the child serves out its stream, responses
        flow back until EOF."""
        transport = SocketTransport(call_timeout=30.0)
        transport.register(1, "echo", SocketServiceSpec(factory=Echo))
        transport.start()
        lock = threading.Lock()
        results = []

        def on_done(r, e):
            with lock:
                results.append((r, e))

        for i in range(64):
            transport.call_async(0, 1, "echo", "m", i, on_done=on_done)
        transport.shutdown()
        assert len(results) == 64
        assert sorted(r for r, e in results) == sorted(f"m:{i}" for i in range(64))
        assert all(e is None for _, e in results)

    def test_shutdown_idempotent_and_closes_connections(self):
        transport = SocketTransport()
        transport.register(1, "echo", SocketServiceSpec(factory=Echo))
        transport.start()
        transport.shutdown()
        transport.shutdown()
        assert transport.connection_count() == 0
        with pytest.raises(RpcError):
            transport.call(0, 1, "echo", "m", 1)

    def test_credit_window_released_by_responses(self):
        transport = SocketTransport(call_timeout=20.0)
        transport.register(
            1, "echo", SocketServiceSpec(factory=Echo, window_bytes=1 << 20)
        )
        transport.start()
        try:
            before = transport.credit(1, "echo")
            assert before == 1 << 20
            for i in range(8):
                transport.call(0, 1, "echo", "m", i)
            # Synchronous calls: every ack released its credited bytes.
            assert transport.credit(1, "echo") == before
        finally:
            transport.shutdown()
