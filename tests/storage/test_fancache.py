"""Fan-out chunk cache: LRU accounting, gauges, single-decode under
concurrency, and retirement invalidation."""

import threading

import pytest

from repro.common.errors import StorageError
from repro.storage.fancache import FanoutCache
from repro.wire.chunk import ChunkBuilder
from repro.wire.record import Record

VLOG = (1, 0, 0)


def make_frame(seq=0, n_records=4, value_size=32):
    builder = ChunkBuilder(1 << 16, stream_id=1, streamlet_id=0, producer_id=0)
    for _ in range(n_records):
        assert builder.try_append(Record(value=bytes([65 + seq % 26]) * value_size))
    return bytes(builder.build(chunk_seq=seq).wire)


def key_for(seq, vseg=0):
    return (VLOG, vseg, seq)


def test_miss_admits_then_hit_returns_same_view():
    cache = FanoutCache(1 << 20)
    frame = make_frame()
    loads = []

    def load():
        loads.append(1)
        return frame

    first = cache.get(key_for(0), load)
    second = cache.get(key_for(0), load)
    assert first is second
    assert len(loads) == 1  # load_frame ran once per cached lifetime
    assert first.verified  # admission re-validated the CRC
    assert first.records()  # pre-decoded at admission
    stats = cache.stats()
    assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
    assert stats.bytes_cached == first.size


def test_lru_evicts_oldest_and_promotes_on_hit():
    frames = [make_frame(seq) for seq in range(3)]
    # Room for exactly two of the (equal-size) frames.
    cache = FanoutCache(2 * len(frames[0]))
    cache.get(key_for(0), lambda: frames[0])
    cache.get(key_for(1), lambda: frames[1])
    cache.get(key_for(0), lambda: frames[0])  # promote 0 over 1
    cache.get(key_for(2), lambda: frames[2])  # evicts 1, the LRU entry
    assert cache.peek(key_for(1)) is None
    assert cache.peek(key_for(0)) is not None
    assert cache.peek(key_for(2)) is not None
    stats = cache.stats()
    assert stats.evictions == 1
    assert stats.entries == 2


def test_over_capacity_chunk_served_but_never_cached():
    frame = make_frame(value_size=256)
    cache = FanoutCache(len(frame) // 2)
    view = cache.get(key_for(0), lambda: frame)
    assert view.records()
    assert cache.entry_count == 0
    assert cache.stats().bytes_cached == 0


def test_invalidate_group_drops_only_that_vseg():
    cache = FanoutCache(1 << 20)
    for seq in range(3):
        cache.get(key_for(seq, vseg=0), lambda s=seq: make_frame(s))
    cache.get(key_for(0, vseg=1), lambda: make_frame(9))
    dropped = cache.invalidate_group(VLOG, 0)
    assert dropped == 3
    assert cache.peek(key_for(0, vseg=0)) is None
    assert cache.peek(key_for(0, vseg=1)) is not None
    # Byte accounting followed the drops.
    assert cache.stats().bytes_cached == cache.peek(key_for(0, vseg=1)).size


def test_failed_admission_clears_inflight_marker():
    cache = FanoutCache(1 << 20)
    calls = []

    def broken():
        calls.append(1)
        raise StorageError("backing bytes gone")

    with pytest.raises(StorageError):
        cache.get(key_for(0), broken)
    # The key is retryable: a later get becomes the owner and succeeds.
    view = cache.get(key_for(0), lambda: make_frame())
    assert view.records()
    assert len(calls) == 1


def test_concurrent_getters_decode_once():
    """N threads racing on the same cold key: one admission, one decode,
    every caller handed the same shared view object."""
    cache = FanoutCache(1 << 20)
    frame = make_frame()
    barrier = threading.Barrier(8)
    results = []
    errors = []

    def work():
        try:
            barrier.wait()
            for _ in range(50):
                results.append(cache.get(key_for(0), lambda: frame))
        except BaseException as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    threads = [threading.Thread(target=work) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert cache.decodes.value == 1
    assert len({id(v) for v in results}) == 1
    assert cache.stats().misses == 1
    assert cache.stats().hits == 8 * 50 - 1


def test_concurrent_distinct_keys_decode_each_once():
    cache = FanoutCache(1 << 20)
    frames = {seq: make_frame(seq) for seq in range(16)}
    barrier = threading.Barrier(4)
    errors = []

    def work(worker):
        try:
            barrier.wait()
            for round_ in range(20):
                for seq in range(16):
                    view = cache.get(key_for(seq), lambda s=seq: frames[s])
                    assert view.record_count == 4
        except BaseException as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    threads = [threading.Thread(target=work, args=(w,)) for w in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert cache.decodes.value == 16  # one admission per distinct hot chunk


def test_capacity_must_be_positive():
    with pytest.raises(StorageError):
        FanoutCache(0)
