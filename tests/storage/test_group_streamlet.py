"""Group rolling, streamlet entry routing, stream registry tests."""

import pytest

from repro.common.errors import GroupFullError, StorageError, UnknownStreamError
from repro.storage.config import StorageConfig
from repro.storage.group import Group
from repro.storage.memory import SegmentAllocator
from repro.storage.stream import Stream, StreamRegistry
from repro.storage.streamlet import Streamlet
from repro.wire.chunk import Chunk


def meta_chunk(payload_len=160, producer_id=0, chunk_seq=0, streamlet_id=0, n=4):
    return Chunk.meta(
        stream_id=7,
        streamlet_id=streamlet_id,
        producer_id=producer_id,
        chunk_seq=chunk_seq,
        record_count=n,
        payload_len=payload_len,
    )


def small_config(segment_size=512, segments_per_group=2, q=1):
    return StorageConfig(
        segment_size=segment_size,
        segments_per_group=segments_per_group,
        q_active_groups=q,
        materialize=False,
    )


def make_group(config=None):
    config = config or small_config()
    return Group(
        stream_id=7,
        streamlet_id=0,
        group_id=0,
        entry=0,
        config=config,
        allocator=SegmentAllocator(config),
    )


class TestGroup:
    def test_rolls_segments_until_quota(self):
        # Each chunk is 40 + 160 = 200 bytes; a 512-byte segment fits 2.
        group = make_group()
        for i in range(4):
            group.append(meta_chunk(chunk_seq=i))
        assert len(group.segments) == 2
        assert group.segments[0].sealed
        with pytest.raises(GroupFullError):
            group.append(meta_chunk(chunk_seq=4))

    def test_closed_group_rejects(self):
        group = make_group()
        group.append(meta_chunk())
        group.close()
        assert group.closed
        assert all(s.sealed for s in group.segments)
        with pytest.raises(GroupFullError):
            group.append(meta_chunk(chunk_seq=1))

    def test_oversized_chunk_hard_error(self):
        group = make_group()
        with pytest.raises(StorageError):
            group.append(meta_chunk(payload_len=600))

    def test_record_accounting_and_index(self):
        group = make_group(small_config(segment_size=4096, segments_per_group=4))
        for i in range(5):
            group.append(meta_chunk(chunk_seq=i, n=4))
        assert group.record_count == 20
        assert group.chunk_count == 5
        located = group.index.locate(9)  # records 8..11 are chunk 2
        assert located.chunk_seq == 2
        assert located.base_record_offset == 8
        with pytest.raises(StorageError):
            group.index.locate(20)

    def test_durable_chunks_stop_at_watermark(self):
        group = make_group(small_config(segment_size=4096))
        stored = [group.append(meta_chunk(chunk_seq=i)) for i in range(3)]
        assert list(group.durable_chunks()) == []
        stored[0].segment.mark_chunk_durable(stored[0])
        assert list(group.durable_chunks()) == [stored[0]]
        assert group.durable_record_count() == 4


class TestStreamlet:
    def make(self, q=2, segment_size=512, segments_per_group=2):
        config = small_config(segment_size, segments_per_group, q)
        return Streamlet(
            stream_id=7,
            streamlet_id=0,
            config=config,
            allocator=SegmentAllocator(config),
        )

    def test_producer_modulo_routing(self):
        streamlet = self.make(q=2)
        a = streamlet.append(meta_chunk(producer_id=0))
        b = streamlet.append(meta_chunk(producer_id=1))
        c = streamlet.append(meta_chunk(producer_id=2, chunk_seq=1))
        assert a.group_id != b.group_id  # different entries
        assert c.group_id == a.group_id  # 2 % 2 == 0: same entry, same group
        assert streamlet.entry_for_producer(5) == 1

    def test_group_rollover_on_quota(self):
        streamlet = self.make(q=1)
        # 4 chunks fill a group (2 segments x 2 chunks); the 5th rolls.
        stored = [streamlet.append(meta_chunk(chunk_seq=i)) for i in range(5)]
        group_ids = [s.group_id for s in stored]
        assert group_ids == [0, 0, 0, 0, 1]
        groups = streamlet.groups
        assert len(groups) == 2
        assert groups[0].closed and not groups[1].closed

    def test_group_open_listener(self):
        opened = []
        config = small_config()
        streamlet = Streamlet(
            stream_id=7,
            streamlet_id=0,
            config=config,
            allocator=SegmentAllocator(config),
            on_group_open=lambda sl, g: opened.append(g.group_id),
        )
        for i in range(5):
            streamlet.append(meta_chunk(chunk_seq=i))
        assert opened == [0, 1]

    def test_groups_for_entry(self):
        streamlet = self.make(q=2)
        streamlet.append(meta_chunk(producer_id=0))
        streamlet.append(meta_chunk(producer_id=1))
        assert [g.entry for g in streamlet.groups_for_entry(0)] == [0]
        assert [g.entry for g in streamlet.groups_for_entry(1)] == [1]


class TestCursor:
    def test_sequential_pull_respects_durability(self):
        config = small_config(segment_size=4096)
        streamlet = Streamlet(
            stream_id=7, streamlet_id=0, config=config, allocator=SegmentAllocator(config)
        )
        stored = [streamlet.append(meta_chunk(chunk_seq=i)) for i in range(3)]
        cursor = streamlet.cursor(entry=0)
        assert cursor.next_chunks(10) == []
        for s in stored[:2]:
            s.segment.mark_chunk_durable(s)
        pulled = cursor.next_chunks(10)
        assert [c.chunk_seq for c in pulled] == [0, 1]
        stored[2].segment.mark_chunk_durable(stored[2])
        assert [c.chunk_seq for c in cursor.next_chunks(10)] == [2]
        assert cursor.records_read == 12

    def test_cursor_crosses_groups(self):
        streamlet = Streamlet(
            stream_id=7,
            streamlet_id=0,
            config=small_config(),
            allocator=SegmentAllocator(small_config()),
        )
        stored = [streamlet.append(meta_chunk(chunk_seq=i)) for i in range(6)]
        for s in stored:
            s.segment.mark_chunk_durable(s)
        cursor = streamlet.cursor(entry=0)
        # Pull two at a time across the group boundary at chunk 4.
        seqs = []
        while True:
            batch = cursor.next_chunks(2)
            if not batch:
                break
            seqs.extend(c.chunk_seq for c in batch)
        assert seqs == [0, 1, 2, 3, 4, 5]

    def test_seek_record(self):
        config = small_config(segment_size=4096)
        streamlet = Streamlet(
            stream_id=7, streamlet_id=0, config=config, allocator=SegmentAllocator(config)
        )
        stored = [streamlet.append(meta_chunk(chunk_seq=i, n=4)) for i in range(4)]
        for s in stored:
            s.segment.mark_chunk_durable(s)
        cursor = streamlet.cursor(entry=0)
        cursor.seek_record(9)  # chunk 2 holds records 8..11
        pulled = cursor.next_chunks(10)
        assert [c.chunk_seq for c in pulled] == [2, 3]
        with pytest.raises(StorageError):
            cursor.seek_record(1000)


class TestStreamAndRegistry:
    def test_stream_routes_by_streamlet(self):
        config = small_config(q=1)
        stream = Stream(
            stream_id=7,
            streamlet_ids=[0, 3],
            config=config,
            allocator=SegmentAllocator(config),
        )
        stream.append(meta_chunk(streamlet_id=0))
        stream.append(meta_chunk(streamlet_id=3))
        assert stream.streamlet_ids == [0, 3]
        assert stream.record_count == 8
        with pytest.raises(StorageError):
            stream.append(meta_chunk(streamlet_id=1))
        with pytest.raises(StorageError):
            stream.add_streamlet(0)

    def test_registry(self):
        config = small_config()
        registry = StreamRegistry()
        stream = Stream(
            stream_id=1, streamlet_ids=[0], config=config, allocator=SegmentAllocator(config)
        )
        registry.add(stream)
        assert registry.get(1) is stream
        assert 1 in registry and 2 not in registry
        assert len(registry) == 1
        with pytest.raises(UnknownStreamError):
            registry.get(2)
        with pytest.raises(StorageError):
            registry.add(stream)


class TestAllocator:
    def test_budget_enforced(self):
        config = small_config(segment_size=512)
        allocator = SegmentAllocator(config, budget_bytes=1024)
        seg1 = allocator.allocate(stream_id=1, streamlet_id=0, group_id=0, segment_id=0)
        allocator.allocate(stream_id=1, streamlet_id=0, group_id=0, segment_id=1)
        with pytest.raises(StorageError):
            allocator.allocate(stream_id=1, streamlet_id=0, group_id=0, segment_id=2)
        assert allocator.live_bytes == 1024
        assert allocator.peak_bytes == 1024
        allocator.free(seg1)
        assert allocator.live_bytes == 512
        allocator.allocate(stream_id=1, streamlet_id=0, group_id=0, segment_id=2)
        assert allocator.segments_allocated == 3
