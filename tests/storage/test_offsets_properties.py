"""Property tests for the lightweight offset index and cursors."""

from hypothesis import given, settings, strategies as st

from repro.common.units import KB
from repro.storage.config import StorageConfig
from repro.storage.memory import SegmentAllocator
from repro.storage.streamlet import Streamlet
from repro.wire.chunk import Chunk


def build_streamlet(record_counts, q=1, segment_size=2 * KB, segments_per_group=3):
    config = StorageConfig(
        segment_size=segment_size,
        segments_per_group=segments_per_group,
        q_active_groups=q,
        materialize=False,
    )
    streamlet = Streamlet(
        stream_id=0, streamlet_id=0, config=config, allocator=SegmentAllocator(config)
    )
    stored = []
    for seq, n in enumerate(record_counts):
        chunk = Chunk.meta(
            stream_id=0, streamlet_id=0, producer_id=0, chunk_seq=seq,
            record_count=n, payload_len=n * 100,
        )
        stored.append(streamlet.append(chunk))
    return streamlet, stored


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(1, 8), min_size=1, max_size=40))
def test_locate_agrees_with_linear_scan(record_counts):
    streamlet, stored = build_streamlet(record_counts)
    for group in streamlet.groups:
        # Brute-force expected mapping within the group.
        flat = []
        for chunk_idx, sc in enumerate(group.chunks()):
            flat.extend([chunk_idx] * sc.record_count)
        for offset, expected_chunk in enumerate(flat):
            located = group.index.locate(offset)
            assert located is group.chunk_at(expected_chunk)
        assert group.index.record_count == len(flat)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(1, 8), min_size=1, max_size=40),
    st.integers(1, 7),
)
def test_cursor_yields_every_durable_chunk_once(record_counts, pull_size):
    streamlet, stored = build_streamlet(record_counts)
    for sc in stored:
        sc.segment.mark_chunk_durable(sc)
    cursor = streamlet.cursor(entry=0)
    seen = []
    while True:
        batch = cursor.next_chunks(pull_size)
        if not batch:
            break
        assert len(batch) <= pull_size
        seen.extend(batch)
    assert [c.chunk_seq for c in seen] == list(range(len(record_counts)))
    assert cursor.records_read == sum(record_counts)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(1, 8), min_size=2, max_size=30),
    st.data(),
)
def test_seek_then_read_matches_suffix(record_counts, data):
    streamlet, stored = build_streamlet(
        record_counts, segment_size=64 * KB, segments_per_group=64
    )
    for sc in stored:
        sc.segment.mark_chunk_durable(sc)
    total = sum(record_counts)
    target = data.draw(st.integers(0, total - 1))
    cursor = streamlet.cursor(entry=0)
    cursor.seek_record(target)
    suffix = cursor.next_chunks(len(stored))
    # The first returned chunk must contain the target record.
    first = suffix[0]
    assert first.base_record_offset <= target < first.base_record_offset + first.record_count
    # And the suffix continues to the end without gaps.
    seqs = [c.chunk_seq for c in suffix]
    assert seqs == list(range(seqs[0], len(record_counts)))


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 5), st.integers(1, 6)), min_size=1, max_size=40),
    st.integers(2, 4),
)
def test_q_entries_are_independent(appends, q):
    """Chunks from different producers land in disjoint per-entry group
    chains and each entry's cursor sees exactly its own chunks."""
    config = StorageConfig(
        segment_size=2 * KB, segments_per_group=2, q_active_groups=q,
        materialize=False,
    )
    streamlet = Streamlet(
        stream_id=0, streamlet_id=0, config=config, allocator=SegmentAllocator(config)
    )
    per_entry_expected: dict[int, int] = {}
    seqs: dict[int, int] = {}
    for producer, n in appends:
        seq = seqs.get(producer, 0)
        seqs[producer] = seq + 1
        chunk = Chunk.meta(
            stream_id=0, streamlet_id=0, producer_id=producer, chunk_seq=seq,
            record_count=n, payload_len=n * 100,
        )
        stored = streamlet.append(chunk)
        stored.segment.mark_chunk_durable(stored)
        entry = producer % q
        assert stored.segment.group_id in {
            g.group_id for g in streamlet.groups_for_entry(entry)
        }
        per_entry_expected[entry] = per_entry_expected.get(entry, 0) + n
    for entry in range(q):
        cursor = streamlet.cursor(entry=entry)
        got = 0
        while True:
            batch = cursor.next_chunks(10)
            if not batch:
                break
            got += sum(c.record_count for c in batch)
        assert got == per_entry_expected.get(entry, 0)
