"""Per-segment offset index: positioned reads in O(1) frames, rebuild
equivalence, and the segment read_at/read_range surface."""

import pytest

from repro.common.errors import StorageError, WireFormatError
from repro.storage.index import SegmentOffsetIndex
from repro.storage.segment import Segment
from repro.wire.chunk import ChunkBuilder
from repro.wire.record import Record
from repro.wire.views import ChunkView


def make_chunk(n_records, chunk_seq=0, value_size=20):
    builder = ChunkBuilder(1 << 16, stream_id=1, streamlet_id=2, producer_id=1)
    for i in range(n_records):
        assert builder.try_append(Record(value=bytes([65 + chunk_seq % 26]) * value_size))
    return builder.build(chunk_seq=chunk_seq)


def make_segment(capacity=1 << 20):
    return Segment(
        stream_id=1,
        streamlet_id=2,
        group_id=3,
        segment_id=0,
        capacity=capacity,
        materialize=True,
    )


def filled_segment(counts=(3, 5, 2, 7)):
    seg = make_segment()
    base = 0
    for seq, count in enumerate(counts):
        seg.append(make_chunk(count, chunk_seq=seq), base)
        base += count
    return seg


# -- index bookkeeping --------------------------------------------------------


def test_incremental_build_tracks_appends():
    seg = filled_segment((3, 5, 2))
    assert seg.index.frame_count == 3
    assert seg.index.record_count == 10
    assert [seg.index.frame_record_base(i) for i in range(3)] == [0, 3, 8]


def test_locate_bisects_to_owning_frame():
    seg = filled_segment((3, 5, 2))
    index = seg.index
    assert [index.locate(off) for off in (0, 2)] == [0, 0]
    assert [index.locate(off) for off in (3, 7)] == [1, 1]
    assert [index.locate(off) for off in (8, 9)] == [2, 2]


def test_locate_out_of_range_raises():
    seg = filled_segment((3,))
    with pytest.raises(StorageError):
        seg.index.locate(3)
    with pytest.raises(StorageError):
        seg.index.locate(-1)


def test_positioned_read_touches_one_frame():
    """The acceptance instrumentation: a seek must resolve through the
    index in O(1) frames, never by scanning."""
    seg = filled_segment(tuple([4] * 50))  # 50 frames, 200 records
    index = seg.index
    index.frames_touched = 0
    seg.read_at(137)
    assert index.frames_touched == 1
    seg.read_at(0)
    seg.read_at(199)
    assert index.frames_touched == 3


def test_range_read_counts_spanned_frames():
    seg = filled_segment((4, 4, 4, 4))
    index = seg.index
    index.frames_touched = 0
    start, end = index.byte_range(2, 11)  # frames 0..2 inclusive
    assert index.frames_touched == 3
    assert start == 0


# -- segment read surface ----------------------------------------------------


def test_read_at_returns_exact_frame_bytes():
    seg = filled_segment((3, 5, 2))
    stored = seg.entries[1]
    frame = seg.read_at(4)  # record 4 lives in chunk 1 (records 3..7)
    assert bytes(frame) == bytes(stored.encoded_view())
    view = ChunkView(frame)
    view.verify_payload()
    assert view.record_count == 5


def test_read_range_is_one_contiguous_view():
    seg = filled_segment((3, 5, 2))
    span = seg.read_range(1, 9)  # touches all three frames
    assert isinstance(span, memoryview)
    assert bytes(span) == bytes(seg.buffer.view(0, seg.buffer.head))


def test_read_at_metadata_only_segment_raises():
    from repro.wire.chunk import Chunk

    seg = Segment(
        stream_id=1,
        streamlet_id=2,
        group_id=3,
        segment_id=0,
        capacity=1 << 20,
        materialize=False,
    )
    meta = Chunk.meta(
        stream_id=1,
        streamlet_id=2,
        producer_id=1,
        chunk_seq=0,
        record_count=3,
        payload_len=90,
    )
    seg.append(meta, 0)
    with pytest.raises(StorageError):
        seg.read_at(0)


# -- rebuild ------------------------------------------------------------------


def test_rebuild_matches_incremental_index():
    seg = filled_segment((3, 5, 2, 7))
    incremental = seg.index
    rebuilt = SegmentOffsetIndex.rebuild(seg.buffer.view(0, seg.buffer.head))
    assert rebuilt.frame_count == incremental.frame_count
    assert rebuilt.record_count == incremental.record_count
    for i in range(incremental.frame_count):
        assert rebuilt.frame_range(i) == incremental.frame_range(i)
        assert rebuilt.frame_record_base(i) == incremental.frame_record_base(i)


def test_segment_rebuild_index_restores_positioned_reads():
    seg = filled_segment((3, 5, 2))
    before = bytes(seg.read_at(4))
    seg.rebuild_index()
    assert bytes(seg.read_at(4)) == before


def test_rebuild_rejects_torn_bytes():
    seg = filled_segment((3, 5))
    raw = bytes(seg.buffer.view(0, seg.buffer.head))
    with pytest.raises(WireFormatError):
        SegmentOffsetIndex.rebuild(raw[:-3])
    with pytest.raises(WireFormatError):
        SegmentOffsetIndex.rebuild(b"\x00" * 64)
