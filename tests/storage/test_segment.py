"""Segment append/durability/scan tests."""

import pytest

from repro.common.errors import SegmentFullError, StorageError
from repro.wire.chunk import Chunk, CHUNK_HEADER_SIZE
from repro.wire.record import Record, encode_records
from repro.storage.segment import Segment


def make_chunk(n_records=3, producer_id=1, chunk_seq=0, value_size=20):
    payload = encode_records([Record(value=b"v" * value_size)] * n_records)
    return Chunk(
        stream_id=1,
        streamlet_id=2,
        producer_id=producer_id,
        chunk_seq=chunk_seq,
        record_count=n_records,
        payload_len=len(payload),
        payload=payload,
    )


def make_segment(capacity=4096, materialize=True):
    return Segment(
        stream_id=1,
        streamlet_id=2,
        group_id=3,
        segment_id=0,
        capacity=capacity,
        materialize=materialize,
    )


def test_append_places_and_tags():
    seg = make_segment()
    chunk = make_chunk()
    stored = seg.append(chunk, base_record_offset=0)
    assert stored.offset == 0
    assert stored.length == CHUNK_HEADER_SIZE + chunk.payload_len
    assert stored.group_id == 3
    assert stored.segment_id == 0
    assert seg.record_count == 3
    # The encoded bytes carry the broker-assigned [group, segment] tags.
    decoded = stored.to_chunk(verify=True)
    assert (decoded.group_id, decoded.segment_id) == (3, 0)
    assert decoded.records() == [Record(value=b"v" * 20)] * 3


def test_appends_are_contiguous():
    seg = make_segment()
    first = seg.append(make_chunk(chunk_seq=0), 0)
    second = seg.append(make_chunk(chunk_seq=1), 3)
    assert second.offset == first.end_offset
    assert second.base_record_offset == 3


def test_full_segment_rejects():
    chunk = make_chunk()
    seg = make_segment(capacity=chunk.size + 10)
    seg.append(chunk, 0)
    with pytest.raises(SegmentFullError):
        seg.append(make_chunk(chunk_seq=1), 3)
    assert seg.chunk_count == 1  # state untouched


def test_durability_in_order():
    seg = make_segment()
    a = seg.append(make_chunk(chunk_seq=0), 0)
    b = seg.append(make_chunk(chunk_seq=1), 3)
    assert not a.is_durable and not b.is_durable
    assert seg.durable_entries() == []
    with pytest.raises(StorageError):
        seg.mark_chunk_durable(b)  # out of order
    seg.mark_chunk_durable(a)
    assert a.is_durable and not b.is_durable
    assert seg.durable_entries() == [a]
    seg.mark_chunk_durable(b)
    assert seg.durable_entries() == [a, b]


def test_mark_durable_wrong_segment_rejected():
    seg1, seg2 = make_segment(), make_segment()
    stored = seg1.append(make_chunk(), 0)
    with pytest.raises(StorageError):
        seg2.mark_chunk_durable(stored)


def test_scan_roundtrip():
    seg = make_segment()
    for i in range(4):
        seg.append(make_chunk(chunk_seq=i), i * 3)
    scanned = list(seg.scan(verify=True))
    assert [c.chunk_seq for c in scanned] == [0, 1, 2, 3]
    assert all(c.group_id == 3 and c.segment_id == 0 for c in scanned)


def test_metadata_only_mode():
    seg = make_segment(materialize=False)
    meta = Chunk.meta(
        stream_id=1, streamlet_id=2, producer_id=1, chunk_seq=0,
        record_count=10, payload_len=1000,
    )
    stored = seg.append(meta, 0)
    assert stored.length == CHUNK_HEADER_SIZE + 1000
    assert seg.head == stored.length
    with pytest.raises(StorageError):
        list(seg.scan())
    # Durability accounting still works.
    seg.mark_chunk_durable(stored)
    assert stored.is_durable


def test_seal_blocks_appends():
    seg = make_segment()
    seg.append(make_chunk(), 0)
    seg.seal()
    assert seg.sealed
    with pytest.raises(StorageError):
        seg.append(make_chunk(chunk_seq=1), 3)
