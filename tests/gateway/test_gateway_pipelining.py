"""Gateway produce pipelining: the completion-driven async path.

These tests pin the three properties ISSUE 9 bought:

* a pipelining producer (``max_inflight > 1``) keeps several produce
  frames in flight on one connection, the server-side coalescer merges
  chunks from many requests into fewer broker requests, and everything
  acked survives a consume-back;
* the ``inflight_produces`` gauge rises while requests await replication
  and returns to zero — no executor thread is parked anywhere in that
  window;
* a SIGKILLed backup worker surfaces as a relayed *typed, retryable*
  error on the waiting client and leaks nothing: gateway gauge zero,
  cluster in-flight registry empty.
"""

import asyncio
import os
import signal

import pytest

from repro.common.units import KB, MB
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.gateway import AsyncConsumer, AsyncGatewayClient, AsyncProducer, GatewayServer
from repro.common.errors import RetriableRpcError
from repro.kera import KeraConfig, ThreadedKeraCluster
from repro.kera.socket_cluster import SocketKeraCluster


def small_config():
    return KeraConfig(
        num_brokers=3,
        storage=StorageConfig(segment_size=256 * KB, q_active_groups=2),
        replication=ReplicationConfig(
            replication_factor=3,
            vlogs_per_broker=2,
            pipeline_depth=2,
            ship_window_bytes=2 * MB,
        ),
        chunk_size=1 * KB,
    )


@pytest.fixture
def gateway():
    with ThreadedKeraCluster(small_config()) as cluster:
        with GatewayServer(cluster) as server:
            yield server


def test_pipelined_producer_roundtrip_and_coalescing(gateway):
    connections, records = 8, 120
    host, port = gateway.address()

    async def one_producer(pid: int) -> int:
        async with await AsyncGatewayClient.connect(host, port) as client:
            producer = await AsyncProducer.open(
                client, pid, stream_id=0, max_inflight=4, linger_ms=5.0
            )
            for i in range(records):
                producer.send(f"c{pid}-r{i}".encode())
            await producer.close()  # drains the in-flight window
            return producer.records_sent

    async def run():
        async with await AsyncGatewayClient.connect(host, port) as admin:
            await admin.create_stream(0, 4)
            sent = await asyncio.gather(
                *(one_producer(pid) for pid in range(connections))
            )
            assert sent == [records] * connections
            consumer = await AsyncConsumer.open(admin, 999, stream_id=0)
            values = [r.value for r in await consumer.drain()]
            assert len(values) == connections * records
            assert len(set(values)) == len(values)

    asyncio.run(run())
    stats = gateway.stats
    assert stats.errors_returned == 0
    assert stats.inflight_produces == 0
    assert gateway.cluster.inflight_produce_count() == 0
    # The coalescer really merged: fewer broker batches than gateway
    # produce requests, and every chunk went through a batch.
    assert 1 <= stats.produce_batches
    assert stats.produce_batched_chunks == stats.chunks_in


def test_inflight_gauge_rises_and_returns_to_zero(gateway):
    host, port = gateway.address()
    peak_seen = 0

    async def run():
        nonlocal peak_seen
        async with await AsyncGatewayClient.connect(host, port) as client:
            await client.create_stream(0, 2)
            producer = await AsyncProducer.open(
                client, 1, stream_id=0, max_inflight=8
            )
            for i in range(400):
                producer.send(f"v{i}".encode())
            await producer.flush()
            peak_seen = gateway.stats.inflight_produces_peak

    asyncio.run(run())
    assert peak_seen >= 1
    assert gateway.stats.inflight_produces == 0


def test_sigkilled_backup_relays_gw_error_without_leaks(tmp_path):
    """Kill a backup worker mid-stream: the shipper fails, the waiting
    gateway produce resolves with a relayed error, nothing leaks."""
    config = small_config()
    with SocketKeraCluster(config, ack_timeout=10.0) as cluster:
        with GatewayServer(cluster) as server:
            host, port = server.address()

            async def run():
                async with await AsyncGatewayClient.connect(host, port) as client:
                    await client.create_stream(0, 2)
                    producer = await AsyncProducer.open(
                        client, 1, stream_id=0, max_inflight=4
                    )
                    # A first healthy flush proves the path end to end.
                    for i in range(50):
                        producer.send(f"warm-{i}".encode())
                    assert await producer.flush()
                    # SIGKILL one backup worker: R=3 means every leader
                    # replicates through it, so the next produce cannot
                    # become durable.
                    victim = max(cluster.system.node_ids)
                    binding = cluster.transport._sockets[(victim, "backup")]
                    assert binding.process is not None
                    os.kill(binding.process.pid, signal.SIGKILL)
                    for i in range(50):
                        producer.send(f"lost-{i}".encode())
                    # The wire relays the replication failure as a typed
                    # retryable error — with no failover plane running
                    # there is nobody to recover, so retries would also
                    # fail, but the *classification* lets real clients
                    # decide to retry.
                    with pytest.raises(RetriableRpcError):
                        await producer.flush()

            asyncio.run(run())
            assert server.stats.errors_returned >= 1
            assert server.stats.inflight_produces == 0
            assert cluster.inflight_produce_count() == 0
