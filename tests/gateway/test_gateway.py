"""Gateway end to end: asyncio clients through the TCP front door.

A threaded cluster behind a :class:`GatewayServer`, driven by the
asyncio client stack from the test's own event loop: produce/fetch
roundtrips, request pipelining on one connection, server-side errors
relayed as typed frames, garbage connections dropped without collateral,
and a several-dozen-connection concurrency smoke.
"""

import asyncio
import socket

import pytest

from repro.common.errors import WireFormatError
from repro.common.units import KB, MB
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.gateway import AsyncConsumer, AsyncGatewayClient, AsyncProducer, GatewayServer
from repro.gateway.protocol import GatewayError
from repro.kera import KeraConfig, ThreadedKeraCluster


@pytest.fixture
def gateway():
    config = KeraConfig(
        num_brokers=3,
        storage=StorageConfig(segment_size=256 * KB, q_active_groups=2),
        replication=ReplicationConfig(
            replication_factor=3,
            vlogs_per_broker=2,
            pipeline_depth=2,
            ship_window_bytes=2 * MB,
        ),
        chunk_size=1 * KB,
    )
    with ThreadedKeraCluster(config) as cluster:
        with GatewayServer(cluster) as server:
            yield server


def test_produce_fetch_roundtrip(gateway):
    host, port = gateway.address()

    async def run():
        async with await AsyncGatewayClient.connect(host, port) as client:
            await client.create_stream(0, 2)
            producer = await AsyncProducer.open(client, 1, stream_id=0)
            for i in range(50):
                producer.send(f"v{i}".encode())
            assignments = await producer.flush()
            assert assignments and not any(a.duplicate for a in assignments)
            await producer.close()

            consumer = await AsyncConsumer.open(client, 7, stream_id=0)
            records = await consumer.drain()
            assert sorted(r.value for r in records) == sorted(
                f"v{i}".encode() for i in range(50)
            )

    asyncio.run(run())
    assert gateway.stats.produce_requests >= 1
    assert gateway.stats.fetch_requests >= 1
    assert gateway.stats.chunks_in >= 1
    assert gateway.stats.chunks_out >= 1
    assert gateway.stats.errors_returned == 0


def test_pipelined_requests_multiplex_one_connection(gateway):
    host, port = gateway.address()

    async def run():
        async with await AsyncGatewayClient.connect(host, port) as client:
            await client.create_stream(0, 2)
            # Many in-flight requests on one connection: the reader
            # correlates by request id, not arrival order.
            metas = await asyncio.gather(*(client.meta(0) for _ in range(16)))
            assert all(m == metas[0] for m in metas)
            producers = [
                await AsyncProducer.open(client, pid, stream_id=0)
                for pid in range(4)
            ]
            for pid, producer in enumerate(producers):
                for i in range(20):
                    producer.send(f"p{pid}-r{i}".encode())
            results = await asyncio.gather(*(p.flush() for p in producers))
            assert all(result for result in results)

            consumer = await AsyncConsumer.open(client, 9, stream_id=0)
            records = await consumer.drain()
            values = [r.value for r in records]
            assert len(values) == 4 * 20
            assert len(set(values)) == len(values)

    asyncio.run(run())


def test_server_error_relayed_and_connection_survives(gateway):
    host, port = gateway.address()

    async def run():
        async with await AsyncGatewayClient.connect(host, port) as client:
            with pytest.raises(GatewayError):
                await client.meta(404)  # stream does not exist
            # The error addressed one request; the connection lives on.
            await client.create_stream(0, 2)
            assert (await client.meta(0))[2] != []

    asyncio.run(run())
    assert gateway.stats.errors_returned == 1


def test_garbage_connection_dropped_without_collateral(gateway):
    host, port = gateway.address()

    async def run():
        async with await AsyncGatewayClient.connect(host, port) as client:
            await client.create_stream(0, 2)
            # A connection speaking the wrong protocol is dropped cold...
            raw = socket.create_connection((host, port), timeout=10.0)
            try:
                raw.sendall(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
                raw.settimeout(10.0)
                assert raw.recv(64) == b""  # server closed, sent nothing
            finally:
                raw.close()
            # ...while framed neighbours keep working.
            assert (await client.meta(0))[2] != []

    asyncio.run(run())


def test_oversized_record_rejected_client_side(gateway):
    host, port = gateway.address()

    async def run():
        async with await AsyncGatewayClient.connect(host, port) as client:
            await client.create_stream(0, 1)
            producer = await AsyncProducer.open(client, 1, stream_id=0)
            # Same contract as the native producer: the chunk builder
            # rejects a record that cannot fit any chunk, client-side.
            with pytest.raises(WireFormatError, match="exceeds chunk capacity"):
                producer.send(b"x" * (2 * KB))

    asyncio.run(run())


def test_many_concurrent_connections_zero_loss(gateway):
    connections, records = 40, 20
    host, port = gateway.address()

    async def one_producer(pid: int) -> int:
        async with await AsyncGatewayClient.connect(host, port) as client:
            producer = await AsyncProducer.open(client, pid, stream_id=0)
            for i in range(records):
                producer.send(f"c{pid}-r{i}".encode())
            await producer.close()  # flushes
            return producer.records_sent

    async def run():
        async with await AsyncGatewayClient.connect(host, port) as admin:
            await admin.create_stream(0, 4)
            sent = await asyncio.gather(
                *(one_producer(pid) for pid in range(connections))
            )
            assert sent == [records] * connections
            consumer = await AsyncConsumer.open(admin, 999, stream_id=0)
            values = [r.value for r in await consumer.drain()]
            assert len(values) == connections * records
            assert len(set(values)) == len(values)

    asyncio.run(run())
    assert gateway.stats.connections_accepted >= connections + 1
    assert gateway.stats.errors_returned == 0
    assert gateway.stats.connections_open == 0
