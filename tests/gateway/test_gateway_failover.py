"""Gateway failover: typed errors across the wire, retrying producer.

The gateway protocol flattens server-side exceptions to strings; the
failover satellite promotes the *known* shapes back to typed exceptions
on the client so the async producer can tell "routing moved, retry"
(``NotLeaderError``, ``RetriableRpcError``) apart from "give up"
(``GatewayError``). The regression at the bottom is the headline: a
pipelined producer keeps its acked records through a real node kill.
"""

import asyncio
import time

import pytest

from repro.common.errors import NotLeaderError, RetriableRpcError
from repro.common.units import KB, MB
from repro.failover import FailoverPlane
from repro.failover.chaos import kill_node
from repro.gateway import AsyncConsumer, AsyncGatewayClient, AsyncProducer, GatewayServer
from repro.gateway.protocol import GatewayError, decode_error, encode_error
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kera import KeraConfig, ThreadedKeraCluster


# -- decode_error: the wire -> typed exception promotion ---------------------------


def _roundtrip(exc):
    # encode_error returns the frame's buffer parts; the reader hands
    # decode_error the reassembled contiguous payload.
    payload = b"".join(bytes(part) for part in encode_error(7, exc))
    rid, decoded = decode_error(payload)
    assert rid == 7
    return decoded


def test_decode_not_leader_with_known_leader():
    decoded = _roundtrip(NotLeaderError(3, 5, 2))
    assert isinstance(decoded, NotLeaderError)
    assert (decoded.stream_id, decoded.streamlet_id) == (3, 5)
    assert decoded.leader == 2


def test_decode_not_leader_without_leader():
    decoded = _roundtrip(NotLeaderError(3, 5, None))
    assert isinstance(decoded, NotLeaderError)
    assert decoded.leader is None


def test_decode_replication_error_is_retryable():
    from repro.common.errors import ReplicationError

    decoded = _roundtrip(ReplicationError("shipper for broker 1 failed"))
    assert isinstance(decoded, RetriableRpcError)
    assert "shipper for broker 1 failed" in str(decoded)


def test_decode_retriable_rpc_error_stays_retryable():
    decoded = _roundtrip(RetriableRpcError("transient"))
    assert isinstance(decoded, RetriableRpcError)


def test_decode_unknown_error_is_terminal_gateway_error():
    decoded = _roundtrip(ValueError("who knows"))
    assert isinstance(decoded, GatewayError)
    assert not isinstance(decoded, (NotLeaderError, RetriableRpcError))
    assert "ValueError" in str(decoded)


def test_decode_refuses_crafted_leader_spoofing():
    # Only the exact typed message shape is promoted; a look-alike with
    # trailing garbage stays a terminal GatewayError.
    crafted = GatewayError(
        "NotLeaderError: not leader for stream 1 streamlet 2 "
        "(leader is broker 3); rm -rf"
    )
    decoded = _roundtrip(crafted)
    assert isinstance(decoded, GatewayError)
    assert not isinstance(decoded, NotLeaderError)


# -- the regression: pipelined producer survives one broker kill -------------------


def _config():
    return KeraConfig(
        num_brokers=4,
        storage=StorageConfig(segment_size=256 * KB, q_active_groups=2),
        replication=ReplicationConfig(
            replication_factor=3,
            vlogs_per_broker=2,
            pipeline_depth=4,
            ship_window_bytes=2 * MB,
        ),
        chunk_size=1 * KB,
    )


def test_pipelined_producer_survives_broker_kill_zero_acked_loss():
    """A pipelined gateway producer (max_inflight > 1, retries on) keeps
    publishing through a node kill + failover: whatever ``flush`` said
    was acked is consumable afterwards, exactly once."""
    with ThreadedKeraCluster(_config()) as cluster:
        with GatewayServer(cluster) as server:
            with FailoverPlane(cluster, heartbeat_interval=0.05) as plane:
                host, port = server.address()
                acked_values: list[bytes] = []

                async def run():
                    async with await AsyncGatewayClient.connect(host, port) as client:
                        await client.create_stream(0, 4)
                        producer = await AsyncProducer.open(
                            client,
                            1,
                            stream_id=0,
                            max_inflight=4,
                            linger_ms=2.0,
                            retries=8,
                            retry_backoff_s=0.05,
                        )
                        # Healthy warmup: these are acked pre-kill.
                        for i in range(60):
                            producer.send(f"warm-{i}".encode())
                        await producer.flush()
                        acked_values.extend(
                            f"warm-{i}".encode() for i in range(60)
                        )

                        # Two-phase kill so the client *observes* the
                        # failure window: recovery on this cluster takes
                        # ~15ms, so an atomic kill+detect would often
                        # finish before the next flush and the retry
                        # path would go unexercised. Fence first (the
                        # broker is dead but undetected), flush into the
                        # wall, then report the death mid-retry.
                        victim = cluster.leader_of(0, 0)
                        cluster.fence_node(victim)
                        # Pin the live batch to the victim's streamlet:
                        # sticky partitioning would otherwise happily
                        # route everything to the survivors and the
                        # retry path would go unexercised.
                        values = [f"live-{i}".encode() for i in range(40)]
                        for v in values:
                            producer.send(v, streamlet_id=0)
                        flush_task = asyncio.ensure_future(producer.flush())
                        await asyncio.sleep(0.05)  # first attempt fails
                        plane.detector.report_dead(
                            victim, "test kill", source="report"
                        )
                        await flush_task  # retries carry it through
                        acked_values.extend(values)
                        assert producer.retries_used > 0, (
                            "flush never hit the dead broker: "
                            "test proved nothing"
                        )
                        assert plane.wait_recovered(victim, timeout=20.0)

                        consumer = await AsyncConsumer.open(
                            client, 999, stream_id=0
                        )
                        fetched = [r.value for r in await consumer.drain()]
                        missing = set(acked_values) - set(fetched)
                        assert not missing, (
                            f"acked records lost: {sorted(missing)[:10]}"
                        )
                        counts: dict[bytes, int] = {}
                        for v in fetched:
                            counts[v] = counts.get(v, 0) + 1
                        dupes = [v for v, n in counts.items() if n > 1]
                        assert not dupes, f"duplicated: {sorted(dupes)[:10]}"

                asyncio.run(run())
