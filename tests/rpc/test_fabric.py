"""RPC fabric tests: routing, costs, worker release, nested RPCs."""

import pytest

from repro.common.errors import RpcError
from repro.common.units import USEC
from repro.rpc.fabric import RpcFabric, Service, RELEASE_WORKER
from repro.sim.costmodel import CostModel
from repro.sim.engine import Environment


class EchoService(Service):
    def __init__(self, env, work_time=0.0):
        self.env = env
        self.work_time = work_time
        self.handled = 0

    def handle(self, method, request):
        if self.work_time:
            yield self.env.timeout(self.work_time)
        self.handled += 1
        return (method, request), 64


def make_fabric(num_nodes=2, **overrides):
    env = Environment()
    cost = CostModel().scaled(**overrides)
    return env, RpcFabric(env, num_nodes, cost)


def test_basic_call_roundtrip():
    env, fabric = make_fabric()
    echo = EchoService(env)
    fabric.register(1, "echo", echo)
    rpc = fabric.call(0, 1, "echo", "ping", {"x": 1}, request_bytes=100)
    assert env.run(rpc) == ("ping", {"x": 1})
    assert echo.handled == 1
    assert env.now > 0


def test_call_time_accounts_for_all_stages():
    env, fabric = make_fabric(
        link_bandwidth=1e9,
        net_latency=10 * USEC,
        dispatch_cost=5 * USEC,
        rpc_overhead_bytes=0,
    )
    fabric.register(1, "echo", EchoService(env, work_time=100 * USEC))
    rpc = fabric.call(0, 1, "echo", "m", None, request_bytes=100_000)
    env.run(rpc)
    # send dispatch 5 + tx 100 + lat 10 + rx 100 + recv dispatch 5
    # + work 100 + reply dispatch 5 + tx 0.064 + lat 10 + rx 0.064 + dispatch 5
    expected = (5 + 100 + 10 + 100 + 5 + 100 + 5 + 0.064 + 10 + 0.064 + 5) * USEC
    assert env.now == pytest.approx(expected, rel=1e-6)


def test_unknown_service_raises():
    env, fabric = make_fabric()
    rpc = fabric.call(0, 1, "missing", "m", None, 10)
    with pytest.raises(RpcError):
        env.run(rpc)


def test_double_registration_rejected():
    env, fabric = make_fabric()
    fabric.register(1, "echo", EchoService(env))
    with pytest.raises(RpcError):
        fabric.register(1, "echo", EchoService(env))


def test_worker_pool_limits_concurrency():
    env, fabric = make_fabric(cores_per_node=3, dispatch_cores=1)  # 2 workers
    svc = EchoService(env, work_time=1.0)
    fabric.register(1, "echo", svc)
    rpcs = [fabric.call(0, 1, "echo", "m", i, 10) for i in range(4)]
    for rpc in rpcs:
        env.run(rpc)
    # 4 requests over 2 workers at 1 s each: the last finishes after >= 2 s.
    assert env.now >= 2.0
    assert svc.handled == 4


def test_release_worker_frees_capacity():
    env, fabric = make_fabric(cores_per_node=2, dispatch_cores=1)  # 1 worker

    class ParkingService(Service):
        def __init__(self, env):
            self.env = env
            self.order = []

        def handle(self, method, request):
            self.order.append(("enter", request, self.env.now))
            yield RELEASE_WORKER
            yield self.env.timeout(1.0)  # parked without a worker
            self.order.append(("exit", request, self.env.now))
            return request, 8

    svc = ParkingService(env)
    fabric.register(1, "park", svc)
    rpcs = [fabric.call(0, 1, "park", "m", i, 10) for i in range(3)]
    for rpc in rpcs:
        env.run(rpc)
    # All three must enter well before 1 s has elapsed per request: the
    # single worker is released during the park.
    enters = [t for kind, _, t in svc.order if kind == "enter"]
    assert max(enters) < 1.0


def test_nested_rpc_from_handler():
    env, fabric = make_fabric(num_nodes=3)

    class BackupService(Service):
        def __init__(self, env):
            self.env = env

        def handle(self, method, request):
            yield self.env.timeout(10 * USEC)
            return "backed-up", 16

    class BrokerService(Service):
        def __init__(self, env, fabric):
            self.env = env
            self.fabric = fabric

        def handle(self, method, request):
            ack = yield self.fabric.call(1, 2, "backup", "replicate", request, 500)
            return ("stored", ack), 32

    fabric.register(2, "backup", BackupService(env))
    fabric.register(1, "broker", BrokerService(env, fabric))
    rpc = fabric.call(0, 1, "broker", "produce", b"data", 1000)
    assert env.run(rpc) == ("stored", "backed-up")


def test_handler_exception_propagates():
    env, fabric = make_fabric()

    class Exploding(Service):
        def handle(self, method, request):
            raise ValueError("kaput")
            yield  # pragma: no cover

    fabric.register(1, "boom", Exploding())
    rpc = fabric.call(0, 1, "boom", "m", None, 10)
    with pytest.raises(ValueError, match="kaput"):
        env.run(rpc)


def test_stats_accounting():
    env, fabric = make_fabric()
    fabric.register(1, "echo", EchoService(env))
    for _ in range(3):
        env.run(fabric.call(0, 1, "echo", "ping", None, 200))
    assert fabric.stats.calls[("echo", "ping")] == 3
    assert fabric.stats.request_bytes[("echo", "ping")] == 600
    assert fabric.stats.total_calls() == 3
    assert fabric.stats.total_calls("echo") == 3
    assert fabric.stats.total_calls("other") == 0
