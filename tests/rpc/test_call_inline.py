"""call_inline: the process-free RPC path used by client loops."""

import pytest

from repro.rpc.fabric import RpcFabric, Service
from repro.sim.costmodel import CostModel
from repro.sim.engine import Environment


class Doubler(Service):
    def __init__(self, env):
        self.env = env

    def handle(self, method, request):
        yield self.env.timeout(1e-6)
        return request * 2, 8


def make():
    env = Environment()
    fabric = RpcFabric(env, 2, CostModel())
    fabric.register(1, "svc", Doubler(env))
    return env, fabric


def test_inline_returns_response():
    env, fabric = make()

    def caller(env):
        result = yield from fabric.call_inline(0, 1, "svc", "m", 21, 100)
        return result

    assert env.run(env.process(caller(env))) == 42


def test_inline_and_process_paths_agree_on_timing():
    env1, fabric1 = make()

    def inline_caller(env):
        yield from fabric1.call_inline(0, 1, "svc", "m", 1, 100)
        return env.now

    t_inline = env1.run(env1.process(inline_caller(env1)))

    env2, fabric2 = make()

    def process_caller(env):
        yield fabric2.call(0, 1, "svc", "m", 1, 100)
        return env.now

    t_process = env2.run(env2.process(process_caller(env2)))
    assert t_inline == pytest.approx(t_process)


def test_inline_propagates_handler_errors():
    env = Environment()
    fabric = RpcFabric(env, 2, CostModel())

    class Boom(Service):
        def handle(self, method, request):
            raise RuntimeError("inline boom")
            yield  # pragma: no cover

    fabric.register(1, "svc", Boom())

    def caller(env):
        yield from fabric.call_inline(0, 1, "svc", "m", None, 10)

    with pytest.raises(RuntimeError, match="inline boom"):
        env.run(env.process(caller(env)))


def test_inline_records_stats():
    env, fabric = make()

    def caller(env):
        yield from fabric.call_inline(0, 1, "svc", "m", 1, 123)

    env.run(env.process(caller(env)))
    assert fabric.stats.calls[("svc", "m")] == 1
    assert fabric.stats.request_bytes[("svc", "m")] == 123
