"""Failover plane on the threaded driver: fence, recover, re-route.

The threaded driver has no worker processes to SIGKILL, so node death is
injected by fencing + an explicit detector verdict (exactly what
``chaos.kill_node`` does there); everything downstream — deferred
routing, parallel lanes, replay-through-produce, typed refusals — is the
same machinery the process/socket chaos tests exercise under a real
``SIGKILL``.
"""

import threading

import pytest

from repro.common.errors import NotLeaderError, RpcError
from repro.common.units import KB
from repro.failover import FailoverPlane
from repro.failover.chaos import kill_node, run_chaos
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kera import KeraConfig, ThreadedKeraCluster
from repro.wire.chunk import ChunkBuilder
from repro.wire.record import Record, encode_records


def _config(num_brokers=4):
    return KeraConfig(
        num_brokers=num_brokers,
        storage=StorageConfig(segment_size=256 * KB, q_active_groups=2),
        replication=ReplicationConfig(replication_factor=3, vlogs_per_broker=2),
        chunk_size=4 * KB,
    )


def _chunk(stream_id, streamlet_id, producer_id, seq, text):
    builder = ChunkBuilder(
        256,
        stream_id=stream_id,
        streamlet_id=streamlet_id,
        producer_id=producer_id,
    )
    assert builder.try_append_encoded(
        encode_records([Record(value=text.encode())]), 1
    )
    return builder.build(seq)


def test_failover_under_load_zero_acked_loss():
    with ThreadedKeraCluster(_config()) as cluster:
        with FailoverPlane(
            cluster, heartbeat_interval=0.05, lease_timeout=1.0
        ) as plane:
            result = run_chaos(
                cluster,
                plane,
                producers=8,
                warmup_seconds=0.2,
                post_seconds=0.2,
            )
        report = result.report
        assert report is not None, "recovery never completed"
        assert report.error is None, f"recovery failed: {report.error!r}"
        assert result.acked > 0
        assert result.lost == [], f"acked records lost: {result.lost[:10]}"
        assert result.duplicated == []
        assert result.producer_errors == []
        # Streamlets the dead broker led are all re-routed to survivors.
        for (stream, sid), target in report.reassignments.items():
            assert target != result.victim
            assert cluster.leader_of(stream, sid) == target
        # Lane-overlap timing: recovery demonstrably ran in parallel.
        assert report.parallelism > 1
        assert report.recovery_seconds < 10.0


def test_inflight_produce_to_dead_broker_fails_typed_never_hangs():
    with ThreadedKeraCluster(_config()) as cluster:
        with FailoverPlane(cluster, heartbeat_interval=0.05) as plane:
            cluster.create_stream(3, 4)
            victim = cluster.leader_of(3, 0)
            # Seed a little data so recovery has something to replay.
            cluster.produce([_chunk(3, 0, 50, 0, "seed")], producer_id=50)

            errors = []
            done = threading.Event()

            def on_complete(response, error):
                errors.append(error)
                done.set()

            # Fence first so the submit lands on a dead broker, then let
            # the plane recover it.
            cluster.fence_node(victim)
            cluster.submit_produce(
                victim, [_chunk(3, 0, 51, 0, "orphan")], 51, on_complete
            )
            assert done.wait(5.0), "produce against dead broker hung"
            assert isinstance(errors[0], NotLeaderError)
            # While routing is deferred the leader is still unknown.
            plane.detector.report_dead(victim, "test kill", source="report")
            report = plane.wait_recovered(victim, timeout=15.0)
            assert report is not None and report.error is None
            assert cluster.leader_of(3, 0) != victim


def test_fenced_broker_refuses_with_new_leader_after_commit():
    with ThreadedKeraCluster(_config()) as cluster:
        with FailoverPlane(cluster, heartbeat_interval=0.05) as plane:
            cluster.create_stream(4, 4)
            victim = cluster.leader_of(4, 0)
            cluster.produce([_chunk(4, 0, 60, 0, "pre")], producer_id=60)
            kill_node(cluster, victim)
            report = plane.wait_recovered(victim, timeout=15.0)
            assert report is not None and report.error is None
            new_leader = cluster.leader_of(4, 0)
            # A stale client that still routes to the fenced broker gets
            # the committed leader in the typed refusal.
            from repro.kera.messages import ProduceRequest

            request = ProduceRequest(
                request_id=cluster._next_request_id(),
                producer_id=60,
                chunks=[_chunk(4, 0, 60, 1, "stale-route")],
            )
            with pytest.raises(NotLeaderError) as excinfo:
                cluster.transport.call(
                    -1, victim, "broker", "produce", request,
                    request.payload_bytes(),
                )
            assert excinfo.value.leader == new_leader
            # The fenced broker's ping also fails typed (lease path).
            with pytest.raises(RpcError):
                cluster.transport.call(-1, victim, "broker", "ping", None, 0)


def test_retry_after_recovery_is_deduplicated():
    """An acked-but-unconfirmed chunk retried after failover must be
    absorbed by the broker's exactly-once check, not duplicated."""
    with ThreadedKeraCluster(_config()) as cluster:
        with FailoverPlane(cluster, heartbeat_interval=0.05) as plane:
            cluster.create_stream(5, 2)
            victim = cluster.leader_of(5, 0)
            chunk = _chunk(5, 0, 70, 0, "exactly-once")
            cluster.produce([chunk], producer_id=70)
            kill_node(cluster, victim)
            report = plane.wait_recovered(victim, timeout=15.0)
            assert report is not None and report.error is None
            assert report.chunks_replayed >= 1
            # The client never saw the ack land (say) — it retries the
            # same chunk against the new leader.
            (response,) = cluster.produce([chunk], producer_id=70)
            assert [a.duplicate for a in response.assignments] == [True]


def test_recovery_report_counts_match_replay():
    with ThreadedKeraCluster(_config()) as cluster:
        with FailoverPlane(cluster, heartbeat_interval=0.05) as plane:
            cluster.create_stream(6, 4)
            victim = cluster.leader_of(6, 0)
            sids = [
                sid for sid in range(4) if cluster.leader_of(6, sid) == victim
            ]
            n = 0
            for sid in sids:
                for seq in range(5):
                    cluster.produce(
                        [_chunk(6, sid, 80 + sid, seq, f"r{sid}-{seq}")],
                        producer_id=80 + sid,
                    )
                    n += 1
            kill_node(cluster, victim)
            report = plane.wait_recovered(victim, timeout=15.0)
            assert report is not None and report.error is None
            assert report.chunks_replayed == n
            assert report.records_replayed == n
            assert report.vsegs_merged >= 1
            read_lanes = [ln for ln in report.lanes if ln.phase == "read"]
            replay_lanes = [ln for ln in report.lanes if ln.phase == "replay"]
            assert read_lanes and replay_lanes
            assert sum(ln.chunks for ln in replay_lanes) == n
            for lane in report.lanes:
                assert lane.finished >= lane.started > 0.0


def test_replicate_error_path_claims_node_and_recovers():
    """Detection driven purely by a survivor's replicate failure: no
    explicit report, no heartbeat expiry needed."""
    with ThreadedKeraCluster(_config()) as cluster:
        with FailoverPlane(
            cluster, heartbeat_interval=5.0, lease_timeout=60.0
        ) as plane:
            cluster.create_stream(8, 4)
            victim = cluster.leader_of(8, 0)
            survivor = next(
                b for b in cluster.live_broker_ids if b != victim
            )
            s_sid = next(
                sid for sid in range(4) if cluster.leader_of(8, sid) == survivor
            )
            # Mark the victim failed without telling the plane: the next
            # replicate from a survivor's shipper hits the refusal and
            # reports it (the shipper repairs instead of dying).
            with cluster._failed_lock:
                cluster._failed.add(victim)
            cluster.produce(
                [_chunk(8, s_sid, 90, 0, "trigger")], producer_id=90
            )
            report = plane.wait_recovered(victim, timeout=15.0)
            assert report is not None and report.error is None
            assert report.verdict.source == "replicate-error"
            assert cluster.shipper(survivor).error is None
            # The survivor's plane-repaired copies keep serving produce.
            cluster.produce(
                [_chunk(8, s_sid, 90, 1, "after")], producer_id=90
            )


def test_stop_is_idempotent_and_cluster_survives_plane_shutdown():
    with ThreadedKeraCluster(_config()) as cluster:
        plane = FailoverPlane(cluster, heartbeat_interval=0.05)
        plane.start()
        plane.stop()
        plane.stop()
        cluster.create_stream(9, 2)
        cluster.produce([_chunk(9, 0, 95, 0, "alive")], producer_id=95)
