"""Failover edge cases: mid-migration kills, idle victims, double kills.

The invariant under test everywhere: an acked record is never silently
lost and never silently duplicated — when recovery is impossible the
failure surfaces as a *typed* error, and when data already lives in two
places (a half-finished migration) the exactly-once dedup absorbs the
overlap.
"""

import pytest

from repro.common.errors import NotLeaderError, ReplicationError, RpcError
from repro.common.units import KB
from repro.failover import FailoverPlane
from repro.failover.chaos import _fetch_all_values, kill_node
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kera import KeraConfig, ThreadedKeraCluster
from repro.kera.messages import ProduceRequest
from repro.wire.chunk import ChunkBuilder
from repro.wire.record import Record, encode_records


def _config():
    return KeraConfig(
        num_brokers=4,
        storage=StorageConfig(segment_size=256 * KB, q_active_groups=2),
        replication=ReplicationConfig(replication_factor=3, vlogs_per_broker=2),
        chunk_size=4 * KB,
    )


def _chunk(stream_id, streamlet_id, producer_id, seq, text):
    builder = ChunkBuilder(
        256,
        stream_id=stream_id,
        streamlet_id=streamlet_id,
        producer_id=producer_id,
    )
    assert builder.try_append_encoded(
        encode_records([Record(value=text.encode())]), 1
    )
    return builder.build(seq)


def test_kill_during_migration_stays_exactly_once():
    """The worst interleave: a streamlet's data has been copied to a
    migration target but leadership has NOT flipped when the source dies.
    Recovery replays the backups into the new leader; wherever that
    replay lands, the consumer must see every acked record exactly once.
    """
    with ThreadedKeraCluster(_config()) as cluster:
        with FailoverPlane(cluster, heartbeat_interval=0.05) as plane:
            cluster.create_stream(10, 4)
            victim = cluster.leader_of(10, 0)
            sid = 0
            n = 6
            for seq in range(n):
                cluster.produce(
                    [_chunk(10, sid, 77, seq, f"m-{seq}")], producer_id=77
                )

            # Migration, interrupted: register + copy done, flip not.
            target = next(
                b for b in cluster.live_broker_ids if b != victim
            )
            cluster.brokers[target].ensure_streamlet(10, sid)
            source_streamlet = (
                cluster.brokers[victim].registry.get(10).streamlet(sid)
            )
            copied = [s.to_wire_chunk() for s in source_streamlet.chunks()]
            assert len(copied) == n
            request = ProduceRequest(
                request_id=cluster._next_request_id(),
                producer_id=77,
                chunks=copied,
            )
            cluster.transport.call(
                -1, target, "broker", "produce", request, request.payload_bytes()
            )
            assert cluster.leader_of(10, sid) == victim  # flip never happened

            kill_node(cluster, victim)
            report = plane.wait_recovered(victim, timeout=15.0)
            assert report is not None and report.error is None
            new_leader = cluster.leader_of(10, sid)
            assert new_leader != victim
            if new_leader == target:
                # Replay landed on the migrated copy: dedup absorbed it.
                assert report.duplicates_dropped >= n

            values = _fetch_all_values(cluster, 10, 4)
            mine = [v for v in values if v.startswith(b"m-")]
            assert sorted(mine) == sorted(
                f"m-{seq}".encode() for seq in range(n)
            ), "migrated streamlet not exactly-once after failover"


def test_kill_of_broker_leading_nothing_is_fence_only():
    """A node that leads zero streamlets still dies cleanly: the plan is
    empty, no lanes run, and fencing IS the recovery."""
    with ThreadedKeraCluster(_config()) as cluster:
        with FailoverPlane(cluster, heartbeat_interval=0.05) as plane:
            cluster.create_stream(11, 3)  # 4 brokers, 3 streamlets
            leaders = {cluster.leader_of(11, sid) for sid in range(3)}
            victim = next(
                b for b in cluster.live_broker_ids if b not in leaders
            )
            busy_sid = 0
            cluster.produce(
                [_chunk(11, busy_sid, 88, 0, "pre")], producer_id=88
            )

            kill_node(cluster, victim)
            report = plane.wait_recovered(victim, timeout=15.0)
            assert report is not None and report.error is None
            assert report.reassignments == {}
            assert report.chunks_replayed == 0
            assert report.lanes == []
            # The cluster keeps serving with one fewer backup target.
            cluster.produce(
                [_chunk(11, busy_sid, 88, 1, "post")], producer_id=88
            )
            values = _fetch_all_values(cluster, 11, 3)
            assert b"pre" in values and b"post" in values


def test_double_kill_exhausting_replicas_fails_typed_never_silent():
    """R=3 on four nodes survives exactly one loss. The second kill
    cannot be recovered (not enough backup targets left) — the plane
    must say so with a typed error in the report, and producers must get
    typed refusals, not hangs or silent loss."""
    with ThreadedKeraCluster(_config()) as cluster:
        with FailoverPlane(cluster, heartbeat_interval=0.05) as plane:
            cluster.create_stream(12, 4)
            for sid in range(4):
                cluster.produce(
                    [_chunk(12, sid, 90 + sid, 0, f"d-{sid}")],
                    producer_id=90 + sid,
                )

            first = cluster.leader_of(12, 0)
            kill_node(cluster, first)
            report1 = plane.wait_recovered(first, timeout=15.0)
            assert report1 is not None and report1.error is None

            second = next(
                b for b in cluster.live_broker_ids if b != first
            )
            kill_node(cluster, second)
            report2 = plane.wait_recovered(second, timeout=15.0)
            assert report2 is not None
            assert isinstance(report2.error, ReplicationError)
            assert "too small" in str(report2.error)

            # Producing to anything the dead node led fails typed.
            dead_led = next(
                (12, sid)
                for sid in range(4)
                if cluster.leader_of(12, sid) == second
            )
            with pytest.raises((NotLeaderError, ReplicationError, RpcError)):
                cluster.produce(
                    [_chunk(12, dead_led[1], 99, 0, "refused")],
                    producer_id=99,
                )
