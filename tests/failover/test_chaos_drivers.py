"""Chaos on the live drivers: SIGKILL a node's worker under real load.

The ISSUE acceptance bar, verbatim: on the process AND socket drivers a
``SIGKILL`` of one broker's worker under a >=8-producer live workload
must lose zero acked records, and recovery must demonstrably run in
parallel (lane-overlap evidence, ``parallelism > 1``).

These are real multi-process tests — the kill is ``os.kill(pid,
SIGKILL)`` on the victim's backup worker, detection flows through the
transport's own liveness channel (reaped child / connection reset), and
every surviving producer keeps publishing throughout recovery.
"""

import pytest

from repro.common.units import KB
from repro.failover import FailoverPlane
from repro.failover.chaos import run_chaos
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kera import KeraConfig
from repro.kera.process import ProcessKeraCluster
from repro.kera.socket_cluster import SocketKeraCluster


def _config():
    return KeraConfig(
        num_brokers=4,
        storage=StorageConfig(segment_size=256 * KB, q_active_groups=2),
        replication=ReplicationConfig(
            replication_factor=3, vlogs_per_broker=2, pipeline_depth=4
        ),
        chunk_size=4 * KB,
    )


@pytest.mark.parametrize(
    "cluster_cls",
    [ProcessKeraCluster, SocketKeraCluster],
    ids=["process", "socket"],
)
def test_sigkill_under_load_zero_acked_loss(cluster_cls):
    with cluster_cls(_config()) as cluster:
        with FailoverPlane(
            cluster, heartbeat_interval=0.05, lease_timeout=1.5
        ) as plane:
            result = run_chaos(
                cluster,
                plane,
                producers=8,
                warmup_seconds=0.3,
                post_seconds=0.3,
            )
        # A real kill: the victim's worker process took a SIGKILL, and
        # detection came from the transport noticing, not a test hint.
        assert result.kill_mode == "sigkill"
        report = result.report
        assert report is not None, "recovery never completed"
        assert report.error is None, f"recovery failed: {report.error!r}"
        assert report.verdict.source in {
            "process-exit",
            "socket-eof",
            "socket-error",
            "replicate-error",
            "heartbeat",
        }
        assert result.acked > 0
        assert result.lost == [], f"acked records lost: {result.lost[:10]}"
        assert result.duplicated == []
        assert result.producer_errors == []
        assert result.zero_loss
        # Parallel fast recovery: overlapping lane intervals.
        assert report.parallelism > 1, [
            (lane.phase, lane.started, lane.finished) for lane in report.lanes
        ]
        assert report.recovery_seconds < 15.0
        # Survivors own every streamlet the dead node led.
        for (stream, sid), target in report.reassignments.items():
            assert target != result.victim
            assert cluster.leader_of(stream, sid) == target
