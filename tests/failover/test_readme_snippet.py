"""The README chaos quick-start must actually run, verbatim.

The snippet is extracted from README.md between the
``readme-chaos-snippet`` markers and executed as-is — if the quick-start
drifts from the real API, this fails before a reader does.
"""

import re
from pathlib import Path

README = Path(__file__).resolve().parents[2] / "README.md"


def test_chaos_quickstart_runs_verbatim(capsys):
    text = README.read_text()
    match = re.search(
        r"<!-- readme-chaos-snippet-start -->\n```python\n(.*?)```\n"
        r"<!-- readme-chaos-snippet-end -->",
        text,
        re.DOTALL,
    )
    assert match, "README chaos snippet markers missing"
    snippet = match.group(1)
    exec(compile(snippet, str(README), "exec"), {"__name__": "__readme__"})
    out = capsys.readouterr().out
    assert "recovered in" in out
    assert "parallel lanes" in out
