"""Failure detector: verdict delivery, leases, transport liveness.

Most of these run against a stub cluster so the lease machinery is
exercised without real transports; the heartbeat-path test at the end
uses a real threaded cluster with a fenced broker (pings refused, no
transport-level death for the detector to lean on).
"""

import threading
import time

from repro.common.errors import RpcError
from repro.failover import BrokerDown, FailureDetector
from repro.kera import KeraConfig, ThreadedKeraCluster


class _StubTransport:
    """Acks every ping unless a node is in ``refuse``."""

    def __init__(self):
        self.liveness_listener = None
        self.refuse = set()

    def call_async(self, src, dst, service, method, request, nbytes, *, on_done):
        assert method == "ping"
        if dst in self.refuse:
            on_done(None, RpcError(f"broker {dst} is fenced"))
        else:
            on_done(dst, None)


class _StubCluster:
    def __init__(self, nodes=(0, 1, 2)):
        self.transport = _StubTransport()
        self.live_broker_ids = list(nodes)


def test_report_dead_first_verdict_wins():
    detector = FailureDetector(_StubCluster())
    assert detector.report_dead(1, "first", source="report")
    assert not detector.report_dead(1, "second", source="heartbeat")
    assert detector.is_down(1)
    assert not detector.is_down(0)
    (verdict,) = detector.verdicts()
    assert verdict == BrokerDown(node_id=1, reason="first", source="report")


def test_on_down_delivered_exactly_once():
    seen = []
    done = threading.Event()

    def on_down(verdict):
        seen.append(verdict)
        done.set()

    detector = FailureDetector(
        _StubCluster(), heartbeat_interval=0.01, on_down=on_down
    )
    detector.start()
    try:
        detector.report_dead(2, "kill", source="report")
        detector.report_dead(2, "kill again", source="report")
        assert done.wait(5.0)
        time.sleep(0.05)  # a second delivery would land in this window
    finally:
        detector.stop()
    assert [v.node_id for v in seen] == [2]
    assert seen[0].source == "report"


def test_transport_liveness_listener_attaches_and_detaches():
    cluster = _StubCluster()
    detector = FailureDetector(cluster, heartbeat_interval=0.01)
    detector.start()
    try:
        assert cluster.transport.liveness_listener is not None
        # Node-level failure model: any dead worker kills the node.
        cluster.transport.liveness_listener(1, "backup", "process-exit", "reaped")
        assert detector.is_down(1)
        (verdict,) = detector.verdicts()
        assert verdict.source == "process-exit"
    finally:
        detector.stop()
    assert cluster.transport.liveness_listener is None


def test_healthy_pings_keep_leases_alive():
    cluster = _StubCluster()
    detector = FailureDetector(
        cluster, heartbeat_interval=0.01, lease_timeout=0.05
    )
    detector.start()
    try:
        time.sleep(0.3)  # many lease periods: acks must keep renewing
        assert detector.verdicts() == []
    finally:
        detector.stop()


def test_refused_pings_expire_the_lease():
    cluster = _StubCluster()
    cluster.transport.refuse.add(2)
    seen = threading.Event()
    verdicts = []

    def on_down(verdict):
        verdicts.append(verdict)
        seen.set()

    detector = FailureDetector(
        cluster, heartbeat_interval=0.01, lease_timeout=0.05, on_down=on_down
    )
    detector.start()
    try:
        assert seen.wait(5.0)
    finally:
        detector.stop()
    assert verdicts[0].node_id == 2
    assert verdicts[0].source == "heartbeat"
    assert not detector.is_down(0)
    assert not detector.is_down(1)


def test_heartbeat_detects_fenced_broker_on_threaded_cluster():
    """No transport-level death to lean on: the broker service is merely
    wedged (fenced), so only the lease expiry can call it dead."""
    with ThreadedKeraCluster(KeraConfig(num_brokers=3)) as cluster:
        down = threading.Event()
        verdicts = []

        def on_down(verdict):
            verdicts.append(verdict)
            down.set()

        detector = FailureDetector(
            cluster, heartbeat_interval=0.02, lease_timeout=0.2, on_down=on_down
        )
        detector.start()
        try:
            time.sleep(0.1)  # healthy pings first
            assert detector.verdicts() == []
            cluster._broker_services[1].fence()
            assert down.wait(10.0)
        finally:
            detector.stop()
        assert verdicts[0].node_id == 1
        assert verdicts[0].source == "heartbeat"
