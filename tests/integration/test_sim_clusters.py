"""End-to-end simulated cluster runs: both systems, key invariants.

These are short deterministic simulations (tens of milliseconds of
simulated time) checking conservation laws and qualitative behaviours the
paper relies on — not absolute throughput, which belongs to benchmarks.
"""

import pytest

from repro.common.units import KB
from repro.replication.config import PolicyMode, ReplicationConfig
from repro.sim.costmodel import CostModel
from repro.storage.config import StorageConfig
from repro.kafka import KafkaConfig, SimKafkaCluster
from repro.kera import KeraConfig, SimKeraCluster
from repro.simdriver import SimWorkload


def kera_config(r=3, vlogs=2, q=1, policy=PolicyMode.SHARED, chunk_kb=1):
    return KeraConfig(
        num_brokers=4,
        storage=StorageConfig(materialize=False, q_active_groups=q),
        replication=ReplicationConfig(
            replication_factor=r, vlogs_per_broker=vlogs, policy=policy
        ),
        chunk_size=chunk_kb * KB,
    )


def small_workload(streams=16, producers=2, consumers=2, duration=0.05):
    return SimWorkload.many_streams(
        streams, num_producers=producers, num_consumers=consumers,
        duration=duration, warmup=duration / 5,
    )


def run_kera(config=None, workload=None, cost=None):
    return SimKeraCluster(
        config or kera_config(), workload or small_workload(), cost or CostModel()
    ).run()


class TestKeraSim:
    def test_data_flows_and_is_conserved(self):
        cluster = SimKeraCluster(kera_config(), small_workload())
        result = cluster.run()
        assert result.records_acked > 0
        assert result.records_consumed > 0
        # Ingested records on brokers match what producers got acked plus
        # whatever is still in flight (never less).
        ingested = sum(c.records_ingested for c in cluster.broker_cores.values())
        assert ingested >= result.records_acked
        # Backups hold R-1 copies of every shipped chunk, modulo batches
        # still in flight when the simulation horizon cut.
        shipped = sum(
            c.manager.total_chunks_shipped() for c in cluster.broker_cores.values()
        )
        pending = sum(c.pending_chunks() for c in cluster.broker_cores.values())
        received = sum(
            b.store.chunks_received for b in cluster.backup_cores.values()
        )
        assert received <= 2 * shipped  # R=3 -> 2 backup copies
        assert received >= 2 * (shipped - pending)

    def test_deterministic_runs(self):
        r1 = run_kera()
        r2 = run_kera()
        assert r1.records_acked == r2.records_acked
        assert r1.producer_rate == r2.producer_rate
        assert r1.rpc_calls == r2.rpc_calls

    def test_r1_skips_replication(self):
        result = run_kera(config=kera_config(r=1))
        assert result.replication_rpcs == 0
        assert result.records_acked > 0

    def test_replication_factor_costs_throughput(self):
        r1 = run_kera(config=kera_config(r=1))
        r3 = run_kera(config=kera_config(r=3))
        assert r3.producer_rate < r1.producer_rate

    def test_consolidation_batches_multiple_chunks(self):
        # Many partitions over few virtual logs -> batches well above 1.
        result = run_kera(
            config=kera_config(vlogs=1),
            workload=small_workload(streams=64),
        )
        assert result.avg_replication_batch_chunks > 2.0

    def test_per_subpartition_policy_unbatched(self):
        result = run_kera(
            config=kera_config(policy=PolicyMode.PER_SUBPARTITION),
            workload=small_workload(streams=16),
        )
        # One virtual log per sub-partition: close to one chunk per RPC.
        assert result.avg_replication_batch_chunks < 3.0

    def test_consumers_never_outrun_producers(self):
        result = run_kera()
        assert result.records_consumed <= result.records_acked * 1.05 + 1000

    def test_sim_requires_metadata_storage(self):
        from repro.common.errors import ConfigError

        config = KeraConfig(
            num_brokers=4,
            storage=StorageConfig(materialize=True),
            replication=ReplicationConfig(replication_factor=2),
        )
        with pytest.raises(ConfigError):
            SimKeraCluster(config, small_workload())


class TestKafkaSim:
    def kafka_config(self, r=3, chunk_kb=1):
        return KafkaConfig(num_brokers=4, replication_factor=r, chunk_size=chunk_kb * KB)

    def test_data_flows(self):
        cluster = SimKafkaCluster(self.kafka_config(), small_workload())
        result = cluster.run()
        assert result.records_acked > 0
        assert result.records_consumed > 0
        assert result.replication_rpcs > 0
        # Followers hold both copies of everything the HW covers.
        fetched = sum(
            c.replica_batches_fetched for c in cluster.broker_cores.values()
        )
        assert fetched > 0

    def test_deterministic(self):
        a = SimKafkaCluster(self.kafka_config(), small_workload()).run()
        b = SimKafkaCluster(self.kafka_config(), small_workload()).run()
        assert a.records_acked == b.records_acked
        assert a.rpc_calls == b.rpc_calls

    def test_r1_no_followers(self):
        result = SimKafkaCluster(self.kafka_config(r=1), small_workload()).run()
        assert result.replication_rpcs == 0
        assert result.records_acked > 0

    def test_acks_all_costs_throughput(self):
        r1 = SimKafkaCluster(self.kafka_config(r=1), small_workload()).run()
        r3 = SimKafkaCluster(self.kafka_config(r=3), small_workload()).run()
        assert r3.producer_rate < r1.producer_rate


class TestPaperHeadline:
    def test_kera_beats_kafka_at_r3_many_streams(self):
        """The paper's core claim: with hundreds of streams and R=3,
        virtual-log KerA out-ingests per-partition-log Kafka."""
        workload = small_workload(streams=64, producers=4, consumers=4, duration=0.08)
        kera = SimKeraCluster(kera_config(r=3, vlogs=4), workload).run()
        kafka = SimKafkaCluster(
            KafkaConfig(num_brokers=4, replication_factor=3, chunk_size=1 * KB),
            workload,
        ).run()
        assert kera.producer_rate > kafka.producer_rate
        # And it does so with far fewer replication RPCs per chunk.
        assert kera.avg_replication_batch_chunks > 1.0
