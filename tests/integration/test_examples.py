"""Every example script must keep running end to end.

The slow simulation examples are patched down to tiny workloads — these
tests pin correctness and API stability, not performance.
"""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


@pytest.fixture(autouse=True)
def _examples_on_path(monkeypatch):
    monkeypatch.syspath_prepend(str(EXAMPLES))
    yield
    for name in list(sys.modules):
        if name in {
            "quickstart",
            "crash_recovery",
            "kafka_vs_kera",
            "replication_capacity",
            "unified_storage",
        }:
            del sys.modules[name]


def test_quickstart(capsys):
    module = importlib.import_module("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "quickstart OK" in out


def test_crash_recovery(capsys):
    module = importlib.import_module("crash_recovery")
    module.main()
    out = capsys.readouterr().out
    assert "recovery OK" in out


def test_unified_storage(capsys):
    module = importlib.import_module("unified_storage")
    module.main()
    out = capsys.readouterr().out
    assert "unified storage OK" in out


def test_kafka_vs_kera_small(capsys):
    module = importlib.import_module("kafka_vs_kera")
    module.STREAMS = 16
    module.DURATION = 0.03
    module.main()
    out = capsys.readouterr().out
    assert "replication factor 3" in out
    assert "KerA/Kafka at R3" in out


def test_replication_capacity_small(capsys, monkeypatch):
    module = importlib.import_module("replication_capacity")
    module.STREAMS = 32
    module.DURATION = 0.03
    # Trim the sweep for test time.
    original_run = module.run
    monkeypatch.setattr(
        module, "run", lambda vlogs: original_run(vlogs)
    )
    original_main = module.main

    def small_main():
        print(f"{module.STREAMS} streams")
        for vlogs in (1, 4):
            result = module.run(vlogs)
            assert result.producer_rate > 0
        print("optimum: ok")

    monkeypatch.setattr(module, "main", small_main)
    module.main()
    out = capsys.readouterr().out
    assert "optimum" in out
