"""Client retransmission and exactly-once semantics end to end.

``Producers wait for the brokers and backups to acknowledge replicated
data streams and eventually re-transmit data in case of errors`` (paper,
Section II-A). At-least-once delivery from the client plus
(producer id, chunk sequence) de-duplication at the broker yields
exactly-once ingestion.
"""

from repro.common.units import KB
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.wire.chunk import Chunk
from repro.wire.record import Record, encode_records
from repro.kera import InprocKeraCluster, KeraConfig, KeraConsumer


def make_cluster():
    config = KeraConfig(
        num_brokers=4,
        storage=StorageConfig(segment_size=64 * KB),
        replication=ReplicationConfig(replication_factor=3, vlogs_per_broker=2),
        chunk_size=1 * KB,
    )
    cluster = InprocKeraCluster(config)
    cluster.create_stream(0, 4)
    return cluster


def make_chunks(count, producer_id=0, streamlet=0, start_seq=0):
    chunks = []
    for i in range(count):
        payload = encode_records([Record(value=f"c{start_seq + i}-r{j}".encode())
                                  for j in range(3)])
        chunks.append(
            Chunk(
                stream_id=0, streamlet_id=streamlet, producer_id=producer_id,
                chunk_seq=start_seq + i, record_count=3,
                payload_len=len(payload), payload=payload,
            )
        )
    return chunks


def all_values(cluster):
    consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
    return [r.value for r in consumer.drain()]


def test_full_request_retransmission_is_idempotent():
    cluster = make_cluster()
    chunks = make_chunks(5)
    cluster.produce(chunks, producer_id=0)
    # The ack was lost; the client retransmits the identical request.
    responses = cluster.produce(make_chunks(5), producer_id=0)
    assert all(a.duplicate for r in responses for a in r.assignments)
    values = all_values(cluster)
    assert len(values) == 15  # 5 chunks x 3 records, once


def test_partial_overlap_retransmission():
    cluster = make_cluster()
    cluster.produce(make_chunks(3), producer_id=0)
    # Retry window overlaps: seqs 1..5 (1-2 are dups, 3-5 new).
    responses = cluster.produce(make_chunks(5, start_seq=1), producer_id=0)
    flags = [a.duplicate for r in responses for a in r.assignments]
    assert flags.count(True) == 2
    assert flags.count(False) == 3
    assert len(all_values(cluster)) == 6 * 3


def test_interleaved_producers_do_not_collide():
    cluster = make_cluster()
    cluster.produce(make_chunks(4, producer_id=0), producer_id=0)
    cluster.produce(make_chunks(4, producer_id=1), producer_id=1)
    # Producer 0 retries; producer 1's chunks are untouched.
    cluster.produce(make_chunks(4, producer_id=0), producer_id=0)
    assert len(all_values(cluster)) == 8 * 3


def test_retransmission_across_streamlets():
    cluster = make_cluster()
    first = make_chunks(2, streamlet=0) + make_chunks(2, streamlet=1)
    cluster.produce(first, producer_id=0)
    retry = make_chunks(2, streamlet=0) + make_chunks(2, streamlet=1)
    responses = cluster.produce(retry, producer_id=0)
    assert all(a.duplicate for r in responses for a in r.assignments)
    assert len(all_values(cluster)) == 4 * 3


def test_duplicates_do_not_inflate_backups():
    cluster = make_cluster()
    cluster.produce(make_chunks(5), producer_id=0)
    before = sum(b.store.chunks_received for b in cluster.backups.values())
    cluster.produce(make_chunks(5), producer_id=0)
    after = sum(b.store.chunks_received for b in cluster.backups.values())
    assert after == before  # duplicates never replicated again
