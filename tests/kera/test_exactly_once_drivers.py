"""Exactly-once under retransmission, exercised through the drivers.

The corner these tests pin down (regression for the waiter keying by
object identity): a duplicate chunk arriving while the original is still
in flight must NOT be acknowledged until the original is durable — an
early ack would let the producer advance past data that can still be
lost. A duplicate of an already-durable chunk acks immediately.
"""

from repro.common.units import KB
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.wire.chunk import Chunk, ChunkBuilder
from repro.wire.record import Record
from repro.kera import (
    InprocKeraCluster,
    KeraConfig,
    KeraConsumer,
    SimKeraCluster,
    SimWorkload,
)
from repro.kera.broker import KeraBrokerCore
from repro.kera.messages import ProduceRequest


# -- core level: several requests waiting on one chunk ---------------------------


def test_multiple_inflight_duplicates_all_ack_on_durability():
    done = []
    core = KeraBrokerCore(
        broker_id=0,
        nodes=[0, 1, 2, 3],
        storage_config=StorageConfig(
            segment_size=64 * KB, q_active_groups=1, materialize=False
        ),
        replication_config=ReplicationConfig(replication_factor=3, vlogs_per_broker=2),
        on_request_complete=done.append,
    )
    core.create_stream(1, [0])

    def produce(rid):
        return core.handle_produce(
            ProduceRequest(
                request_id=rid,
                producer_id=0,
                chunks=[
                    Chunk.meta(
                        stream_id=1,
                        streamlet_id=0,
                        producer_id=0,
                        chunk_seq=0,
                        record_count=5,
                        payload_len=500,
                    )
                ],
            )
        )

    outcomes = [produce(rid) for rid in (1, 2, 3)]
    assert [o.pending for o in outcomes] == [True, True, True]
    assert [o.duplicates for o in outcomes] == [0, 1, 1]
    assert done == []
    for batch in core.collect_batches():
        core.complete_batch(batch)
    # Original and both retransmissions ack together, in arrival order.
    assert done == [1, 2, 3]
    assert core.chunks_ingested == 1
    assert core.duplicates_dropped == 2


# -- inproc driver ------------------------------------------------------------------


def _real_chunk(n=5):
    builder = ChunkBuilder(1 * KB, stream_id=0, streamlet_id=0, producer_id=0)
    for i in range(n):
        assert builder.try_append(Record(value=f"r{i}".encode()))
    return builder.build(chunk_seq=0)


def _inproc_cluster():
    return InprocKeraCluster(
        KeraConfig(
            num_brokers=4,
            storage=StorageConfig(segment_size=256 * KB, q_active_groups=1),
            replication=ReplicationConfig(replication_factor=3, vlogs_per_broker=2),
            chunk_size=1 * KB,
        )
    )


def test_inproc_inflight_duplicate_waits_for_original():
    cluster = _inproc_cluster()
    cluster.create_stream(0, 1)
    leader = cluster.leader_of(0, 0)
    broker = cluster.brokers[leader]
    chunk = _real_chunk()

    # Original lands on the core directly (no replication pump): in flight.
    rid = cluster._next_request_id()
    outcome = broker.handle_produce(
        ProduceRequest(request_id=rid, producer_id=0, chunks=[chunk])
    )
    assert outcome.pending
    assert broker.pending_requests() == 1

    # Retransmission through the driver: the service pumps replication and
    # must only return once the ORIGINAL chunk is durable.
    responses = cluster.produce([chunk], producer_id=0)
    assert responses[0].assignments[0].duplicate
    assert broker.pending_requests() == 0
    # The original's ack fired into the tracker during the same pump.
    assert cluster.runtime.completion.consume(leader, rid)

    values = [r.value for r in KeraConsumer(cluster, 0, [0]).drain()]
    assert values == [f"r{i}".encode() for i in range(5)]
    assert broker.duplicates_dropped == 1


def test_inproc_durable_duplicate_acks_immediately():
    cluster = _inproc_cluster()
    cluster.create_stream(0, 1)
    chunk = _real_chunk()
    first = cluster.produce([chunk], producer_id=0)
    assert not first[0].assignments[0].duplicate

    backup_chunks_before = sum(
        b.store.chunks_received for b in cluster.backups.values()
    )
    second = cluster.produce([chunk], producer_id=0)
    assert second[0].assignments[0].duplicate
    # No new replication traffic for a durable duplicate.
    assert (
        sum(b.store.chunks_received for b in cluster.backups.values())
        == backup_chunks_before
    )
    values = [r.value for r in KeraConsumer(cluster, 0, [0]).drain()]
    assert len(values) == 5  # exactly one copy


# -- sim driver ----------------------------------------------------------------------


def _sim_cluster():
    config = KeraConfig(
        num_brokers=4,
        storage=StorageConfig(
            segment_size=64 * KB, q_active_groups=1, materialize=False
        ),
        replication=ReplicationConfig(replication_factor=3, vlogs_per_broker=2),
        chunk_size=1 * KB,
    )
    workload = SimWorkload(
        num_producers=1,
        num_consumers=0,
        streams=((0, 1),),
        duration=0.05,
        warmup=0.0,
    )
    return SimKeraCluster(config, workload)


def _meta_chunk():
    return Chunk.meta(
        stream_id=0,
        streamlet_id=0,
        producer_id=0,
        chunk_seq=0,
        record_count=5,
        payload_len=500,
    )


def test_sim_inflight_duplicate_waits_for_original():
    cluster = _sim_cluster()
    env = cluster.env
    leader = cluster.coordinator.stream(0).leaders[0]
    client = cluster.producer_nodes[0]
    core = cluster.broker_cores[leader]
    done = {}

    # Record the simulated instant each request's ack fires in the core.
    acks = {}
    tracker_cb = core.on_request_complete

    def recording_cb(rid):
        acks[rid] = env.now
        tracker_cb(rid)

    core.on_request_complete = recording_cb

    def produce(rid):
        request = ProduceRequest(request_id=rid, producer_id=0, chunks=[_meta_chunk()])
        response = yield from cluster.fabric.call_inline(
            client, leader, "broker", "produce", request, request.payload_bytes()
        )
        done[rid] = (env.now, response)

    # Both requests launch at t=0; replication needs a backup round trip,
    # so whichever the dispatcher serves second sees the first in flight.
    env.process(produce(1), name="produce:original")
    env.process(produce(2), name="produce:retransmit")
    env.run(until=0.02)

    assert set(done) == {1, 2}
    flags = sorted(done[rid][1].assignments[0].duplicate for rid in (1, 2))
    assert flags == [False, True]  # exactly one treated as the duplicate
    # Both requests ack at the SAME durability instant: the duplicate was
    # parked until the original's replication completed, not acked on
    # arrival.
    assert set(acks) == {1, 2}
    assert acks[1] == acks[2] > 0.0
    assert core.chunks_ingested == 1
    assert core.duplicates_dropped == 1
    assert core.pending_requests() == 0


def test_sim_durable_duplicate_acks_without_replication():
    cluster = _sim_cluster()
    env = cluster.env
    leader = cluster.coordinator.stream(0).leaders[0]
    client = cluster.producer_nodes[0]
    done = {}

    def produce(rid, at):
        if at:
            yield env.timeout(at)
        request = ProduceRequest(request_id=rid, producer_id=0, chunks=[_meta_chunk()])
        response = yield from cluster.fabric.call_inline(
            client, leader, "broker", "produce", request, request.payload_bytes()
        )
        done[rid] = (env.now, response)

    env.process(produce(1, 0.0), name="produce:original")
    # Well after the original is durable (0.02 s of simulated time).
    env.process(produce(2, 0.02), name="produce:late-retransmit")
    env.run(until=0.05)

    assert set(done) == {1, 2}
    assert not done[1][1].assignments[0].duplicate
    assert done[2][1].assignments[0].duplicate
    replicates = cluster.fabric.stats.calls.get(("backup", "replicate"), 0)
    assert replicates == 2  # the original's batch to its R-1 backups, nothing more
    core = cluster.broker_cores[leader]
    assert core.duplicates_dropped == 1
    assert core.pending_requests() == 0
