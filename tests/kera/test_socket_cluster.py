"""SocketKeraCluster: the replication plane over real localhost TCP.

The no-loss/no-duplication harness of the threaded and process clusters,
now with every backup core in a worker process reachable only through a
framed TCP connection — plus the socket-only observables (connection
accounting) and the durable tier running inside the socket workers.
"""

from pathlib import Path

from repro.common.units import KB, MB
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kera import KeraConfig, KeraConsumer
from repro.kera.socket_cluster import SocketKeraCluster
from repro.wire.chunk import ChunkBuilder
from repro.wire.record import Record

from tests.runtime.test_threaded_cluster import run_producers


def make_cluster(r=3, num_brokers=3, *, pipeline_depth=2, **kwargs):
    config = KeraConfig(
        num_brokers=num_brokers,
        storage=StorageConfig(segment_size=256 * KB, q_active_groups=2),
        replication=ReplicationConfig(
            replication_factor=r,
            vlogs_per_broker=2,
            pipeline_depth=pipeline_depth,
            ship_window_bytes=2 * MB,
        ),
        chunk_size=1 * KB,
        **kwargs.pop("config_kwargs", {}),
    )
    kwargs.setdefault("ack_timeout", 30.0)
    return SocketKeraCluster(config, **kwargs)


def test_concurrent_producers_no_loss_no_duplication():
    num_threads, records_each, streamlets = 3, 100, 2
    with make_cluster() as cluster:
        cluster.create_stream(0, streamlets)
        acked, errors = run_producers(cluster, num_threads, records_each, streamlets)
        assert errors == []
        assert acked == [records_each] * num_threads

        consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
        values = [r.value for r in consumer.drain()]
        assert len(values) == num_threads * records_each
        assert len(set(values)) == len(values)


def test_backup_workers_behind_sockets_hold_all_copies():
    """Everything acked crossed TCP to R-1 socket workers; the stats RPC
    reaches through the same framed connection."""
    with make_cluster() as cluster:
        assert cluster.transport.connection_count() == len(cluster.system.node_ids)
        cluster.create_stream(0, 2)
        acked, errors = run_producers(cluster, 3, 80, 2)
        assert errors == []
        chunks = sum(b.chunks_ingested for b in cluster.brokers.values())
        backup_chunks = sum(
            cluster.backup_stats(node)["chunks_received"]
            for node in cluster.system.node_ids
        )
        assert backup_chunks == 2 * chunks  # R = 3
        # Parent-side backup cores see no traffic in socket mode.
        assert all(b.store.chunks_received == 0 for b in cluster.backups.values())
        assert all(b.pending_requests() == 0 for b in cluster.brokers.values())


def test_retransmission_acks_and_deduplicates():
    with make_cluster() as cluster:
        cluster.create_stream(0, 1)
        builder = ChunkBuilder(1 * KB, stream_id=0, streamlet_id=0, producer_id=0)
        for i in range(5):
            assert builder.try_append(Record(value=f"r{i}".encode()))
        chunk = builder.build(chunk_seq=0)

        first = cluster.produce([chunk], producer_id=0)
        assert not first[0].assignments[0].duplicate
        second = cluster.produce([chunk], producer_id=0)
        assert second[0].assignments[0].duplicate

        consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
        values = [r.value for r in consumer.drain()]
        assert values == [f"r{i}".encode() for i in range(5)]


def test_shutdown_under_load_drains_cleanly():
    """Shutdown right after the last ack: shippers drain their in-flight
    socket batches, every ack applies exactly once."""
    cluster = make_cluster(pipeline_depth=4)
    try:
        cluster.create_stream(0, 2)
        acked, errors = run_producers(cluster, 3, 60, 2, flush_every=10)
        assert errors == []
        assert acked == [60] * 3
        chunks = sum(b.chunks_ingested for b in cluster.brokers.values())
        backup_chunks = sum(
            cluster.backup_stats(node)["chunks_received"]
            for node in cluster.system.node_ids
        )
        assert backup_chunks == 2 * chunks
    finally:
        cluster.shutdown()
    for node in cluster.system.node_ids:
        shipper = cluster.shipper(node)
        assert not shipper.is_alive()
        assert shipper.error is None
        assert shipper.in_flight_batches() == 0
    assert all(b.pending_chunks() == 0 for b in cluster.brokers.values())
    assert cluster.transport.connection_count() == 0


def test_durable_tier_runs_inside_socket_workers(tmp_path):
    """With a persist dir the socket workers write real segment files;
    the child's close hook drains its flusher before exit, so the files
    are on disk once shutdown returns."""
    root = tmp_path / "backups"
    with make_cluster(
        config_kwargs={"disk_dir": str(root), "flush_threshold": 8 * KB}
    ) as cluster:
        cluster.create_stream(0, 2)
        acked, errors = run_producers(cluster, 2, 60, 2)
        assert errors == []
        assert acked == [60] * 2
    seg_files = list(Path(root).rglob("*.seg"))
    assert seg_files, "socket workers wrote no durable segment files"
    assert all(path.stat().st_size > 0 for path in seg_files)
