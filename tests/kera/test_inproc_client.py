"""In-process cluster + high-level client tests (real bytes end to end)."""

import pytest

from repro.common.units import KB
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kera import InprocKeraCluster, KeraConfig, KeraProducer, KeraConsumer


def make_cluster(r=3, vlogs=2, q=1, num_brokers=4, chunk_size=1 * KB):
    config = KeraConfig(
        num_brokers=num_brokers,
        storage=StorageConfig(segment_size=256 * KB, q_active_groups=q),
        replication=ReplicationConfig(replication_factor=r, vlogs_per_broker=vlogs),
        chunk_size=chunk_size,
    )
    return InprocKeraCluster(config)


def test_produce_consume_roundtrip():
    cluster = make_cluster()
    cluster.create_stream(0, 4)
    producer = KeraProducer(cluster, producer_id=0)
    payloads = [f"record-{i}".encode() for i in range(200)]
    for value in payloads:
        producer.send(0, value)
    stats = producer.flush()
    assert stats.records_sent == 200
    consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
    records = consumer.drain()
    assert sorted(r.value for r in records) == sorted(payloads)
    assert consumer.stats.records_read == 200


def test_per_streamlet_order_preserved():
    cluster = make_cluster()
    cluster.create_stream(0, 4)
    producer = KeraProducer(cluster, producer_id=0)
    # Pin every record to streamlet 2 so global order is defined.
    for i in range(100):
        producer.send(0, f"{i:05d}".encode(), streamlet_id=2)
    producer.flush()
    consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
    records = consumer.drain()
    assert [int(r.value) for r in records] == list(range(100))


def test_keyed_records_land_on_stable_streamlet():
    cluster = make_cluster()
    cluster.create_stream(0, 4)
    producer = KeraProducer(cluster, producer_id=0)
    for i in range(50):
        producer.send(0, f"v{i}".encode(), keys=(b"user-42",))
    producer.flush()
    touched = [
        sl.streamlet_id
        for broker in cluster.brokers.values()
        if 0 in broker.registry
        for sl in broker.registry.get(0).streamlets
        if sl.record_count > 0
    ]
    assert len(touched) == 1  # one key -> one streamlet


def test_replication_lands_on_backups():
    cluster = make_cluster(r=3)
    cluster.create_stream(0, 4)
    producer = KeraProducer(cluster, producer_id=0)
    for i in range(100):
        producer.send(0, b"x" * 64)
    producer.flush()
    total_backup_chunks = sum(b.store.chunks_received for b in cluster.backups.values())
    total_ingested = sum(br.chunks_ingested for br in cluster.brokers.values())
    assert total_backup_chunks == 2 * total_ingested  # R-1 copies of each chunk
    # Consumers only see durable data and everything produced is durable.
    assert all(br.pending_requests() == 0 for br in cluster.brokers.values())


def test_r1_no_backup_traffic():
    cluster = make_cluster(r=1)
    cluster.create_stream(0, 2)
    producer = KeraProducer(cluster, producer_id=0)
    producer.send(0, b"solo")
    producer.flush()
    assert all(b.store.chunks_received == 0 for b in cluster.backups.values())
    consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
    assert [r.value for r in consumer.drain()] == [b"solo"]


def test_multiple_producers_and_streams():
    cluster = make_cluster(q=2)
    cluster.create_stream(0, 2)
    cluster.create_stream(1, 3)
    producers = [KeraProducer(cluster, producer_id=i) for i in range(3)]
    for i, producer in enumerate(producers):
        for j in range(60):
            producer.send(j % 2, f"p{i}-{j}".encode())
        producer.flush()
    consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0, 1])
    records = consumer.drain()
    assert len(records) == 180
    assert len({r.value for r in records}) == 180


def test_oversized_record_rejected():
    from repro.common.errors import WireFormatError

    cluster = make_cluster(chunk_size=256)
    cluster.create_stream(0, 1)
    producer = KeraProducer(cluster, producer_id=0)
    with pytest.raises(WireFormatError):
        producer.send(0, b"z" * 1000)


def test_flush_threshold_schedules_async_flushes():
    config = KeraConfig(
        num_brokers=4,
        storage=StorageConfig(segment_size=64 * KB),
        replication=ReplicationConfig(replication_factor=2, vlogs_per_broker=1),
        chunk_size=4 * KB,
        flush_threshold=8 * KB,
    )
    cluster = InprocKeraCluster(config)
    cluster.create_stream(0, 4)
    producer = KeraProducer(cluster, producer_id=0)
    for i in range(2000):
        producer.send(0, b"y" * 80)
    producer.flush()
    assert cluster.flushes_scheduled > 0
