"""Kill-and-restart from disk: no acked record may be lost.

The durability contract under test: once a produce has acked, its records
survive an abrupt cluster death — provided the fsync policy's guarantee
held at the kill point (``always``: every flush is synced before the ack
chain completes; ``bytes:N``: an explicit ``backup_sync_flush`` checkpoint
bounds the loss window to zero). A fresh incarnation pointed at the same
``persist_dir`` restores every record, in per-streamlet send order, via
:func:`repro.kera.recovery.restore_cluster_from_disk`.

Covered on both concurrent drivers: the threaded cluster dies via
``simulate_power_loss`` (no drain, no clean close), the process cluster
dies harder — its backup children are SIGKILLed mid-flight.
"""

import os
import signal
import time
from collections import defaultdict

import pytest

from repro.common.units import KB
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kera import KeraConfig, KeraConsumer, KeraProducer
from repro.kera.process import ProcessKeraCluster
from repro.kera.recovery import restore_cluster_from_disk
from repro.kera.threaded import ThreadedKeraCluster

POLICIES = ["always", "bytes:2048"]
STREAMLETS = 4


def make_config(tmp_path, fsync_policy):
    return KeraConfig(
        num_brokers=4,
        storage=StorageConfig(segment_size=8 * KB),
        replication=ReplicationConfig(
            replication_factor=3, vlogs_per_broker=1, fsync_policy=fsync_policy
        ),
        chunk_size=1 * KB,
        # Every replicate emits flush work: all acked bytes reach the
        # flusher before the ack, so "flusher idle" means "on disk".
        flush_threshold=1,
        persist_dir=str(tmp_path / "durable"),
    )


def produce_workload(cluster, count=400, flush_every=50):
    """Send ``count`` records across the streamlets; returns the expected
    per-streamlet value sequences (= ack order per sub-partition)."""
    expected = defaultdict(list)
    with KeraProducer(cluster, producer_id=1) as producer:
        for i in range(count):
            streamlet = i % STREAMLETS
            value = f"restart-{i:05d}".encode().ljust(100, b".")
            producer.send(0, value, streamlet_id=streamlet)
            expected[streamlet].append(value)
            if (i + 1) % flush_every == 0:
                producer.flush()
    return dict(expected)


def consume_by_streamlet(cluster):
    consumer = KeraConsumer(cluster, consumer_id=9, stream_ids=[0])
    got = defaultdict(list)
    while True:
        chunks = consumer.poll_chunks()
        if not chunks:
            return dict(got)
        for chunk in chunks:
            chunk.verify_payload()
            for record in chunk.records():
                got[chunk.streamlet_id].append(record.value)


@pytest.mark.parametrize("fsync_policy", POLICIES)
def test_threaded_power_loss_and_restart(tmp_path, fsync_policy):
    config = make_config(tmp_path, fsync_policy)
    cluster = ThreadedKeraCluster(config)
    try:
        cluster.create_stream(0, STREAMLETS)
        expected = produce_workload(cluster)
        assert cluster.wait_flush_idle(30.0)
        if fsync_policy != "always":
            # bytes:N leaves a tail below the threshold unsynced; the
            # checkpoint is the operator-visible way to pin it down.
            for node in cluster.system.node_ids:
                assert cluster.backup_sync_flush(node) > 0
    finally:
        cluster.simulate_power_loss()

    restarted = ThreadedKeraCluster(make_config(tmp_path, fsync_policy))
    try:
        restarted.create_stream(0, STREAMLETS)
        report = restore_cluster_from_disk(restarted)
        # Every node backs up some broker's segments (R=3 over 4 nodes).
        assert report.backups_loaded == 4
        assert report.brokers_restored == [0, 1, 2, 3]
        assert report.records_restored == sum(len(v) for v in expected.values())
        assert report.duplicates_dropped == 0  # replicas merged, not replayed twice
        assert consume_by_streamlet(restarted) == expected
        # The replay is durable under the new epoch: files exist again.
        assert sum(restarted.segments_on_disk(n) for n in restarted.system.node_ids) > 0
    finally:
        restarted.shutdown()

    # The consumed generation was retired: a third incarnation restores
    # from the replay's epoch alone, without double-loading the original.
    third = ThreadedKeraCluster(make_config(tmp_path, fsync_policy))
    try:
        third.create_stream(0, STREAMLETS)
        again = restore_cluster_from_disk(third)
        assert again.duplicates_dropped == 0
        assert consume_by_streamlet(third) == expected
    finally:
        third.shutdown()


def _await_flush_lag_zero(cluster, timeout=30.0):
    deadline = time.monotonic() + timeout
    nodes = list(cluster.system.node_ids)
    while time.monotonic() < deadline:
        if all(cluster.backup_stats(n)["flush_lag_bytes"] == 0 for n in nodes):
            return
        time.sleep(0.01)
    raise AssertionError("backup children never drained their flush queues")


def _sigkill_backup_children(cluster):
    """The process-mode power loss: SIGKILL every backup worker."""
    killed = 0
    for (_, name), binding in cluster.transport._proc.items():
        assert name == "backup"
        process = binding.process
        if process is not None and process.is_alive():
            os.kill(process.pid, signal.SIGKILL)
            process.join(timeout=10.0)
            killed += 1
    return killed


@pytest.mark.parametrize("fsync_policy", POLICIES)
def test_process_sigkill_and_restart(tmp_path, fsync_policy):
    config = make_config(tmp_path, fsync_policy)
    cluster = ProcessKeraCluster(config, ack_timeout=30.0)
    try:
        cluster.create_stream(0, STREAMLETS)
        expected = produce_workload(cluster, count=240)

        # The stats RPC surfaces the children's durable-tier gauges.
        stats = cluster.backup_stats(cluster.system.node_ids[0])
        assert {
            "flush_lag_bytes",
            "segments_on_disk",
            "spilled_segments",
            "bytes_in_memory",
        } <= stats.keys()

        if fsync_policy == "always":
            # Acked bytes were handed to the flusher before the ack, and
            # every executed flush fsyncs: an empty queue IS durability.
            _await_flush_lag_zero(cluster)
            assert all(
                cluster.backup_stats(n)["segments_on_disk"] > 0
                for n in cluster.system.node_ids
            )
        else:
            for node in cluster.system.node_ids:
                assert cluster.backup_sync_flush(node) > 0

        assert _sigkill_backup_children(cluster) == len(cluster.system.node_ids)
    finally:
        cluster.shutdown()

    restarted = ProcessKeraCluster(make_config(tmp_path, fsync_policy), ack_timeout=30.0)
    try:
        restarted.create_stream(0, STREAMLETS)
        report = restore_cluster_from_disk(restarted)
        assert report.backups_loaded == 4
        assert report.records_restored == sum(len(v) for v in expected.values())
        assert consume_by_streamlet(restarted) == expected
        # Restored data re-replicated into the children's new epoch.
        assert all(
            restarted.backup_stats(n)["segments_on_disk"] > 0
            for n in restarted.system.node_ids
        )
    finally:
        restarted.shutdown()
