"""BufferPool rental discipline: no leaks on producer exception paths."""

import pytest

from repro.common.errors import ReplicationError, WireFormatError
from repro.common.units import KB
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.wire.chunk import CHUNK_HEADER_SIZE, ChunkBuilder
from repro.wire.pool import BufferPool
from repro.kera import KeraConfig, KeraProducer
from repro.kera.inproc import InprocKeraCluster


def make_cluster():
    config = KeraConfig(
        num_brokers=3,
        storage=StorageConfig(segment_size=64 * KB),
        replication=ReplicationConfig(replication_factor=3),
        chunk_size=1 * KB,
    )
    return InprocKeraCluster(config)


def test_builder_init_failure_returns_buffer():
    pool = BufferPool(16)  # far too small for header + capacity
    with pytest.raises(WireFormatError):
        ChunkBuilder(1 * KB, stream_id=0, streamlet_id=0, producer_id=0, pool=pool)
    assert pool.rented == 0


def test_builder_close_idempotent():
    pool = BufferPool(CHUNK_HEADER_SIZE + 1 * KB)
    builder = ChunkBuilder(1 * KB, stream_id=0, streamlet_id=0, producer_id=0, pool=pool)
    assert pool.rented == 1
    builder.close()
    builder.close()
    assert pool.rented == 0


def test_producer_close_returns_all_buffers():
    with make_cluster() as cluster:
        cluster.create_stream(0, 3)
        producer = KeraProducer(cluster, producer_id=1)
        for i in range(50):
            producer.send(0, f"v{i}".encode())
        assert producer.pool.rented == 3  # one builder per streamlet
        producer.close()
        assert producer.pool.rented == 0


def test_failed_produce_leaks_nothing():
    """The regression this satellite exists for: a produce that raises
    mid-flush must not strand rented scratch buffers — close() on the
    error path returns every buffer and pool.rented drops to 0."""
    with make_cluster() as cluster:
        cluster.create_stream(0, 2)
        producer = KeraProducer(cluster, producer_id=1)
        for i in range(20):
            producer.send(0, f"v{i}".encode())
        # Fail every backup except nothing-in-particular: replication to
        # a failed node raises out of the synchronous inproc produce.
        with cluster._failed_lock:
            cluster._failed.update(cluster.system.node_ids)
        with pytest.raises(ReplicationError):
            producer.flush()
        # The unsent chunks were put back for a retry...
        assert producer._ready
        # ...and close on the error path still returns every buffer.
        with pytest.raises(ReplicationError):
            producer.close()
        assert producer.pool.rented == 0


def test_context_manager_returns_buffers_on_error():
    with make_cluster() as cluster:
        cluster.create_stream(0, 1)
        with pytest.raises(RuntimeError, match="boom"):
            with KeraProducer(cluster, producer_id=1) as producer:
                producer.send(0, b"value")
                raise RuntimeError("boom")
        # No flush was attempted on the error path; buffers still back.
        assert producer.pool.rented == 0
