"""KerA broker core: produce path, exactly-once, fetch, acks."""

import pytest

from repro.common.errors import UnknownStreamError
from repro.common.units import KB
from repro.replication.config import PolicyMode, ReplicationConfig
from repro.storage.config import StorageConfig
from repro.wire.chunk import Chunk
from repro.kera.broker import KeraBrokerCore
from repro.kera.messages import FetchPosition, FetchRequest, ProduceRequest


def make_core(r=3, vlogs=2, q=1, on_complete=None, policy=PolicyMode.SHARED):
    return KeraBrokerCore(
        broker_id=0,
        nodes=[0, 1, 2, 3],
        storage_config=StorageConfig(
            segment_size=64 * KB, q_active_groups=q, materialize=False
        ),
        replication_config=ReplicationConfig(
            replication_factor=r, vlogs_per_broker=vlogs, policy=policy
        ),
        on_request_complete=on_complete,
    )


def chunk(stream=1, streamlet=0, producer=0, seq=0, n=5, size=500):
    return Chunk.meta(
        stream_id=stream,
        streamlet_id=streamlet,
        producer_id=producer,
        chunk_seq=seq,
        record_count=n,
        payload_len=size,
    )


def produce(core, chunks, request_id=0, producer=0):
    return core.handle_produce(
        ProduceRequest(request_id=request_id, producer_id=producer, chunks=chunks)
    )


def drain_replication(core):
    """Complete every pending replication batch synchronously."""
    while True:
        batches = core.collect_batches()
        if not batches:
            return
        for batch in batches:
            core.complete_batch(batch)


class TestProducePath:
    def test_append_and_assignment(self):
        core = make_core()
        core.create_stream(1, [0])
        outcome = produce(core, [chunk(seq=0), chunk(seq=1)])
        assert outcome.new_records == 10
        assert len(outcome.new_chunks) == 2
        assert outcome.pending  # R3: replication required
        (a, b) = outcome.response.assignments
        assert not a.duplicate and not b.duplicate
        assert a.offset == 0
        assert b.offset == a.offset + outcome.new_chunks[0].length

    def test_unknown_stream_rejected(self):
        core = make_core()
        with pytest.raises(UnknownStreamError):
            produce(core, [chunk(stream=42)])

    def test_r1_completes_immediately(self):
        done = []
        core = make_core(r=1, on_complete=done.append)
        core.create_stream(1, [0])
        outcome = produce(core, [chunk()], request_id=7)
        assert not outcome.pending
        assert outcome.new_chunks[0].is_durable
        assert done == []  # no callback needed: ack inline
        assert core.collect_batches() == []

    def test_ack_after_full_replication(self):
        done = []
        core = make_core(on_complete=done.append)
        core.create_stream(1, [0])
        outcome = produce(core, [chunk(seq=0), chunk(seq=1)], request_id=9)
        assert outcome.pending
        assert core.pending_requests() == 1
        drain_replication(core)
        assert done == [9]
        assert core.pending_requests() == 0
        assert all(c.is_durable for c in outcome.new_chunks)

    def test_routing_multiple_streams_and_streamlets(self):
        core = make_core(vlogs=4)
        core.create_stream(1, [0, 2])
        core.create_stream(5, [1])
        produce(
            core,
            [chunk(stream=1, streamlet=0), chunk(stream=1, streamlet=2),
             chunk(stream=5, streamlet=1)],
        )
        assert core.chunks_ingested == 3
        assert core.registry.get(1).record_count == 10
        assert core.registry.get(5).record_count == 5


class TestExactlyOnce:
    def test_durable_duplicate_dropped(self):
        done = []
        core = make_core(on_complete=done.append)
        core.create_stream(1, [0])
        produce(core, [chunk(seq=0)], request_id=1)
        drain_replication(core)
        # Retransmission of the same chunk.
        outcome = produce(core, [chunk(seq=0)], request_id=2)
        assert outcome.duplicates == 1
        assert not outcome.pending  # already durable: ack immediately
        assert outcome.response.assignments[0].duplicate
        assert core.chunks_ingested == 1
        assert core.duplicates_dropped == 1
        assert core.registry.get(1).record_count == 5

    def test_inflight_duplicate_waits_for_original(self):
        done = []
        core = make_core(on_complete=done.append)
        core.create_stream(1, [0])
        produce(core, [chunk(seq=0)], request_id=1)
        # Duplicate arrives while the original is not yet durable.
        outcome = produce(core, [chunk(seq=0)], request_id=2)
        assert outcome.duplicates == 1
        assert outcome.pending  # must wait for the original's durability
        assert outcome.response.assignments[0].duplicate
        drain_replication(core)
        assert sorted(done) == [1, 2]

    def test_sequence_per_producer_per_streamlet(self):
        core = make_core()
        core.create_stream(1, [0, 1])
        # Same seq on different streamlets / producers is NOT a duplicate.
        outcome = produce(
            core,
            [chunk(streamlet=0, producer=0, seq=0),
             chunk(streamlet=1, producer=0, seq=0),
             chunk(streamlet=0, producer=1, seq=0)],
        )
        assert outcome.duplicates == 0
        assert core.chunks_ingested == 3


class TestFetchPath:
    def test_only_durable_visible(self):
        core = make_core()
        core.create_stream(1, [0])
        produce(core, [chunk(seq=0), chunk(seq=1)])
        request = FetchRequest(
            request_id=0,
            consumer_id=0,
            positions=[FetchPosition(stream_id=1, streamlet_id=0, entry=0)],
            max_chunks_per_entry=10,
        )
        assert core.handle_fetch(request).record_count == 0
        drain_replication(core)
        response = core.handle_fetch(request)
        assert response.record_count == 10
        assert response.chunk_count == 2

    def test_cursor_advances_without_rereads(self):
        core = make_core()
        core.create_stream(1, [0])
        produce(core, [chunk(seq=i) for i in range(3)])
        drain_replication(core)
        pos = FetchPosition(stream_id=1, streamlet_id=0, entry=0)
        first = core.handle_fetch(
            FetchRequest(request_id=0, consumer_id=0, positions=[pos], max_chunks_per_entry=2)
        )
        assert first.chunk_count == 2
        next_pos = first.entries[0].next_position
        second = core.handle_fetch(
            FetchRequest(request_id=1, consumer_id=0, positions=[next_pos], max_chunks_per_entry=2)
        )
        assert second.chunk_count == 1
        seqs = [c.chunk_seq for e in (first.entries + second.entries) for c in e.chunks]
        assert seqs == [0, 1, 2]

    def test_zero_copy_fetch_returns_stored_chunks(self):
        from repro.storage.segment import StoredChunk

        core = make_core()
        core.zero_copy_fetch = True
        core.create_stream(1, [0])
        produce(core, [chunk()])
        drain_replication(core)
        response = core.handle_fetch(
            FetchRequest(
                request_id=0,
                consumer_id=0,
                positions=[FetchPosition(stream_id=1, streamlet_id=0, entry=0)],
            )
        )
        assert isinstance(response.entries[0].chunks[0], StoredChunk)
        assert response.record_count == 5


def test_q_routing_parallel_entries():
    core = make_core(q=4, policy=PolicyMode.PER_SUBPARTITION)
    core.create_stream(1, [0])
    for producer in range(8):
        produce(core, [chunk(producer=producer, seq=0)], producer=producer)
    streamlet = core.registry.get(1).streamlet(0)
    # 8 producers over Q=4 entries: 4 groups, 2 producers each.
    assert len(streamlet.groups) == 4
    assert {g.entry for g in streamlet.groups} == {0, 1, 2, 3}
    # Per-sub-partition policy created one vlog per touched entry.
    assert core.manager.vlog_count == 4
