"""Streamlet migration and consumer offset management tests."""

import pytest

from repro.common.errors import ConfigError, StorageError
from repro.common.units import KB
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kera import (
    InprocKeraCluster,
    KeraConfig,
    KeraConsumer,
    KeraProducer,
    migrate_streamlet,
)


def make_cluster(q=1):
    config = KeraConfig(
        num_brokers=4,
        storage=StorageConfig(segment_size=64 * KB, q_active_groups=q),
        replication=ReplicationConfig(replication_factor=3, vlogs_per_broker=2),
        chunk_size=1 * KB,
    )
    return InprocKeraCluster(config)


def ingest(cluster, count=300, streamlets=4):
    cluster.create_stream(0, streamlets)
    producer = KeraProducer(cluster, producer_id=0)
    for i in range(count):
        producer.send(0, f"{i:05d}".encode(), streamlet_id=i % streamlets)
    producer.flush()


class TestMigration:
    def test_migrated_data_readable_from_new_leader(self):
        cluster = make_cluster()
        ingest(cluster)
        source = cluster.leader_of(0, 1)
        target = (source + 1) % 4
        report = migrate_streamlet(cluster, 0, 1, target)
        assert report.source == source
        assert report.target == target
        assert report.records_moved == 75
        assert cluster.leader_of(0, 1) == target
        consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
        records = consumer.drain()
        assert len(records) == 300

    def test_order_preserved_after_migration(self):
        cluster = make_cluster()
        ingest(cluster)
        source = cluster.leader_of(0, 2)
        migrate_streamlet(cluster, 0, 2, (source + 2) % 4)
        records = KeraConsumer(cluster, consumer_id=0, stream_ids=[0]).drain()
        streamlet2 = sorted(
            int(r.value) for r in records if int(r.value) % 4 == 2
        )
        in_order = [int(r.value) for r in records if int(r.value) % 4 == 2]
        assert in_order == streamlet2

    def test_migrated_data_re_replicated(self):
        cluster = make_cluster()
        ingest(cluster)
        source = cluster.leader_of(0, 0)
        target = (source + 1) % 4
        before = sum(b.store.chunks_received for b in cluster.backups.values())
        report = migrate_streamlet(cluster, 0, 0, target)
        after = sum(b.store.chunks_received for b in cluster.backups.values())
        assert after == before + 2 * report.chunks_moved

    def test_invalid_targets_rejected(self):
        cluster = make_cluster()
        ingest(cluster)
        leader = cluster.leader_of(0, 0)
        with pytest.raises(StorageError):
            migrate_streamlet(cluster, 0, 0, leader)  # already there
        with pytest.raises(StorageError):
            migrate_streamlet(cluster, 0, 99, 1)  # no such streamlet
        with pytest.raises(StorageError):
            migrate_streamlet(cluster, 0, 0, 42)  # no such broker

    def test_new_writes_go_to_new_leader(self):
        cluster = make_cluster()
        ingest(cluster, count=100)
        source = cluster.leader_of(0, 3)
        target = (source + 1) % 4
        migrate_streamlet(cluster, 0, 3, target)
        producer = KeraProducer(cluster, producer_id=5)
        producer.send(0, b"post-migration", streamlet_id=3)
        producer.flush()
        target_records = cluster.brokers[target].registry.get(0).streamlet(3)
        assert target_records.record_count == 25 + 1


class TestConsumerPositions:
    def test_snapshot_and_resume(self):
        cluster = make_cluster()
        ingest(cluster, count=200)
        consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
        first = consumer.poll(max_chunks_per_entry=2)
        committed = consumer.positions()
        rest = consumer.drain()
        assert len(first) + len(rest) == 200
        # A "restarted" consumer resumes from the committed snapshot.
        resumed = KeraConsumer(cluster, consumer_id=1, stream_ids=[0])
        resumed.seek(committed)
        replayed = resumed.drain()
        assert len(replayed) == len(rest)

    def test_rewind_rereads_everything(self):
        cluster = make_cluster()
        ingest(cluster, count=120)
        consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
        assert len(consumer.drain()) == 120
        consumer.rewind()
        assert len(consumer.drain()) == 120

    def test_seek_unknown_assignment_rejected(self):
        cluster = make_cluster()
        ingest(cluster)
        consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
        from repro.kera.messages import FetchPosition

        with pytest.raises(ConfigError):
            consumer.seek({(9, 9, 9): FetchPosition(9, 9, 9)})
