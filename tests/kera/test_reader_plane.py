"""The zero-copy reader plane through the drivers: indexed seeks, fan-out
cache sharing, retention errors, and view-serving fetches."""

import pickle
import threading

import pytest

from repro.common.errors import ConfigError, OffsetOutOfRangeError
from repro.common.units import KB
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.wire.views import ChunkView
from repro.kera import (
    InprocKeraCluster,
    KeraConfig,
    KeraConsumer,
    KeraProducer,
    ThreadedKeraCluster,
)


def make_config(segment_size=256 * KB, segments_per_group=2, chunk_size=1 * KB):
    return KeraConfig(
        num_brokers=3,
        storage=StorageConfig(
            segment_size=segment_size,
            segments_per_group=segments_per_group,
            q_active_groups=1,
        ),
        replication=ReplicationConfig(replication_factor=2, vlogs_per_broker=2),
        chunk_size=chunk_size,
    )


def inproc_cluster(**kwargs):
    return InprocKeraCluster(make_config(**kwargs))


def produce(cluster, n, stream_id=0, streamlet_id=0, size=24):
    producer = KeraProducer(cluster, producer_id=0)
    for i in range(n):
        producer.send(
            stream_id, f"r{i:06d}".encode().ljust(size, b"."), streamlet_id=streamlet_id
        )
    producer.flush()


# -- poll_views: zero-copy consumption ---------------------------------------


def test_poll_views_returns_decode_ready_views():
    cluster = inproc_cluster()
    cluster.create_stream(0, 1)
    produce(cluster, 500)
    consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
    values = []
    while True:
        views = consumer.poll_views()
        if not views:
            break
        for view in views:
            assert isinstance(view, ChunkView)
            assert view.verified  # CRC re-validated at the serving boundary
            values.extend(r.value for r in view.records())
    assert len(values) == 500
    assert values == sorted(values)  # single streamlet: order preserved
    assert consumer.stats.records_read == 500


def test_poll_views_matches_legacy_drain():
    cluster = inproc_cluster()
    cluster.create_stream(0, 1)
    produce(cluster, 300)
    via_views = []
    viewer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
    while True:
        views = viewer.poll_views()
        if not views:
            break
        for view in views:
            via_views.extend(r.value for r in view.records())
    legacy = [r.value for r in KeraConsumer(cluster, 1, [0]).drain()]
    assert via_views == legacy


def test_fanout_cache_shares_one_decode_across_consumers():
    cluster = inproc_cluster()
    cluster.create_stream(0, 1)
    produce(cluster, 400)
    leader = cluster.leader_of(0, 0)
    cache = cluster.brokers[leader].fancache

    first = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
    views_a = []
    while batch := first.poll_views():
        views_a.extend(batch)
    decodes_after_first = cache.decodes.value
    assert decodes_after_first == len(views_a)  # one admission per chunk

    second = KeraConsumer(cluster, consumer_id=1, stream_ids=[0])
    views_b = []
    while batch := second.poll_views():
        views_b.extend(batch)
    # The second consumer group is served entirely from the cache: the
    # identical view objects, zero additional decodes.
    assert cache.decodes.value == decodes_after_first
    assert [id(v) for v in views_b] == [id(v) for v in views_a]
    assert cache.stats().hits >= len(views_b)


# -- indexed seeks ------------------------------------------------------------


def test_seek_offset_resumes_at_owning_frame():
    cluster = inproc_cluster()
    cluster.create_stream(0, 1)
    produce(cluster, 600)
    consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
    consumer.seek_offset(0, 0, 0, 450)
    records = []
    while batch := consumer.poll_views():
        for view in batch:
            records.extend(r.value for r in view.records())
    # The seek resolves to the frame *containing* 450: the run starts at
    # that frame's base (chunk granularity) and covers 450 onward.
    assert records[-1] == b"r000599".ljust(24, b".")
    values = [int(v[1:7]) for v in records]
    assert values == list(range(values[0], 600))
    assert values[0] <= 450


def test_seek_touches_o1_frames_via_index():
    """Acceptance: positioned reads resolve through the offset index in
    O(1) frames — pinned by the index's own instrumentation."""
    cluster = inproc_cluster()
    cluster.create_stream(0, 1)
    produce(cluster, 2000)  # dozens of chunks
    leader = cluster.leader_of(0, 0)
    streamlet = cluster.brokers[leader].registry.get(0).streamlet(0)
    groups = streamlet.groups_for_entry(0)
    assert sum(g.index.chunk_count for g in groups) > 20
    for group in groups:
        group.index.frames_touched = 0

    consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
    consumer.seek_offset(0, 0, 0, 1500)
    consumer.poll_views(max_chunks_per_entry=1)
    touched = sum(g.index.frames_touched for g in groups)
    assert touched == 1  # one bisect, one frame — never a scan


def test_seek_past_end_raises_typed_error():
    cluster = inproc_cluster()
    cluster.create_stream(0, 1)
    produce(cluster, 100)
    consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
    consumer.seek_offset(0, 0, 0, 10**9)
    with pytest.raises(OffsetOutOfRangeError) as exc_info:
        consumer.poll_views()
    assert exc_info.value.offset == 10**9
    assert exc_info.value.earliest == 0


def test_seek_unknown_assignment_rejected():
    cluster = inproc_cluster()
    cluster.create_stream(0, 1)
    consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
    with pytest.raises(ConfigError):
        consumer.seek_offset(7, 0, 0, 0)


# -- retention ----------------------------------------------------------------


def retention_cluster():
    """Small groups so a few hundred records span several of them."""
    return inproc_cluster(segment_size=4 * KB, segments_per_group=2, chunk_size=1 * KB)


def test_retire_before_raises_for_stale_cursor_and_floor_seeks():
    cluster = retention_cluster()
    cluster.create_stream(0, 1)
    produce(cluster, 800)
    leader = cluster.leader_of(0, 0)
    broker = cluster.brokers[leader]
    streamlet = broker.registry.get(0).streamlet(0)

    retired = broker.retire_before(0, 0, 0, 400)
    assert retired > 0
    floor = streamlet.retained_floor(0)
    assert 0 < floor <= 400

    # A consumer whose cursor starts below the floor gets the typed error.
    stale = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
    with pytest.raises(OffsetOutOfRangeError) as exc_info:
        stale.poll_views()
    assert exc_info.value.earliest == floor

    # Seeking below the floor is the same typed error...
    seeker = KeraConsumer(cluster, consumer_id=1, stream_ids=[0])
    seeker.seek_offset(0, 0, 0, 0)
    with pytest.raises(OffsetOutOfRangeError):
        seeker.poll_views()

    # ...while seeking at/above it reads the retained suffix completely.
    reader = KeraConsumer(cluster, consumer_id=2, stream_ids=[0])
    reader.seek_offset(0, 0, 0, floor)
    values = []
    while batch := reader.poll_views():
        for view in batch:
            values.extend(int(r.value[1:7]) for r in view.records())
    assert values == list(range(floor, 800))


def test_retirement_invalidates_fanout_cache():
    """No stale reads: frames whose segment memory was freed must leave
    the cache with their group."""
    cluster = retention_cluster()
    cluster.create_stream(0, 1)
    produce(cluster, 800)
    leader = cluster.leader_of(0, 0)
    broker = cluster.brokers[leader]
    streamlet = broker.registry.get(0).streamlet(0)

    # Warm the cache over the whole log first.
    warm = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
    while warm.poll_views():
        pass
    cached_before = broker.fancache.entry_count
    assert cached_before > 0

    broker.retire_before(0, 0, 0, 400)
    retired_groups = [g for g in streamlet.groups_for_entry(0) if g.retired]
    assert retired_groups
    # Every remaining cache entry belongs to a surviving group.
    live_ids = {g.group_id for g in streamlet.groups_for_entry(0) if not g.retired}
    assert broker.fancache.entry_count < cached_before
    with broker.fancache._lock:
        remaining = list(broker.fancache._entries)
    assert remaining and all(key[1] in live_ids for key in remaining)


# -- threaded driver: concurrent fan-out --------------------------------------


def test_threaded_fanout_groups_share_single_decode():
    config = make_config()
    with ThreadedKeraCluster(config) as cluster:
        cluster.create_stream(0, 2)
        producer = KeraProducer(cluster, producer_id=0)
        for i in range(1200):
            producer.send(0, f"t{i:06d}".encode(), streamlet_id=i % 2)
        producer.flush()

        counts = [0] * 6
        errors = []

        def consume(group):
            try:
                consumer = KeraConsumer(cluster, consumer_id=group, stream_ids=[0])
                while True:
                    views = consumer.poll_views()
                    if not views:
                        break
                    counts[group] += sum(v.record_count for v in views)
            except BaseException as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        threads = [threading.Thread(target=consume, args=(g,)) for g in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert counts == [1200] * 6

        # Single-decode per hot chunk across all 6 groups: admissions equal
        # the number of distinct durable chunks on each leader.
        for broker in cluster.brokers.values():
            distinct = sum(
                g.index.chunk_count
                for stream in broker.registry
                for sl in stream.streamlets
                for g in sl.groups
            )
            if distinct:
                assert broker.fancache.decodes.value == distinct


def test_threaded_seek_error_propagates_to_caller():
    with ThreadedKeraCluster(make_config()) as cluster:
        cluster.create_stream(0, 1)
        produce(cluster, 50)
        consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
        consumer.seek_offset(0, 0, 0, 10**6)
        with pytest.raises(OffsetOutOfRangeError):
            consumer.poll_views()


# -- process driver -----------------------------------------------------------


def test_process_driver_serves_views_and_typed_seek_errors():
    from repro.kera.process import ProcessKeraCluster

    with ProcessKeraCluster(make_config(), ack_timeout=30.0) as cluster:
        cluster.create_stream(0, 1)
        produce(cluster, 200)
        consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
        values = []
        while batch := consumer.poll_views():
            for view in batch:
                values.extend(int(r.value[1:7]) for r in view.records())
        assert values == list(range(200))
        consumer.seek_offset(0, 0, 0, 10**6)
        with pytest.raises(OffsetOutOfRangeError):
            consumer.poll_views()


# -- error type crosses address spaces ---------------------------------------


def test_offset_error_pickles_with_range_intact():
    err = OffsetOutOfRangeError(42, 100, 900, "stream 0 streamlet 1 entry 0")
    clone = pickle.loads(pickle.dumps(err))
    assert isinstance(clone, OffsetOutOfRangeError)
    assert (clone.offset, clone.earliest, clone.latest) == (42, 100, 900)
    assert clone.context == "stream 0 streamlet 1 entry 0"
    assert "outside retained range [100, 900)" in str(clone)
