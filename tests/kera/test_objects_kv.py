"""Unified-API tests: objects as bounded streams, the KV view."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import StorageError
from repro.common.units import KB
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kera import InprocKeraCluster, KeraConfig, KVTable, ObjectStore, recover_broker


def make_cluster(r=3, chunk_size=1 * KB):
    config = KeraConfig(
        num_brokers=4,
        storage=StorageConfig(segment_size=64 * KB),
        replication=ReplicationConfig(replication_factor=r, vlogs_per_broker=2),
        chunk_size=chunk_size,
    )
    return InprocKeraCluster(config)


class TestObjectStore:
    def test_put_get_roundtrip(self):
        store = ObjectStore(make_cluster())
        data = bytes(range(256)) * 40  # ~10 KB, spans many parts
        info = store.put("blob-a", data)
        assert info.size == len(data)
        assert info.parts > 1
        assert store.get("blob-a") == data

    def test_empty_object(self):
        store = ObjectStore(make_cluster())
        info = store.put("empty", b"")
        assert info.parts == 1
        assert store.get("empty") == b""

    def test_multi_streamlet_object(self):
        store = ObjectStore(make_cluster(), streamlets_per_object=4)
        data = b"\xab" * 5000
        store.put(b"wide", data)
        assert store.get(b"wide") == data

    def test_catalog_and_errors(self):
        store = ObjectStore(make_cluster())
        store.put("a", b"1")
        store.put("b", b"2")
        assert [o.name for o in store.list()] == [b"a", b"b"]
        assert "a" in store and "zz" not in store
        with pytest.raises(StorageError):
            store.put("a", b"again")  # immutable
        with pytest.raises(StorageError):
            store.get("missing")
        with pytest.raises(StorageError):
            store.put("", b"x")

    def test_objects_are_replicated(self):
        cluster = make_cluster(r=3)
        store = ObjectStore(cluster)
        store.put("durable", b"d" * 3000)
        copies = sum(b.store.chunks_received for b in cluster.backups.values())
        assert copies > 0

    @settings(max_examples=15, deadline=None)
    @given(st.binary(min_size=0, max_size=4000))
    def test_roundtrip_property(self, data):
        store = ObjectStore(make_cluster())
        store.put("obj", data)
        assert store.get("obj") == data


class TestKVTable:
    def test_put_get_latest(self):
        table = KVTable(make_cluster(), stream_id=0)
        assert table.put("k1", b"v1") == 0
        assert table.put("k1", b"v2") == 1
        assert table.get("k1") == b"v2"
        assert table.get_versioned("k1").version == 1
        assert len(table) == 1

    def test_missing_key(self):
        table = KVTable(make_cluster(), stream_id=0)
        with pytest.raises(KeyError):
            table.get("nope")
        with pytest.raises(KeyError):
            table.delete("nope")
        with pytest.raises(StorageError):
            table.put("", b"v")

    def test_delete_tombstone(self):
        table = KVTable(make_cluster(), stream_id=0)
        table.put("k", b"v")
        table.delete("k")
        assert "k" not in table
        with pytest.raises(KeyError):
            table.get("k")
        # A new put resurrects with a higher version.
        version = table.put("k", b"v2")
        assert version == 2
        assert table.get("k") == b"v2"

    def test_keys_listing(self):
        table = KVTable(make_cluster(), stream_id=0)
        for k in (b"b", b"a", b"c"):
            table.put(k, b"x")
        table.delete(b"b")
        assert table.keys() == [b"a", b"c"]

    def test_rebuild_reconstructs_index(self):
        table = KVTable(make_cluster(), stream_id=0)
        for i in range(30):
            table.put(f"key-{i % 5}", f"value-{i}".encode())
        table.delete("key-3")
        snapshot = {k: table.get(k) for k in table.keys()}
        # Blow the index away and replay the log.
        table._index = {}
        table._versions = {}
        replayed = table.rebuild()
        assert replayed == 31
        assert {k: table.get(k) for k in table.keys()} == snapshot
        assert "key-3" not in table

    def test_rebuild_after_crash_recovery(self):
        cluster = make_cluster()
        table = KVTable(cluster, stream_id=0, num_streamlets=8)
        for i in range(40):
            table.put(f"k{i}", f"v{i}".encode())
        recover_broker(cluster, failed_broker=1)
        table.rebuild()
        for i in range(40):
            assert table.get(f"k{i}") == f"v{i}".encode()

    @settings(max_examples=10, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.binary(min_size=1, max_size=30)),
            min_size=1,
            max_size=25,
        )
    )
    def test_latest_wins_property(self, ops):
        table = KVTable(make_cluster(), stream_id=0)
        expected = {}
        for key_idx, value in ops:
            key = f"key-{key_idx}".encode()
            table.put(key, value)
            expected[key] = value
        for key, value in expected.items():
            assert table.get(key) == value
        table.rebuild()
        for key, value in expected.items():
            assert table.get(key) == value
