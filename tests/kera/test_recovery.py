"""Crash recovery: every acked record survives, order preserved."""

import pytest

from repro.common.errors import RecoveryError
from repro.common.units import KB
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.wire.chunk import Chunk
from repro.kera import (
    InprocKeraCluster,
    KeraConfig,
    KeraConsumer,
    KeraProducer,
    merge_backup_copies,
    recover_broker,
)


def make_cluster(r=3, vlogs=2, brokers=4):
    config = KeraConfig(
        num_brokers=brokers,
        storage=StorageConfig(segment_size=64 * KB),
        replication=ReplicationConfig(replication_factor=r, vlogs_per_broker=vlogs),
        chunk_size=1 * KB,
    )
    return InprocKeraCluster(config)


def ingest(cluster, stream_id=0, streamlets=8, count=400, producer_id=0):
    cluster.create_stream(stream_id, streamlets)
    producer = KeraProducer(cluster, producer_id=producer_id)
    values = [f"s{stream_id}-r{i:05d}".encode() for i in range(count)]
    for v in values:
        producer.send(stream_id, v)
    producer.flush()
    return values


def test_recovery_restores_all_acked_records():
    cluster = make_cluster()
    values = ingest(cluster, count=500)
    report = recover_broker(cluster, failed_broker=1)
    assert report.failed_broker == 1
    assert report.records_recovered > 0
    assert report.backups_read >= 1
    # All data readable again, from the reassigned leaders.
    consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
    recovered = {r.value for r in consumer.drain()}
    assert recovered == set(values)


def test_recovery_preserves_per_streamlet_order():
    cluster = make_cluster()
    cluster.create_stream(0, 8)
    producer = KeraProducer(cluster, producer_id=0)
    for i in range(300):
        producer.send(0, f"{i:05d}".encode(), streamlet_id=i % 8)
    producer.flush()
    recover_broker(cluster, failed_broker=2)
    consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
    records = consumer.drain()
    assert len(records) == 300
    # Within each original streamlet the values must still ascend.
    per_streamlet: dict[int, list[int]] = {}
    for record in records:
        value = int(record.value)
        per_streamlet.setdefault(value % 8, []).append(value)
    for sl, values in per_streamlet.items():
        assert values == sorted(values), f"order broken in streamlet {sl}"


def test_recovery_dedups_across_backup_copies():
    cluster = make_cluster(r=3)  # each vseg lives on 2 backups
    ingest(cluster, count=400)
    report = recover_broker(cluster, failed_broker=0)
    # Several backups hold copies of the lost virtual segments (R-1 = 2
    # copies each); the merge collapses them so nothing is ingested twice.
    assert report.backups_read >= 2
    consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
    records = consumer.drain()
    assert len(records) == 400  # no double ingestion, nothing lost


def test_recovered_data_is_re_replicated():
    cluster = make_cluster(r=2, brokers=4)
    ingest(cluster, count=300)
    report = recover_broker(cluster, failed_broker=3)
    survivors = [b for b in cluster.brokers if b != 3]
    # Every surviving broker's pending replication is drained.
    for b in survivors:
        assert cluster.brokers[b].pending_requests() == 0
    # The failed broker's backup data was dropped after recovery.
    for node, backup in cluster.backups.items():
        if node != 3:
            assert backup.store.segments_for_broker(3) == []


def test_multiple_streams_recovered():
    cluster = make_cluster()
    values0 = ingest(cluster, stream_id=0, streamlets=4, count=200, producer_id=0)
    values1 = ingest(cluster, stream_id=1, streamlets=4, count=200, producer_id=1)
    recover_broker(cluster, failed_broker=1)
    consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0, 1])
    recovered = {r.value for r in consumer.drain()}
    assert recovered == set(values0) | set(values1)


class TestMergeBackupCopies:
    def chunk(self, seq, crc=1):
        c = Chunk.meta(
            stream_id=0, streamlet_id=0, producer_id=0, chunk_seq=seq,
            record_count=1, payload_len=100,
        )
        c.payload_crc = crc
        return c

    def test_prefix_copies_merge_to_longest(self):
        a = [(0, [self.chunk(0), self.chunk(1)])]
        b = [(0, [self.chunk(0), self.chunk(1), self.chunk(2)])]
        merged = merge_backup_copies([a, b])
        assert len(merged) == 1
        assert [c.chunk_seq for c in merged[0][1]] == [0, 1, 2]

    def test_vsegs_ordered_by_id(self):
        a = [(3, [self.chunk(30)])]
        b = [(1, [self.chunk(10)])]
        merged = merge_backup_copies([a, b])
        assert [vseg for vseg, _ in merged] == [1, 3]

    def test_divergent_replicas_detected(self):
        a = [(0, [self.chunk(0, crc=1)])]
        b = [(0, [self.chunk(0, crc=2)])]
        with pytest.raises(RecoveryError):
            merge_backup_copies([a, b])

    def test_repeated_chunk_within_one_run_is_deduped(self):
        # A repair mid-replication can legally land the same chunk twice
        # in one backup's copy; the merge keeps the first occurrence.
        a = [(0, [self.chunk(0), self.chunk(1), self.chunk(1), self.chunk(2)])]
        merged = merge_backup_copies([a])
        assert [c.chunk_seq for c in merged[0][1]] == [0, 1, 2]

    def test_repeated_chunk_with_differing_payload_is_divergence(self):
        a = [(0, [self.chunk(0, crc=1), self.chunk(0, crc=2)])]
        with pytest.raises(RecoveryError):
            merge_backup_copies([a])

    def test_dedup_keeps_prefix_property_across_copies(self):
        # Dedup inside each run must not break the prefix comparison:
        # both copies still merge to the longer clean prefix.
        a = [(0, [self.chunk(0), self.chunk(0), self.chunk(1)])]
        b = [(0, [self.chunk(0), self.chunk(1), self.chunk(2)])]
        merged = merge_backup_copies([a, b])
        assert [c.chunk_seq for c in merged[0][1]] == [0, 1, 2]
