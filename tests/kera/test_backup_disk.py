"""Secondary-storage files: backups persist real decodable segments."""

import pytest

from repro.common.errors import StorageError
from repro.common.units import KB
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kera import InprocKeraCluster, KeraConfig, KeraProducer
from repro.kera.backup import KeraBackupCore


def make_cluster(tmp_path, flush_threshold=2 * KB):
    config = KeraConfig(
        num_brokers=4,
        storage=StorageConfig(segment_size=64 * KB),
        replication=ReplicationConfig(replication_factor=3, vlogs_per_broker=1),
        chunk_size=1 * KB,
        flush_threshold=flush_threshold,
        disk_dir=str(tmp_path / "backups"),
    )
    return InprocKeraCluster(config)


def ingest(cluster, count=500):
    cluster.create_stream(0, 4)
    producer = KeraProducer(cluster, producer_id=0)
    for i in range(count):
        producer.send(0, f"persisted-{i:05d}".encode())
    producer.flush()


def test_flushes_write_segment_files(tmp_path):
    cluster = make_cluster(tmp_path)
    ingest(cluster)
    assert cluster.flushes_scheduled > 0
    files = sorted((tmp_path / "backups").rglob("*.seg"))
    assert files, "no segment files written"
    # Files follow the broker/vlog/vseg naming scheme.
    assert all(f.name.startswith("b") and "_v" in f.name for f in files)


def test_persisted_segments_decode_to_original_records(tmp_path):
    cluster = make_cluster(tmp_path)
    ingest(cluster, count=400)
    # Force out everything still buffered.
    for backup in cluster.backups.values():
        for flush in backup.drain_flush():
            backup.persist(flush)
    recovered_values = set()
    for backup in cluster.backups.values():
        for src in list(cluster.brokers):
            for segment in backup.store.segments_for_broker(src):
                chunks = backup.read_persisted(segment)
                assert len(chunks) == len(segment.chunks)
                for chunk in chunks:
                    chunk.verify_payload()
                    for record in chunk.records():
                        recovered_values.add(record.value)
    expected = {f"persisted-{i:05d}".encode() for i in range(400)}
    assert recovered_values == expected


def test_incremental_flushes_append(tmp_path):
    from repro.persist import SEG_FILE_HEADER_SIZE

    cluster = make_cluster(tmp_path, flush_threshold=1 * KB)
    ingest(cluster, count=600)
    for backup in cluster.backups.values():
        for flush in backup.drain_flush():
            backup.persist(flush)
        backup.close_persistence()
    # On-disk frame length equals the in-memory segment length for every
    # segment: incremental flushes appended, never rewrote.
    for backup in cluster.backups.values():
        for src in list(cluster.brokers):
            for segment in backup.store.segments_for_broker(src):
                path = backup._segment_path(segment)
                expected = SEG_FILE_HEADER_SIZE + segment.bytes_held
                assert path.stat().st_size == expected


def test_segment_files_live_in_epoch_directory(tmp_path):
    cluster = make_cluster(tmp_path)
    ingest(cluster)
    files = sorted((tmp_path / "backups").rglob("*.seg"))
    assert files
    # First incarnation: every file sits in a node's epoch-0001, with an
    # index sidecar alongside.
    for path in files:
        assert path.parent.name == "epoch-0001"
        assert path.with_suffix(".idx").exists()


def test_disk_requires_materialized_segments(tmp_path):
    with pytest.raises(StorageError):
        KeraBackupCore(node_id=0, materialize=False, disk_dir=tmp_path / "x")


def test_read_without_disk_rejected():
    core = KeraBackupCore(node_id=0, materialize=True)
    from repro.replication.backup_store import ReplicatedSegment

    segment = ReplicatedSegment(
        src_broker=0, vlog_id=0, vseg_id=0, capacity=1024
    )
    with pytest.raises(StorageError):
        core.read_persisted(segment)
