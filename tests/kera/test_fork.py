"""Forkable virtual logs: copy-on-write sharing, snapshot isolation, and
fork-aware readers."""

import pytest

from repro.common.errors import OffsetOutOfRangeError, StorageError
from repro.kera import VirtualLog
from repro.wire.chunk import ChunkBuilder
from repro.wire.record import Record


def make_frame(seq, n_records=4):
    builder = ChunkBuilder(4096, stream_id=1, streamlet_id=0, producer_id=0)
    for i in range(n_records):
        assert builder.try_append(Record(value=f"c{seq}-r{i}".encode()))
    return bytes(builder.build(chunk_seq=seq).wire)


def filled_log(n_frames=5, records_per_frame=4):
    log = VirtualLog()
    for seq in range(n_frames):
        log.append(make_frame(seq, records_per_frame))
    return log


def all_values(log, reader=None):
    reader = reader if reader is not None else log.reader()
    values = []
    while not reader.exhausted:
        for view in reader.read(max_frames=4):
            values.extend(r.value for r in view.records())
    return values


# -- copy-on-write sharing ----------------------------------------------------


def test_fork_shares_prefix_by_buffer_identity():
    """Acceptance: the fork's prefix frames ARE the parent's objects —
    not equal copies."""
    parent = filled_log(5)
    child = parent.fork()
    assert child.fork_point == 5
    for i in range(5):
        assert child.frame_at(i) is parent.frame_at(i)


def test_fork_sees_consistent_snapshot():
    parent = filled_log(3)
    child = parent.fork()
    parent.append(make_frame(90))  # invisible to the child
    child.append(make_frame(80))  # invisible to the parent
    assert len(parent) == 4
    assert len(child) == 4
    parent_vals = all_values(parent)
    child_vals = all_values(child)
    shared = [v for v in parent_vals if v.startswith((b"c0", b"c1", b"c2"))]
    assert parent_vals == shared + [f"c90-r{i}".encode() for i in range(4)]
    assert child_vals == shared + [f"c80-r{i}".encode() for i in range(4)]


def test_nested_forks_chain_prefix_resolution():
    root = filled_log(2)
    mid = root.fork()
    mid.append(make_frame(10))
    leaf = mid.fork()
    leaf.append(make_frame(20))
    # The leaf resolves frame 0-1 through root, frame 2 through mid.
    assert leaf.frame_at(0) is root.frame_at(0)
    assert leaf.frame_at(2) is mid.frame_at(2)
    assert len(leaf) == 4
    assert all_values(leaf)[-1] == b"c20-r3"
    # Deep branches store only their own tail.
    assert len(leaf._tail) == 1


def test_fork_names_are_distinct():
    parent = filled_log(1)
    a, b = parent.fork(), parent.fork()
    assert a.name != b.name


# -- offset arithmetic --------------------------------------------------------


def test_record_offsets_stay_log_global_across_fork():
    parent = filled_log(3, records_per_frame=4)  # records 0..11
    child = parent.fork()
    child.append(make_frame(7, n_records=4))  # records 12..15
    assert child.record_count == 16
    assert child.locate(0) == 0
    assert child.locate(11) == 2
    assert child.locate(12) == 3
    assert child.frame_record_base(3) == 12


def test_locate_out_of_range_is_typed():
    log = filled_log(2)
    with pytest.raises(OffsetOutOfRangeError) as exc_info:
        log.locate(log.record_count)
    assert exc_info.value.latest == log.record_count
    with pytest.raises(OffsetOutOfRangeError):
        log.locate(-1)


def test_frame_at_out_of_range_raises():
    log = filled_log(2)
    with pytest.raises(StorageError):
        log.frame_at(2)


# -- readers ------------------------------------------------------------------


def test_reader_seek_record_positions_at_owning_frame():
    log = filled_log(5, records_per_frame=4)
    reader = log.reader()
    reader.seek_record(9)  # frame 2 (records 8..11)
    assert reader.frame_pos == 2
    assert reader.records_read == 8
    first = reader.read()[0]
    assert first.records()[0].value == b"c2-r0"


def test_reader_on_fork_walks_prefix_then_private_tail():
    parent = filled_log(2)
    child = parent.fork()
    child.append(make_frame(50))
    values = all_values(child, child.reader())
    assert values[:4] == [f"c0-r{i}".encode() for i in range(4)]
    assert values[-4:] == [f"c50-r{i}".encode() for i in range(4)]
    # A reader on the parent never sees the fork's tail.
    assert all(not v.startswith(b"c50") for v in all_values(parent))


def test_reader_exhaustion_and_incremental_read():
    log = filled_log(3)
    reader = log.reader()
    assert len(reader.read(max_frames=2)) == 2
    assert not reader.exhausted
    assert len(reader.read(max_frames=5)) == 1
    assert reader.exhausted
    assert reader.read() == []
