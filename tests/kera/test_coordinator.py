"""Coordinator catalog and recovery planning tests."""

import pytest

from repro.common.errors import ConfigError, RecoveryError, StorageError
from repro.kera.coordinator import Coordinator


def test_round_robin_assignment():
    coord = Coordinator([0, 1, 2, 3])
    meta = coord.create_stream(0, 8)
    # 8 streamlets over 4 brokers: 2 each.
    counts = [len(meta.streamlets_on(b)) for b in range(4)]
    assert counts == [2, 2, 2, 2]


def test_single_partition_streams_spread_by_stream_id():
    coord = Coordinator([0, 1, 2, 3])
    for stream_id in range(8):
        coord.create_stream(stream_id, 1)
    loads = [len(coord.partitions_on(b)) for b in range(4)]
    assert loads == [2, 2, 2, 2]


def test_duplicate_stream_rejected():
    coord = Coordinator([0, 1])
    coord.create_stream(0, 1)
    with pytest.raises(StorageError):
        coord.create_stream(0, 1)


def test_invalid_args():
    with pytest.raises(ConfigError):
        Coordinator([])
    coord = Coordinator([0])
    with pytest.raises(ConfigError):
        coord.create_stream(0, 0)
    with pytest.raises(StorageError):
        coord.stream(99)


def test_recovery_plan_reassigns_to_survivors():
    coord = Coordinator([0, 1, 2, 3])
    coord.create_stream(0, 8)
    before = coord.partitions_on(1)
    plan = coord.plan_recovery(1)
    assert plan.failed_broker == 1
    assert plan.survivors == [0, 2, 3]
    assert set(plan.reassignments) == set(before)
    for (stream, sid), target in plan.reassignments.items():
        assert target in plan.survivors
        assert coord.stream(stream).leaders[sid] == target
    assert coord.partitions_on(1) == []
    assert coord.live_brokers == [0, 2, 3]


def test_recovery_twice_rejected():
    coord = Coordinator([0, 1, 2])
    coord.create_stream(0, 3)
    coord.plan_recovery(0)
    with pytest.raises(RecoveryError):
        coord.plan_recovery(0)
    with pytest.raises(RecoveryError):
        coord.plan_recovery(42)


def test_streams_created_after_failure_avoid_dead_broker():
    coord = Coordinator([0, 1, 2, 3])
    coord.plan_recovery(2)
    meta = coord.create_stream(0, 6)
    assert 2 not in meta.leaders.values()


def test_deferred_recovery_leaves_routing_until_commit():
    coord = Coordinator([0, 1, 2, 3])
    coord.create_stream(0, 8)
    before = dict(coord.stream(0).leaders)
    owned = coord.partitions_on(1)
    plan = coord.plan_recovery(1, defer_routing=True)
    # The node is failed (no new streams land on it), the plan is full,
    # but every streamlet still routes to the fenced broker: clients get
    # typed refusals, not premature re-routes, while replay runs.
    assert set(plan.reassignments) == set(owned)
    assert coord.live_brokers == [0, 2, 3]
    assert coord.stream(0).leaders == before
    assert coord.partitions_on(1) == owned

    coord.commit_recovery(plan)
    assert coord.partitions_on(1) == []
    for (stream, sid), target in plan.reassignments.items():
        assert coord.stream(stream).leaders[sid] == target


def test_default_recovery_commits_immediately():
    coord = Coordinator([0, 1, 2, 3])
    coord.create_stream(0, 8)
    plan = coord.plan_recovery(1)
    assert coord.partitions_on(1) == []
    for (stream, sid), target in plan.reassignments.items():
        assert coord.stream(stream).leaders[sid] == target
