"""Wire-size accounting of the RPC messages (what the network charges)."""

from repro.wire.chunk import Chunk, CHUNK_HEADER_SIZE
from repro.kera.messages import (
    ChunkAssignment,
    FetchEntry,
    FetchPosition,
    FetchRequest,
    FetchResponse,
    ProduceRequest,
    ProduceResponse,
    ReplicateRequest,
    ReplicateResponse,
)


def meta_chunk(n=4, size=400, seq=0):
    return Chunk.meta(
        stream_id=0, streamlet_id=0, producer_id=0, chunk_seq=seq,
        record_count=n, payload_len=size,
    )


def test_produce_request_accounting():
    chunks = [meta_chunk(seq=0), meta_chunk(seq=1, size=100, n=1)]
    request = ProduceRequest(request_id=1, producer_id=0, chunks=chunks)
    expected = 32 + (CHUNK_HEADER_SIZE + 400) + (CHUNK_HEADER_SIZE + 100)
    assert request.payload_bytes() == expected
    assert request.record_count == 5


def test_produce_response_scales_with_assignments():
    empty = ProduceResponse(request_id=1, assignments=[])
    one = ProduceResponse(
        request_id=1,
        assignments=[ChunkAssignment(0, 0, 0, 0, 0)],
    )
    assert one.payload_bytes() - empty.payload_bytes() == 24


def test_fetch_request_scales_with_positions():
    pos = FetchPosition(stream_id=0, streamlet_id=0, entry=0)
    one = FetchRequest(request_id=0, consumer_id=0, positions=[pos])
    two = FetchRequest(request_id=0, consumer_id=0, positions=[pos, pos])
    assert two.payload_bytes() - one.payload_bytes() == 24


def test_fetch_response_carries_chunk_bytes():
    pos = FetchPosition(stream_id=0, streamlet_id=0, entry=0)
    chunk = meta_chunk()
    entry = FetchEntry(position=pos, chunks=[chunk], next_position=pos)
    response = FetchResponse(request_id=0, entries=[entry])
    assert response.payload_bytes() == 32 + 24 + chunk.size
    assert response.record_count == 4
    assert response.chunk_count == 1


def test_replicate_request_includes_ref_metadata():
    from repro.replication.chunk_ref import CHUNK_REF_WIRE_SIZE

    chunks = [meta_chunk(seq=i) for i in range(3)]
    request = ReplicateRequest(
        src_broker=0, vlog_id=1, vseg_id=2, vseg_capacity=8192,
        batch_checksum=0, chunks=chunks,
    )
    expected = 32 + sum(c.size + CHUNK_REF_WIRE_SIZE for c in chunks)
    assert request.payload_bytes() == expected


def test_replicate_response_fixed_size():
    assert ReplicateResponse().payload_bytes() == 16
