"""Configuration validation across the system configs."""

import pytest

from repro.common.errors import ConfigError
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kafka.config import KafkaConfig
from repro.kera.config import KeraConfig


class TestStorageConfig:
    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ConfigError):
            StorageConfig(segment_size=0)
        with pytest.raises(ConfigError):
            StorageConfig(segments_per_group=0)
        with pytest.raises(ConfigError):
            StorageConfig(q_active_groups=0)

    def test_group_capacity(self):
        config = StorageConfig(segment_size=1000, segments_per_group=3)
        assert config.group_capacity == 3000


class TestReplicationConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            ReplicationConfig(replication_factor=0)
        with pytest.raises(ConfigError):
            ReplicationConfig(vlogs_per_broker=0)
        with pytest.raises(ConfigError):
            ReplicationConfig(virtual_segment_size=0)
        with pytest.raises(ConfigError):
            ReplicationConfig(max_batch_chunks=-1)

    def test_backup_copies(self):
        assert ReplicationConfig(replication_factor=1).num_backup_copies == 0
        assert ReplicationConfig(replication_factor=3).num_backup_copies == 2


class TestKeraConfig:
    def test_replication_needs_enough_brokers(self):
        with pytest.raises(ConfigError):
            KeraConfig(
                num_brokers=2,
                replication=ReplicationConfig(replication_factor=3),
            )

    def test_rejects_bad_client_params(self):
        with pytest.raises(ConfigError):
            KeraConfig(chunk_size=0)
        with pytest.raises(ConfigError):
            KeraConfig(linger=-1.0)
        with pytest.raises(ConfigError):
            KeraConfig(num_brokers=0)


class TestKafkaConfig:
    def test_replication_bounds(self):
        with pytest.raises(ConfigError):
            KafkaConfig(num_brokers=2, replication_factor=3)
        with pytest.raises(ConfigError):
            KafkaConfig(replication_factor=0)

    def test_fetcher_and_wait_validation(self):
        with pytest.raises(ConfigError):
            KafkaConfig(num_replica_fetchers=0)
        with pytest.raises(ConfigError):
            KafkaConfig(replica_fetch_wait_max=-1.0)
        assert KafkaConfig(replication_factor=3).num_followers == 2
