"""Completion-driven produce (`produce_async`) across the live drivers.

The races this file pins down live between ``submit_produce`` and the
replication plane:

* **ack-before-register** — replication completes before the submitter
  registers its completion waiter; the tracker's early-completion memory
  must resolve the register immediately (inherent on the synchronous
  inproc driver, forced on the concurrent ones by delaying the
  ``produce_async`` transport callback);
* **register-before-ack** — the waiter parks first and the shipper's ack
  must fire it (forced by delaying the ``replicate`` acks).

Either way the contract is the same: every callback fires exactly once,
no caller thread blocks, and afterwards neither the cluster's in-flight
registry nor the completion tracker retains any state.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.common.units import KB, MB
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kera import KeraConfig, KeraConsumer
from repro.kera.inproc import InprocKeraCluster
from repro.kera.socket_cluster import SocketKeraCluster
from repro.kera.threaded import ThreadedKeraCluster
from repro.wire.chunk import ChunkBuilder
from repro.wire.record import Record


def small_config():
    return KeraConfig(
        num_brokers=3,
        storage=StorageConfig(segment_size=256 * KB, q_active_groups=2),
        replication=ReplicationConfig(
            replication_factor=3,
            vlogs_per_broker=2,
            pipeline_depth=2,
            ship_window_bytes=2 * MB,
        ),
        chunk_size=1 * KB,
    )


def make_chunks(producer_id, streamlet_id=0, n=4, start_seq=0):
    chunks = []
    for i in range(n):
        builder = ChunkBuilder(
            1 * KB, stream_id=0, streamlet_id=streamlet_id, producer_id=producer_id
        )
        assert builder.try_append(Record(value=f"p{producer_id}-c{i}".encode()))
        chunks.append(builder.build(chunk_seq=start_seq + i))
    return chunks


def delay_call_async(cluster, method_to_delay, delay_s=0.05):
    """Delay the ``on_done`` of one transport method on this instance.

    Delaying ``replicate`` holds back the shipper's acks (the submitter
    registers first); delaying ``produce_async`` holds back the append
    response (replication completes first and the tracker remembers it).
    """
    transport = cluster.transport
    original = transport.call_async

    def delayed(src, dst, service, method, request, request_bytes=0, *, on_done):
        if method == method_to_delay:
            inner = on_done

            def slow(response, error):
                time.sleep(delay_s)
                inner(response, error)

            on_done = slow
        return original(src, dst, service, method, request, request_bytes, on_done=on_done)

    transport.call_async = delayed


def assert_no_residue(cluster):
    assert cluster.inflight_produce_count() == 0
    tracker = cluster.runtime.completion
    assert not tracker._waiters
    assert not tracker._early


def await_results(results, lock, expected, timeout=30.0):
    """Poll until ``expected`` callbacks landed (they may fire inline,
    before the submitting loop even knows how many to expect)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with lock:
            if len(results) >= expected:
                return
        time.sleep(0.01)
    raise AssertionError(f"only {len(results)}/{expected} callbacks fired")


def drive_async_produces(cluster, producers=4):
    """Fire one async produce per producer and wait for all callbacks."""
    cluster.create_stream(0, 2)
    results = []
    lock = threading.Lock()

    def on_complete(response, error):
        with lock:
            results.append((response, error))

    expected = 0
    for producer_id in range(producers):
        chunks = make_chunks(producer_id, streamlet_id=producer_id % 2)
        expected += cluster.produce_async(chunks, producer_id, on_complete)
    await_results(results, lock, expected)
    for response, error in results:
        assert error is None, error
        assert response is not None and response.assignments
        assert not any(a.duplicate for a in response.assignments)

    consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
    values = [r.value for r in consumer.drain()]
    assert len(values) == producers * 4
    assert len(set(values)) == len(values)
    assert_no_residue(cluster)


def test_produce_async_inproc_ack_before_register():
    # The synchronous driver pumps replication inside the handler, so
    # every call exercises the early-completion path by construction.
    cluster = InprocKeraCluster(small_config())
    drive_async_produces(cluster)


@pytest.mark.parametrize("delay_method", ["replicate", "produce_async"])
def test_produce_async_threaded_races(delay_method):
    cluster = ThreadedKeraCluster(small_config(), ack_timeout=30.0)
    try:
        delay_call_async(cluster, delay_method)
        drive_async_produces(cluster)
    finally:
        cluster.shutdown()


@pytest.mark.parametrize("delay_method", ["replicate", "produce_async"])
def test_produce_async_sockets_races(delay_method):
    with SocketKeraCluster(small_config(), ack_timeout=30.0) as cluster:
        delay_call_async(cluster, delay_method)
        drive_async_produces(cluster)


def test_produce_async_shipper_failure_fails_callbacks():
    """A dead backup fails the shipper; parked async produces must all
    resolve with the error and leave no registry or tracker residue."""
    cluster = ThreadedKeraCluster(small_config(), ack_timeout=30.0)
    try:
        cluster.create_stream(0, 2)
        # Make replication to one node impossible, without the repair
        # path: mark it failed directly so the next ship errors out.
        victim = max(cluster.system.node_ids)
        with cluster._failed_lock:
            cluster._failed.add(victim)
        results = []
        lock = threading.Lock()

        def on_complete(response, error):
            with lock:
                results.append((response, error))

        expected = 0
        for producer_id in range(3):
            chunks = make_chunks(producer_id, streamlet_id=producer_id % 2)
            expected += cluster.produce_async(chunks, producer_id, on_complete)
        await_results(results, lock, expected)
        # Every leader replicates to both other nodes (R=3), so every
        # submission's shipper hits the failed node and errors.
        assert all(error is not None for _, error in results)
        assert_no_residue(cluster)
    finally:
        cluster.shutdown()


def test_blocking_produce_is_a_thin_wrapper():
    """The blocking path rides the same machinery and stays clean."""
    cluster = ThreadedKeraCluster(small_config(), ack_timeout=30.0)
    try:
        cluster.create_stream(0, 2)
        responses = cluster.produce(make_chunks(7), producer_id=7)
        assert responses and all(r.assignments for r in responses)
        # Retransmission: the same chunks ack again as duplicates.
        responses = cluster.produce(make_chunks(7), producer_id=7)
        assert all(a.duplicate for r in responses for a in r.assignments)
        assert_no_residue(cluster)
    finally:
        cluster.shutdown()
