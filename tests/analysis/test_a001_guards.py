"""A001: mutation of guarded-by declared shared state outside its lock."""

from tests.analysis.conftest import findings_for


def _fixture_findings():
    return [f for f in findings_for("A001") if f.path.endswith("guarded.py")]


def test_unguarded_write_fires():
    lines = {f.line for f in _fixture_findings()}
    assert 14 in lines  # self.count += 1 outside the lock


def test_unguarded_mutating_call_fires():
    found = [f for f in _fixture_findings() if ".append()" in f.message]
    assert found and found[0].line == 17


def test_declared_lock_must_exist():
    found = [f for f in _fixture_findings() if "_missing_lock" in f.message]
    assert found, "guarded-by naming a nonexistent lock must be reported"


def test_guarded_write_is_clean():
    # guarded_bump() mutates inside `with self._lock:` on line 21
    assert all(f.line != 21 for f in _fixture_findings())


def test_justified_noqa_suppresses():
    # silenced_with_reason() carries `# noqa: A001 -- <why>` on line 27
    assert all(f.line != 27 for f in _fixture_findings())


def test_unjustified_noqa_reported_as_a000():
    meta = [f for f in findings_for("A001") if f.rule == "A000"]
    assert any(f.line == 24 for f in meta)


def test_unannotated_attribute_not_flagged(analyze):
    findings = analyze(
        {
            "mod.py": """
            import threading

            class Plain:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.free = 0  # no guarded-by declaration

                def bump(self):
                    self.free += 1
            """
        },
        rules=["A001"],
    )
    assert findings == []


def test_mutation_in_nested_function_not_treated_as_guarded(analyze):
    # A callback defined inside a `with` block runs later, outside the lock.
    findings = analyze(
        {
            "mod.py": """
            import threading

            class Holder:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.seen = []  # guarded-by: _lock

                def subscribe(self, bus):
                    with self._lock:
                        def on_event(ev):
                            self.seen.append(ev)
                        bus.add(on_event)
            """
        },
        rules=["A001"],
    )
    assert any(f.rule == "A001" and "seen" in f.message for f in findings)


def test_ancestor_lock_satisfies_declaration(analyze):
    """A subclass may guard its own state with a lock the in-tree base
    transport created (cross-dict invariants share one lock)."""
    findings = analyze(
        {
            "mod.py": """
            import threading

            class Base:
                def __init__(self):
                    self._state_lock = threading.Lock()

            class Leaf(Base):
                def __init__(self):
                    super().__init__()
                    self._bindings = {}  # guarded-by: _state_lock

                def bind(self, key, value):
                    with self._state_lock:
                        self._bindings[key] = value
            """
        },
        rules=["A001"],
    )
    assert findings == []


def test_unguarded_move_to_end_fires(analyze):
    """``OrderedDict.move_to_end`` mutates iteration order — an LRU's
    promote path must hold the cache lock like any other write."""
    findings = analyze(
        {
            "mod.py": """
            import threading
            from collections import OrderedDict

            class Lru:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = OrderedDict()  # guarded-by: _lock

                def promote(self, key):
                    self._entries.move_to_end(key)

                def promote_locked(self, key):
                    with self._lock:
                        self._entries.move_to_end(key)
            """
        },
        rules=["A001"],
    )
    hits = [f for f in findings if "move_to_end" in f.message]
    assert len(hits) == 1, hits


def test_undeclared_lock_still_fires_with_ancestry(analyze):
    findings = analyze(
        {
            "mod.py": """
            import threading

            class Base:
                def __init__(self):
                    self._other = threading.Lock()

            class Leaf(Base):
                def __init__(self):
                    super().__init__()
                    self._bindings = {}  # guarded-by: _state_lock
            """
        },
        rules=["A001"],
    )
    assert any("_state_lock" in f.message for f in findings)
