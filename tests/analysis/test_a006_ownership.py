"""A006: borrowed views escaping their owner's lifetime."""

from tests.analysis.conftest import findings_for


def _fixture_findings():
    return [f for f in findings_for("A006") if f.path.endswith("views.py")]


def test_field_store_fires():
    found = [f for f in _fixture_findings() if "self.kept" in f.message]
    assert found and found[0].line == 43


def test_unannotated_return_fires():
    found = [f for f in _fixture_findings() if "bad_return" in f.message]
    assert found and "return annotation" in found[0].message


def test_closure_capture_fires():
    found = [f for f in _fixture_findings() if "closure" in f.message]
    assert found and found[0].line == 52


def test_keyed_container_store_fires():
    found = [f for f in _fixture_findings() if "self.by_key" in f.message]
    assert found


def test_append_store_fires():
    found = [f for f in _fixture_findings() if "self.rows" in f.message]
    assert found


def test_ownerless_borrows_grammar_flagged():
    found = [f for f in _fixture_findings() if "names no owner" in f.message]
    assert found and found[0].line == 32


def test_declared_field_is_clean():
    # Sanctioned.declared_field stores into the borrows-declared `blessed`.
    assert all("blessed" not in f.message for f in _fixture_findings())


def test_annotated_return_is_clean():
    assert all("annotated_return" not in f.message for f in _fixture_findings())


def test_sanctioned_class_fully_clean():
    # declared field, annotated return, bytes() copy, slice store, marked
    # line, justified noqa: none of Sanctioned (lines 66+) may be flagged.
    lines = {f.line for f in _fixture_findings()}
    assert not any(line >= 66 for line in lines), lines


def test_justified_noqa_suppresses():
    assert all("silenced" not in f.message for f in _fixture_findings())


def test_view_propagators_stay_borrowed(analyze):
    findings = analyze(
        {
            "mod.py": """
            class Holder:
                def __init__(self):
                    self.kept = None

                def stash(self, buf):
                    view = memoryview(buf).cast("B")
                    self.kept = view
            """
        },
        rules=["A006"],
    )
    assert any("self.kept" in f.message for f in findings)


def test_tuple_unpack_propagates_borrow(analyze):
    findings = analyze(
        {
            "mod.py": """
            def peek(ring) -> memoryview: ...

            class Holder:
                def __init__(self):
                    self.kept = None

                def stash(self, ring):
                    pair = peek(ring)
                    kind, view = pair
                    self.kept = view
            """
        },
        rules=["A006"],
    )
    assert any("self.kept" in f.message for f in findings)


def test_reassignment_clears_borrow(analyze):
    findings = analyze(
        {
            "mod.py": """
            def window(buf) -> memoryview: ...

            class Holder:
                def __init__(self):
                    self.kept = None

                def stash(self, buf):
                    view = window(buf)
                    view = bytes(view)
                    self.kept = view
            """
        },
        rules=["A006"],
    )
    assert findings == []


def test_generic_names_not_borrow_sources(analyze):
    # dict.get / file.read etc. must not register as view functions even
    # when an in-tree method of that name is view-annotated.
    findings = analyze(
        {
            "mod.py": """
            class Store:
                def get(self, key) -> memoryview: ...

            class Holder:
                def __init__(self):
                    self.kept = None

                def stash(self, options):
                    value = options.get("mode")
                    self.kept = value
            """
        },
        rules=["A006"],
    )
    assert findings == []
