"""A005: inconsistent lock acquisition order and non-reentrant re-entry."""

from tests.analysis.conftest import findings_for


def _fixture_findings():
    return [f for f in findings_for("A005") if f.path.endswith("locks.py")]


def test_ab_ba_cycle_fires():
    cycles = [f for f in _fixture_findings() if "cycle" in f.message]
    assert cycles
    assert "Deadlocker._a" in cycles[0].message and "Deadlocker._b" in cycles[0].message


def test_nonreentrant_reacquisition_fires():
    found = [f for f in _fixture_findings() if "re-acquisition" in f.message]
    assert any("Reenterer._mutex" in f.message for f in found)


def test_rlock_reacquisition_is_clean():
    assert not any("SafeReenterer" in f.message for f in _fixture_findings())


def test_consistent_nesting_order_is_clean(analyze):
    findings = analyze(
        {
            "mod.py": """
            import threading

            class Ordered:
                def __init__(self):
                    self._outer = threading.Lock()
                    self._inner = threading.Lock()

                def path_one(self):
                    with self._outer:
                        with self._inner:
                            pass

                def path_two(self):
                    with self._outer:
                        with self._inner:
                            pass
            """
        },
        rules=["A005"],
    )
    assert findings == []


def test_interprocedural_cycle_detected(analyze):
    # forward() nests a->b lexically; backward() holds b and calls a helper
    # that takes a.  The edge through the call must close the cycle.
    findings = analyze(
        {
            "mod.py": """
            import threading

            class Tangled:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        self.take_a()

                def take_a(self):
                    with self._a:
                        pass
            """
        },
        rules=["A005"],
    )
    assert any("cycle" in f.message for f in findings)


def test_real_tree_has_no_lock_cycles():
    from pathlib import Path

    src = Path(__file__).resolve().parents[2] / "src" / "repro"
    assert findings_for("A005", paths=[src]) == []
