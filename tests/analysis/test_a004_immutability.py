"""A004: wire-facing dataclasses must be frozen + slots, no mutable defaults."""

from tests.analysis.conftest import findings_for


def _fixture_findings():
    return [f for f in findings_for("A004") if f.path.endswith("messages.py")]


def test_unfrozen_dataclass_fires():
    assert any("LooseMessage" in f.message for f in _fixture_findings())


def test_frozen_without_slots_fires():
    found = [f for f in _fixture_findings() if "HalfLockedMessage" in f.message]
    assert found and "slots" in found[0].message


def test_mutable_default_fires():
    assert any("MutableDefaultMessage" in f.message for f in _fixture_findings())


def test_sealed_dataclass_is_clean():
    assert not any("SealedMessage" in f.message for f in _fixture_findings())


def test_non_wire_module_not_in_scope(analyze):
    findings = analyze(
        {
            "internals.py": """
            from dataclasses import dataclass

            @dataclass
            class ScratchState:
                cursor: int = 0
            """
        },
        rules=["A004"],
    )
    assert findings == []


def test_real_messages_module_is_sealed():
    from pathlib import Path

    messages = Path(__file__).resolve().parents[2] / "src" / "repro" / "kera" / "messages.py"
    assert findings_for("A004", paths=[messages]) == []


def test_wire_view_without_slots_fires(analyze):
    findings = analyze(
        {
            "wire/__init__.py": "",
            "wire/badviews.py": """
            class LeakyView:
                def __init__(self, buf):
                    self.buf = buf
            """,
        },
        rules=["A004"],
    )
    assert any("LeakyView" in f.message and "__slots__" in f.message for f in findings)


def test_wire_view_with_slots_is_clean(analyze):
    findings = analyze(
        {
            "wire/__init__.py": "",
            "wire/goodviews.py": """
            class TightView:
                __slots__ = ("buf",)

                def __init__(self, buf):
                    self.buf = buf
            """,
        },
        rules=["A004"],
    )
    assert findings == []


def test_non_view_wire_class_not_in_scope(analyze):
    # Only *View classes carry the hot-path slots contract; helpers like
    # builders are governed by review, not the rule.
    findings = analyze(
        {
            "wire/__init__.py": "",
            "wire/helpers.py": """
            class FrameScratch:
                def __init__(self):
                    self.bytes_used = 0
            """,
        },
        rules=["A004"],
    )
    assert findings == []


def test_view_outside_wire_package_not_in_scope(analyze):
    findings = analyze(
        {
            "display.py": """
            class TableView:
                def __init__(self, rows):
                    self.rows = rows
            """
        },
        rules=["A004"],
    )
    assert findings == []


def test_real_wire_views_module_is_sealed():
    from pathlib import Path

    views = Path(__file__).resolve().parents[2] / "src" / "repro" / "wire" / "views.py"
    assert findings_for("A004", paths=[views]) == []
