"""A008: boundary crossings must re-validate CRC before decode."""

from tests.analysis.conftest import findings_for


def _fixture_findings():
    return [f for f in findings_for("A008") if f.path.endswith("boundary.py")]


def test_ring_read_decode_fires():
    found = [f for f in _fixture_findings() if "ring read" in f.message]
    assert found and ".records()" in found[0].message


def test_read_bytes_decode_fires():
    found = [f for f in _fixture_findings() if ".read_bytes()" in f.message]
    assert found and "decode_chunk(verify=False)" in found[0].message


def test_file_handle_read_decode_fires():
    found = [f for f in _fixture_findings() if "fh.read()" in f.message]
    assert found and "chunks(verify=False)" in found[0].message


def test_reader_reopen_decode_fires():
    found = [f for f in _fixture_findings() if "re-read" in f.message]
    assert found and ".record_views()" in found[0].message


def test_verify_payload_clears_taint():
    assert all(
        "validated_before_decode" not in f.message
        and f.line not in range(77, 90)
        for f in _fixture_findings()
    )


def test_sanitizer_helper_clears_taint():
    # sanitized_by_helper calls check_crc (a crc32c-bearing function).
    paths_lines = {(f.path, f.line) for f in _fixture_findings()}
    assert not any(line in range(91, 96) for _, line in paths_lines)


def test_verify_true_and_forwarded_are_clean():
    msgs = [f.message for f in _fixture_findings()]
    assert len(_fixture_findings()) == 4, msgs


def test_justified_noqa_suppresses():
    # `silenced` carries a justified `# noqa: A008`.
    assert all(f.line < 100 for f in _fixture_findings())


def test_subscript_propagates_taint(analyze):
    findings = analyze(
        {
            "mod.py": """
            def serve(path):
                raw = path.read_bytes()
                head = raw[0:44]
                return decode_chunk(head, verify=False)
            """
        },
        rules=["A008"],
    )
    assert len(findings) == 1


def test_default_verify_is_trusted(analyze):
    findings = analyze(
        {
            "mod.py": """
            def serve(path):
                raw = path.read_bytes()
                return decode_chunk(raw)
            """
        },
        rules=["A008"],
    )
    assert findings == []


def test_untainted_receiver_is_clean(analyze):
    # verify=False on in-memory bytes the process built itself is the
    # documented same-address-space fast path, not a boundary violation.
    findings = analyze(
        {
            "mod.py": """
            def serve(builder):
                frame = builder.build()
                return decode_chunk(frame, verify=False)
            """
        },
        rules=["A008"],
    )
    assert findings == []


def test_view_construction_carries_taint(analyze):
    findings = analyze(
        {
            "mod.py": """
            class ChunkView:
                def records(self):
                    return []

            def serve(path):
                raw = path.read_bytes()
                view = ChunkView(raw)
                return view.records()
            """
        },
        rules=["A008"],
    )
    assert len(findings) == 1
