"""A002: no wall-clock / threading / unseeded randomness reachable from sim."""

from tests.analysis.conftest import findings_for


def _clock_findings():
    return [f for f in findings_for("A002") if f.path.endswith("clock.py")]


def test_wall_clock_reachable_from_sim_fires():
    assert any("time.time" in f.message for f in _clock_findings())


def test_threading_reachable_from_sim_fires():
    assert any("threading" in f.message for f in _clock_findings())


def test_unseeded_random_reachable_from_sim_fires():
    assert any("random.random" in f.message for f in _clock_findings())


def test_finding_carries_reachability_witness():
    # The message must explain *why* the module is sim-constrained.
    assert all("reachable from sim root" in f.message for f in _clock_findings())


def test_seeded_random_instance_is_clean():
    # brokenpkg/sim/engine.py line 9 uses random.Random(seed)
    engine = [f for f in findings_for("A002") if f.path.endswith("engine.py")]
    assert all(f.line != 9 for f in engine)


def test_module_not_reachable_from_sim_is_clean(analyze):
    findings = analyze(
        {
            "pkg/__init__.py": "",
            "pkg/wallclock.py": """
            import time

            def now():
                return time.time()
            """,
        },
        rules=["A002"],
    )
    assert findings == []


def test_type_checking_import_does_not_taint(analyze):
    findings = analyze(
        {
            "pkg/__init__.py": "",
            "pkg/sim/__init__.py": "",
            "pkg/sim/core.py": """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from pkg.helpers import Helper

            def run():
                return 1
            """,
            "pkg/helpers.py": """
            import time

            def tick():
                return time.time()
            """,
        },
        rules=["A002"],
    )
    assert findings == []


def test_direct_sim_module_violation(analyze):
    findings = analyze(
        {
            "pkg/__init__.py": "",
            "pkg/sim/__init__.py": "",
            "pkg/sim/core.py": """
            import time

            def now():
                return time.sleep(1)
            """,
        },
        rules=["A002"],
    )
    assert any(f.rule == "A002" for f in findings)


def test_builtin_open_reachable_from_sim_fires():
    assert any("builtin `open`" in f.message for f in _clock_findings())


def test_os_module_reachable_from_sim_fires():
    msgs = [f.message for f in _clock_findings()]
    assert any("import of `os`" in m for m in msgs)
    assert any("use of `os.fsync`" in m for m in msgs)


def test_path_write_reachable_from_sim_fires():
    assert any(".write_text(...)" in f.message for f in _clock_findings())


def test_file_io_not_reachable_from_sim_is_clean(analyze):
    # Real disk writes are fine anywhere the sim cannot reach.
    findings = analyze(
        {
            "pkg/__init__.py": "",
            "pkg/storage.py": """
            import os

            def persist(path, data):
                with open(path, "wb") as fh:
                    fh.write(data)
                    os.fsync(fh.fileno())
            """,
        },
        rules=["A002"],
    )
    assert findings == []


def test_socket_import_reachable_from_sim_fires():
    msgs = [f.message for f in _clock_findings()]
    assert any("import of `socket` (real networking)" in m for m in msgs)
    assert any("use of `socket.create_connection`" in m for m in msgs)


def test_asyncio_reachable_from_sim_fires():
    msgs = [f.message for f in _clock_findings()]
    assert any("import of `asyncio` (real networking)" in m for m in msgs)
    assert any("use of `asyncio.run`" in m for m in msgs)


def test_lazy_selectors_import_reachable_from_sim_fires():
    # Function-level imports execute at call time; they taint all the same.
    assert any(
        "import of `selectors.DefaultSelector`" in f.message
        for f in _clock_findings()
    )


def test_networking_not_reachable_from_sim_is_clean(analyze):
    # The socket transport and gateway live outside the sim's import
    # reach; real sockets are fine there.
    findings = analyze(
        {
            "pkg/__init__.py": "",
            "pkg/transport.py": """
            import asyncio
            import socket

            def dial(host, port):
                return socket.create_connection((host, port))

            def serve(coro):
                return asyncio.run(coro)
            """,
        },
        rules=["A002"],
    )
    assert findings == []


def test_socket_in_sim_module_fires(analyze):
    findings = analyze(
        {
            "pkg/__init__.py": "",
            "pkg/sim/__init__.py": "",
            "pkg/sim/net.py": """
            import socket

            def dial(host, port):
                return socket.create_connection((host, port))
            """,
        },
        rules=["A002"],
    )
    assert any("real networking" in f.message for f in findings)


def test_file_io_in_sim_module_fires(analyze):
    findings = analyze(
        {
            "pkg/__init__.py": "",
            "pkg/sim/__init__.py": "",
            "pkg/sim/core.py": """
            def checkpoint(path, state):
                path.write_bytes(state)
            """,
        },
        rules=["A002"],
    )
    assert any("write_bytes" in f.message for f in findings)
