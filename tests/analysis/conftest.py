"""Shared helpers for the repro.analysis rule tests.

Two ways to drive the linter:

- ``FIXTURES`` points at the deliberately broken package under
  ``tests/analysis/fixtures/``; it violates every rule at least once and is
  the positive corpus for the per-rule tests.
- The ``analyze`` fixture materialises inline snippets into a tmp package
  and runs ``run_analysis`` on them, for negatives and targeted positives
  that would clutter the shared fixture package.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import run_analysis

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def findings_for(rule: str, paths=None):
    """Run a single rule over the broken fixture package (or given paths)."""
    return run_analysis(paths if paths is not None else [FIXTURES], rule_ids=[rule])


@pytest.fixture
def analyze(tmp_path):
    """Write ``{relpath: source}`` snippets under tmp_path and analyze them."""

    def _run(files: dict[str, str], rules: list[str] | None = None):
        for rel, src in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(src))
        return run_analysis([tmp_path], rule_ids=rules)

    return _run
