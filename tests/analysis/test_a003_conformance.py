"""A003: Transport / SystemAdapter / LiveService structural conformance."""

from tests.analysis.conftest import findings_for


def _fixture_findings():
    return [f for f in findings_for("A003") if f.path.endswith("transports.py")]


def test_missing_required_method_fires():
    found = [f for f in _fixture_findings() if "IncompleteTransport" in f.message]
    assert found and "call" in found[0].message


def test_renamed_positional_parameter_fires():
    found = [f for f in _fixture_findings() if "DriftedTransport.register" in f.message]
    assert any("positional parameters" in f.message for f in found)


def test_dropped_keyword_only_parameter_fires():
    found = [f for f in _fixture_findings() if "DriftedTransport.register" in f.message]
    assert any("workers" in f.message for f in found)


def test_service_signature_drift_fires():
    assert any("DriftedService.handle" in f.message for f in _fixture_findings())


def test_conforming_transport_is_clean():
    assert not any("ConformingTransport" in f.message for f in _fixture_findings())


def test_subclass_through_intermediate_base_checked(analyze):
    findings = analyze(
        {
            "mod.py": """
            class Transport:
                def register(self, node_id, name, service, *, workers=None): ...
                def call(self, src, dst, service, method, request, request_bytes=0): ...
                def start(self): ...
                def shutdown(self): ...

            class BaseTransport(Transport):
                def register(self, node_id, name, service, *, workers=None): ...
                def call(self, src, dst, service, method, request, request_bytes=0): ...

            class LeafTransport(BaseTransport):
                def call(self, wrong_name, dst, service, method, request, request_bytes=0): ...
            """
        },
        rules=["A003"],
    )
    assert any("LeafTransport.call" in f.message for f in findings)


def test_real_tree_transports_conform():
    from pathlib import Path

    src = Path(__file__).resolve().parents[2] / "src" / "repro"
    assert findings_for("A003", paths=[src]) == []


def test_call_async_missing_on_done_fires(analyze):
    findings = analyze(
        {
            "mod.py": """
            class Transport:
                def call_async(self, src, dst, service, method, request,
                               request_bytes=0, *, on_done): ...

            class BadTransport(Transport):
                def call_async(self, src, dst, service, method, request,
                               request_bytes=0): ...
            """
        },
        rules=["A003"],
    )
    assert any(
        "BadTransport.call_async" in f.message and "on_done" in f.message
        for f in findings
    )


def test_credit_signature_drift_fires(analyze):
    findings = analyze(
        {
            "mod.py": """
            class Transport:
                def credit(self, dst, service): ...

            class BadTransport(Transport):
                def credit(self, node, service): ...
            """
        },
        rules=["A003"],
    )
    assert any("BadTransport.credit" in f.message for f in findings)


def test_socket_transport_surface_pinned_by_name():
    # The fixture's fake SocketTransport drifts `listen_address` and
    # drops `connection_count`; the rule pins the surface by class name
    # alone, no base class required.
    found = [f for f in _fixture_findings() if "SocketTransport" in f.message]
    assert any(
        "listen_address" in f.message and "positional parameters" in f.message
        for f in found
    )
    assert any(
        "connection_count" in f.message and "missing" in f.message for f in found
    )


def test_socket_transport_transport_methods_stay_in_lockstep(analyze):
    # The pinned spec repeats the Transport methods verbatim, so a drift
    # in `call` fires even on a class that never derives Transport.
    findings = analyze(
        {
            "mod.py": """
            class SocketTransport:
                def register(self, node_id, name, service, *, workers=None): ...
                def call(self, source, dst, service, method, request,
                         request_bytes=0): ...
                def call_async(self, src, dst, service, method, request,
                               request_bytes=0, *, on_done=None): ...
                def credit(self, dst, service): ...
                def start(self): ...
                def shutdown(self): ...
                def listen_address(self): ...
                def connection_count(self): ...
            """
        },
        rules=["A003"],
    )
    assert any(
        "SocketTransport.call" in f.message and "positional parameters" in f.message
        for f in findings
    )


def test_pipelined_shipper_surface_pinned(analyze):
    findings = analyze(
        {
            "mod.py": """
            class PipelinedShipper:
                def kick(self): ...
                def stop(self, timeout): ...
                def in_flight_batches(self): ...
            """
        },
        rules=["A003"],
    )
    assert any(
        "PipelinedShipper.stop" in f.message and "drifted" in f.message
        for f in findings
    )
