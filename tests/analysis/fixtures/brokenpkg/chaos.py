"""A002 fixture: a chaos harness that must never ride into the sim.

Mirrors the shape of ``repro.failover.chaos`` — process kills, kill-wait
polling, timer threads — so the golden findings pin that none of it can
become import-reachable from a sim root.
"""

import os
import signal
import threading
import time


def kill_worker(pid):
    os.kill(pid, signal.SIGKILL)


def wait_for_death(check):
    while not check():
        time.sleep(0.05)


def kill_later(pid, delay):
    timer = threading.Timer(delay, kill_worker, (pid,))
    timer.start()
    return timer
