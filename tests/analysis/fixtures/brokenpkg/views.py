"""A006 corpus: borrowed views escaping their owner's lifetime.

Four positive shapes — field store, return, closure capture, keyed
container store — plus the sanctioned negatives (declared field,
annotated return, bytes() copy, slice store).
"""


class SlabView:
    """A borrowed window; name makes it a view class for the registry."""

    __slots__ = ("raw",)

    def __init__(self, raw):
        self.raw = raw  # borrows: raw


class Slab:
    def __init__(self, backing):
        self._mem = memoryview(backing)  # borrows: backing
        self.stash = None
        self.cache = {}
        self.log = []
        self.ok_window = None  # borrows: _mem -- declared: dropped with the slab

    def window(self, start, end) -> memoryview:
        return self._mem[start:end]


class BadGrammar:
    def __init__(self):
        self.dangling = None  # borrows:


class Escapes:
    def __init__(self):
        self.kept = None
        self.by_key = {}
        self.rows = []

    def field_store(self, slab):
        view = slab.window(0, 8)
        self.kept = view  # ESCAPE: field store, no borrows declaration

    def bad_return(self, slab):
        view = memoryview(slab)
        return view  # ESCAPE: return without a view-like annotation

    def closure_capture(self, slab):
        view = slab.window(0, 8)

        def later():  # ESCAPE: closure outlives the borrow
            return view[0]

        return later

    def keyed_store(self, slab, key):
        view = SlabView(slab)
        self.by_key[key] = view  # ESCAPE: keyed container store

    def append_store(self, slab):
        view = slab.window(8, 16)
        self.rows.append(view)  # ESCAPE: container-method store


class Sanctioned:
    def __init__(self, backing):
        self.copied = None
        self.blessed = None  # borrows: backing -- lifetime-coupled by contract

    def declared_field(self, slab):
        view = slab.window(0, 8)
        self.blessed = view  # ok: field carries a borrows declaration

    def annotated_return(self, slab) -> memoryview:
        view = slab.window(0, 8)
        return view  # ok: the annotation documents the hand-off

    def copy_escape(self, slab):
        view = slab.window(0, 8)
        self.copied = bytes(view)  # ok: materialized copy owns its bytes

    def slice_copy(self, slab, scratch):
        view = slab.window(0, 8)
        scratch[0:8] = view  # ok: slice assignment copies content

    def marked_line(self, slab):
        view = slab.window(0, 8)
        self.copied = view  # borrows: slab -- caller drops self before slab

    def silenced(self, slab):
        view = slab.window(0, 8)
        self.copied = view  # noqa: A006 -- exercised by the suppression test
