"""A008 corpus: boundary bytes decoded without CRC re-validation.

Positive shapes — ring read into an unverified records() decode,
``read_bytes`` into ``decode_chunk(verify=False)``, raw file-handle read
into ``chunks(verify=False)``, a ``*Reader.open`` re-read decoded
unverified — plus the sanctioned negatives (verify_payload first,
sanitizer helper, ``verify=True``, forwarded ``verify=verify``).

The module is analyzed, never imported: names like ``crc32c`` and
``decode_chunk`` deliberately resolve only by shape.
"""


def check_crc(buf):
    """Sanitizer: recomputes the checksum over the bytes."""
    return crc32c(buf)  # noqa: F821


class FrameView:
    __slots__ = ("raw", "verified")

    def __init__(self, raw):
        self.raw = raw  # borrows: raw
        self.verified = False

    def verify_payload(self):
        self.verified = True

    def records(self):
        return []

    def record_views(self):
        return []


class WireRing:
    def __init__(self, buf):
        self.buf = buf

    def try_read(self):
        return None

    def consume(self):
        pass


def decode_from_ring(buf):
    ring = WireRing(buf)
    record = ring.try_read()
    if record is None:
        return None
    try:
        view = FrameView(record[1])
        found = view.records()  # TAINT: ring bytes decoded, no CRC re-check
    finally:
        ring.consume()
    return found


def decode_from_file(path):
    raw = path.read_bytes()
    return decode_chunk(raw, verify=False)  # noqa: F821 -- TAINT: disk bytes, verify skipped


def decode_from_handle(path):
    with open(path, "rb") as fh:
        data = fh.read()
    frame = FrameView(data)
    return frame.chunks(verify=False)  # TAINT: raw read, verify skipped


def decode_reread(path):
    reader = SegmentReader.open(path)  # noqa: F821
    return reader.record_views()  # TAINT: re-read bytes never re-validated


def validated_before_decode(buf):
    ring = WireRing(buf)
    record = ring.try_read()
    if record is None:
        return None
    try:
        view = FrameView(record[1])
        view.verify_payload()
        found = view.records()  # ok: CRC re-earned this side of the boundary
    finally:
        ring.consume()
    return found


def sanitized_by_helper(path):
    raw = path.read_bytes()
    check_crc(raw)
    return decode_chunk(raw, verify=False)  # noqa: F821 -- ok: helper validated these bytes


def verified_decode(path):
    raw = path.read_bytes()
    return decode_chunk(raw, verify=True)  # noqa: F821 -- ok: decode validates inline


def forwarded_verify(path, verify):
    raw = path.read_bytes()
    return decode_chunk(raw, verify=verify)  # noqa: F821 -- ok: caller's contract forwarded


def silenced(path):
    raw = path.read_bytes()
    return decode_chunk(raw, verify=False)  # noqa: A008 -- exercised by the suppression test