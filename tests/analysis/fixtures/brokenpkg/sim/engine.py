"""A002 fixture: a sim-rooted module importing nondeterminism."""

import random

from brokenpkg import clock


def seeded_draw(seed):
    return random.Random(seed).random()  # clean: seeded instance


def now():
    return clock.wall_now()
