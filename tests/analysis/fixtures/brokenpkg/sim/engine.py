"""A002 fixture: a sim-rooted module importing nondeterminism."""

import random

from brokenpkg import chaos, clock


def seeded_draw(seed):
    return random.Random(seed).random()  # clean: seeded instance


def now():
    return clock.wall_now()


def recover(pid):
    # A sim engine reaching for the chaos harness drags in os/signal/
    # threading/time — exactly the leak A002 exists to catch.
    return chaos.kill_later(pid, 1.0)
