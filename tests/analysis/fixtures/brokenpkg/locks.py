"""A005 fixture: lock-order cycle and non-reentrant re-acquisition."""

import threading


class Deadlocker:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forward(self):
        with self._a:
            with self._b:
                pass

    def backward(self):
        with self._b:
            with self._a:
                pass


class Reenterer:
    def __init__(self):
        self._mutex = threading.Lock()

    def outer_entry(self):
        with self._mutex:
            self.inner_helper()

    def inner_helper(self):
        with self._mutex:
            pass


class SafeReenterer:
    def __init__(self):
        self._mutex = threading.RLock()

    def outer_entry_safe(self):
        with self._mutex:
            self.inner_helper_safe()

    def inner_helper_safe(self):
        with self._mutex:
            pass
