"""A003 fixture: transports drifting from the protocol surface."""

from repro.runtime.transport import LiveService, Transport


class IncompleteTransport(Transport):
    """Fires: required method `call` never implemented."""

    def register(self, node_id, name, service, *, workers=None):
        pass


class DriftedTransport(Transport):
    """Fires twice: renamed positional, dropped keyword-only param."""

    def register(self, node, name, service):
        pass

    def call(self, src, dst, service, method, request, request_bytes=0):
        pass


class ConformingTransport(Transport):
    """Clean: full surface, protocol signatures."""

    def register(self, node_id, name, service, *, workers=None):
        pass

    def call(self, src, dst, service, method, request, request_bytes=0):
        pass


class DriftedService(LiveService):
    """Fires: handle() signature does not match the protocol."""

    def handle(self, message):
        pass
