"""A003 fixture: transports drifting from the protocol surface."""

from repro.runtime.transport import LiveService, Transport


class IncompleteTransport(Transport):
    """Fires: required method `call` never implemented."""

    def register(self, node_id, name, service, *, workers=None):
        pass


class DriftedTransport(Transport):
    """Fires twice: renamed positional, dropped keyword-only param."""

    def register(self, node, name, service):
        pass

    def call(self, src, dst, service, method, request, request_bytes=0):
        pass


class ConformingTransport(Transport):
    """Clean: full surface, protocol signatures."""

    def register(self, node_id, name, service, *, workers=None):
        pass

    def call(self, src, dst, service, method, request, request_bytes=0):
        pass


class DriftedService(LiveService):
    """Fires: handle() signature does not match the protocol."""

    def handle(self, message):
        pass


class SocketTransport:
    """Fires twice: drifted `listen_address`, missing `connection_count`.

    The name alone is pinned — the rule treats any class called
    ``SocketTransport`` as the protocol definition and holds its full
    operator surface (Transport methods plus the listener accessors)
    still, no base class required.
    """

    def register(self, node_id, name, service, *, workers=None):
        pass

    def call(self, src, dst, service, method, request, request_bytes=0):
        pass

    def call_async(
        self, src, dst, service, method, request, request_bytes=0, *, on_done=None
    ):
        pass

    def credit(self, dst, service):
        pass

    def start(self):
        pass

    def shutdown(self):
        pass

    def listen_address(self, family):
        pass
