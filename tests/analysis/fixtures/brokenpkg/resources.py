"""A007 corpus: unbalanced acquire/release paths.

Positive shapes — leak on a raise path, leak on an early return, double
release, ring peek never consumed, reacquire-while-held — plus the
balanced negatives (try/finally, with-managed open, transfer to a
field, release on every branch, refined peek/consume).
"""


def might_fail():
    raise ValueError("boom")


class SlotRing:
    """Name registers ring-typed receivers for the fixture corpus."""

    def try_read(self):
        return None

    def read(self, timeout=None):
        return None

    def consume(self):
        pass


def leak_on_raise(pool):
    buf = pool.rent()
    might_fail()  # LEAK: raise path skips the release
    pool.release(buf)


def leak_on_early_return(pool, flag):
    buf = pool.rent()
    if flag:
        return None  # LEAK: early return without release
    pool.release(buf)
    return buf


def double_release(pool):
    buf = pool.rent()
    pool.release(buf)
    pool.release(buf)  # DOUBLE RELEASE


def reacquire_while_held(pool):
    fh = open("a.bin", "rb")
    fh = open("b.bin", "rb")  # LEAK: first handle overwritten while held
    fh.close()


def peek_never_consumed(buf):
    ring = SlotRing(buf)
    record = ring.try_read()
    if record is None:
        return None
    return record  # WEDGE: peeked record never consumed


def consume_without_peek(buf):
    ring = SlotRing(buf)
    ring.consume()  # consume with nothing peeked


def balanced_try_finally(pool):
    buf = pool.rent()
    try:
        might_fail()
    finally:
        pool.release(buf)


def balanced_with(path):
    with open(path, "rb") as fh:
        return fh.read()


class Keeper:
    def __init__(self, pool):
        self._scratch = pool.rent()  # ok: transferred to the field at birth

    def adopt(self, pool):
        buf = pool.rent()
        self._scratch = buf  # ok: ownership transferred to the field

    def guard_before_raise(self, pool, limit):
        buf = pool.rent()
        if len(buf) < limit:
            pool.release(buf)
            raise ValueError("scratch too small")
        self._scratch = buf


def balanced_peek(buf, sink):
    ring = SlotRing(buf)
    while True:
        record = ring.read(timeout=0.1)
        if record is None:
            break
        try:
            sink(record)
        finally:
            ring.consume()
    return None


def silenced_leak(pool):
    buf = pool.rent()  # noqa: A007 -- exercised by the suppression test
    might_fail()
    pool.release(buf)
