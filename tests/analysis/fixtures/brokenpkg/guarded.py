"""A001 fixture: unguarded mutation of guarded-by declared attributes."""

import threading


class SharedCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock
        self.items = []  # guarded-by: _lock
        self.ghost = 0  # guarded-by: _missing_lock

    def bump(self):
        self.count += 1  # fires: write outside the lock

    def push(self, x):
        self.items.append(x)  # fires: mutating call outside the lock

    def guarded_bump(self):
        with self._lock:
            self.count += 1  # clean: lexically inside the guard

    def silenced_without_reason(self):
        self.count = 0  # noqa: A001

    def silenced_with_reason(self):
        self.count = 0  # noqa: A001 -- reset only happens before threads start
