"""A002 fixture: nondeterminism helpers a sim module reaches."""

import random
import threading
import time


def wall_now():
    return time.time()


def jitter():
    return random.random()


def spawn(fn):
    thread = threading.Thread(target=fn)
    thread.start()
    return thread
