"""A002 fixture: nondeterminism helpers a sim module reaches."""

import asyncio
import os
import random
import socket
import threading
import time


def wall_now():
    return time.time()


def jitter():
    return random.random()


def spawn(fn):
    thread = threading.Thread(target=fn)
    thread.start()
    return thread


def persist(path, data):
    with open(path, "wb") as fh:
        fh.write(data)
        os.fsync(fh.fileno())


def note(path, text):
    path.write_text(text)


def dial(host, port):
    return socket.create_connection((host, port))


def serve(coro):
    return asyncio.run(coro)


def multiplex():
    from selectors import DefaultSelector

    return DefaultSelector()
