"""A002 fixture: nondeterminism helpers a sim module reaches."""

import os
import random
import threading
import time


def wall_now():
    return time.time()


def jitter():
    return random.random()


def spawn(fn):
    thread = threading.Thread(target=fn)
    thread.start()
    return thread


def persist(path, data):
    with open(path, "wb") as fh:
        fh.write(data)
        os.fsync(fh.fileno())


def note(path, text):
    path.write_text(text)
