"""A004 fixture: wire-facing dataclasses that are not locked down."""

from dataclasses import dataclass


@dataclass
class LooseMessage:
    """Fires: neither frozen nor slots."""

    request_id: int


@dataclass(frozen=True)
class HalfLockedMessage:
    """Fires: frozen but no slots."""

    request_id: int


@dataclass(frozen=True, slots=True)
class MutableDefaultMessage:
    """Fires: shared mutable default (never executed, only parsed)."""

    tags: list = []


@dataclass(frozen=True, slots=True)
class SealedMessage:
    """Clean."""

    request_id: int
