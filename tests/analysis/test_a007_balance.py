"""A007: acquire/release balance over all CFG paths."""

import ast
import textwrap

from tests.analysis.conftest import findings_for

from repro.analysis.balance import analyze_function
from repro.analysis.core import load_paths


def _fixture_findings():
    return [f for f in findings_for("A007") if f.path.endswith("resources.py")]


def test_leak_on_raise_path_fires():
    found = [
        f
        for f in _fixture_findings()
        if "leak_on_raise" in f.message and "exception path" in f.message
    ]
    assert found and found[0].line == 28


def test_leak_on_early_return_fires():
    found = [
        f
        for f in _fixture_findings()
        if "leak_on_early_return" in f.message and "return path" in f.message
    ]
    assert found


def test_finding_carries_path_trace():
    found = [f for f in _fixture_findings() if "leak_on_early_return" in f.message]
    assert found and "path: lines" in found[0].message


def test_double_release_fires():
    found = [f for f in _fixture_findings() if "double release" in f.message]
    assert found and found[0].line == 44


def test_reacquire_while_held_fires():
    found = [f for f in _fixture_findings() if "reassigned while still holding" in f.message]
    assert found


def test_unconsumed_peek_fires():
    found = [
        f for f in _fixture_findings() if "peek_never_consumed" in f.message
    ]
    assert found and "never consumed" in found[0].message


def test_consume_without_peek_fires():
    found = [f for f in _fixture_findings() if "no record peeked" in f.message]
    assert found


def test_balanced_negatives_are_clean():
    msgs = [f.message for f in _fixture_findings()]
    for clean_fn in (
        "balanced_try_finally",
        "balanced_with",
        "balanced_peek",
        "guard_before_raise",
        "adopt",
    ):
        assert not any(clean_fn in m for m in msgs), (clean_fn, msgs)


def test_justified_noqa_suppresses():
    assert all("silenced_leak" not in f.message for f in _fixture_findings())


def test_exception_caught_locally_is_balanced(analyze):
    findings = analyze(
        {
            "mod.py": """
            def use(pool):
                buf = pool.rent()
                try:
                    step()
                except Exception:
                    pass
                pool.release(buf)
            """
        },
        rules=["A007"],
    )
    assert findings == []


def test_narrow_handler_still_leaks_on_escape(analyze):
    findings = analyze(
        {
            "mod.py": """
            def use(pool):
                buf = pool.rent()
                try:
                    step()
                except ValueError:
                    pool.release(buf)
                    raise
                pool.release(buf)
            """
        },
        rules=["A007"],
    )
    # A non-ValueError escape path never reaches either release.
    assert any("exception path" in f.message for f in findings)


def test_release_in_finally_with_return_inside_try(analyze):
    findings = analyze(
        {
            "mod.py": """
            def use(pool):
                buf = pool.rent()
                try:
                    return step(buf)
                finally:
                    pool.release(buf)
            """
        },
        rules=["A007"],
    )
    assert findings == []


def test_annotated_shm_helper_is_an_acquire(analyze):
    findings = analyze(
        {
            "mod.py": """
            from multiprocessing import shared_memory

            def attach(name) -> shared_memory.SharedMemory: ...

            def use(name):
                shm = attach(name)
                step()
            """
        },
        rules=["A007"],
    )
    assert any("shared-memory segment" in f.message for f in findings)


def test_close_helper_releases(analyze):
    findings = analyze(
        {
            "mod.py": """
            from multiprocessing import shared_memory

            def attach(name) -> shared_memory.SharedMemory: ...

            def close_shm(shm):
                shm.close()

            def use(name):
                shm = attach(name)
                try:
                    step()
                finally:
                    close_shm(shm)
            """
        },
        rules=["A007"],
    )
    assert findings == []


def _analyze_src(src: str):
    import pathlib
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "mod.py"
        path.write_text(textwrap.dedent(src))
        modules = load_paths([path])
        module = modules.modules[0]
        fn = next(
            n
            for n in ast.walk(module.tree)
            if isinstance(n, ast.FunctionDef)
        )
        return analyze_function(module, fn, frozenset(), frozenset())


def test_analyze_function_reports_visited_count():
    findings, visited, bailed = _analyze_src(
        """
        def use(pool):
            buf = pool.rent()
            pool.release(buf)
        """
    )
    assert findings == [] and visited > 0 and not bailed
