"""The CLI contract: clean on the real tree, loud on the broken fixtures."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"
ALL_RULES = ("A001", "A002", "A003", "A004", "A005")


def _run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
    )


def test_real_tree_is_clean():
    proc = _run_cli(str(REPO / "src" / "repro"))
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_fixture_package_trips_every_rule():
    proc = _run_cli(str(FIXTURES))
    assert proc.returncode == 1
    for rule in ALL_RULES:
        assert rule in proc.stdout, f"{rule} did not fire on the fixture package"


def test_text_findings_are_machine_readable():
    proc = _run_cli(str(FIXTURES))
    payload = [line for line in proc.stdout.splitlines() if " A0" in line]
    assert payload
    for line in payload:
        location, _, _ = line.partition(": ")
        parts = location.rsplit(":", 2)
        assert len(parts) == 3 and parts[1].isdigit() and parts[2].isdigit(), line


def test_json_format_round_trips():
    proc = _run_cli(str(FIXTURES), "--format", "json")
    findings = json.loads(proc.stdout)
    assert {f["rule"] for f in findings} >= set(ALL_RULES)
    for f in findings:
        assert {"path", "line", "col", "rule", "message"} <= set(f)


def test_rule_selection():
    proc = _run_cli(str(FIXTURES), "--rules", "A004")
    assert proc.returncode == 1
    assert "A004" in proc.stdout
    assert "A005" not in proc.stdout


def test_unknown_rule_is_usage_error():
    proc = _run_cli(str(FIXTURES), "--rules", "A999")
    assert proc.returncode == 2


def test_list_rules():
    proc = _run_cli("--list-rules")
    assert proc.returncode == 0
    for rule in ALL_RULES:
        assert rule in proc.stdout
