"""The CLI contract: clean on the real tree, loud on the broken fixtures."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"
ALL_RULES = ("A001", "A002", "A003", "A004", "A005", "A006", "A007", "A008")
GOLDEN = Path(__file__).resolve().parent / "fixtures" / "expected.json"


def _run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
    )


def test_real_tree_is_clean():
    proc = _run_cli(str(REPO / "src" / "repro"))
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_fixture_package_trips_every_rule():
    proc = _run_cli(str(FIXTURES))
    assert proc.returncode == 1
    for rule in ALL_RULES:
        assert rule in proc.stdout, f"{rule} did not fire on the fixture package"


def test_text_findings_are_machine_readable():
    proc = _run_cli(str(FIXTURES))
    payload = [line for line in proc.stdout.splitlines() if " A0" in line]
    assert payload
    for line in payload:
        location, _, _ = line.partition(": ")
        parts = location.rsplit(":", 2)
        assert len(parts) == 3 and parts[1].isdigit() and parts[2].isdigit(), line


def test_json_format_round_trips():
    proc = _run_cli(str(FIXTURES), "--format", "json")
    findings = json.loads(proc.stdout)
    assert {f["rule"] for f in findings} >= set(ALL_RULES)
    for f in findings:
        assert {"path", "line", "col", "rule", "message"} <= set(f)


def test_rule_selection():
    proc = _run_cli(str(FIXTURES), "--rules", "A004")
    assert proc.returncode == 1
    assert "A004" in proc.stdout
    assert "A005" not in proc.stdout


def test_unknown_rule_is_usage_error():
    proc = _run_cli(str(FIXTURES), "--rules", "A999")
    assert proc.returncode == 2


def test_list_rules():
    proc = _run_cli("--list-rules")
    assert proc.returncode == 0
    for rule in ALL_RULES:
        assert rule in proc.stdout


def test_golden_json_matches_fixture_corpus():
    """The fixture corpus is a frozen contract: any rule change that adds,
    drops, or moves a finding must also update expected.json."""
    proc = _run_cli(str(FIXTURES), "--format", "json")
    findings = json.loads(proc.stdout)
    for f in findings:
        f["path"] = str(Path(f["path"]).resolve().relative_to(FIXTURES))
    findings.sort(key=lambda f: (f["path"], f["line"], f["col"], f["rule"]))
    expected = json.loads((FIXTURES / "expected.json").read_text())
    assert findings == expected


def test_changed_only_filters_to_touched_files(tmp_path):
    """--changed-only keeps whole-program analysis but only reports
    findings in files the current branch touched."""
    import shutil

    repo = tmp_path / "work"
    shutil.copytree(FIXTURES / "brokenpkg", repo / "pkg")

    def git(*args):
        subprocess.run(
            ["git", *args],
            cwd=repo,
            check=True,
            capture_output=True,
            env={**os.environ, "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
                 "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"},
        )

    git("init", "-b", "main")
    git("add", "-A")
    git("commit", "-m", "seed")
    # Touch exactly one file after the base commit.
    target = repo / "pkg" / "boundary.py"
    target.write_text(target.read_text() + "\n# touched\n")

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(repo),
         "--changed-only", "--diff-base", "HEAD", "--format", "json"],
        capture_output=True,
        text=True,
        env=env,
        cwd=repo,
    )
    findings = json.loads(proc.stdout)
    assert findings, proc.stderr
    assert {Path(f["path"]).name for f in findings} == {"boundary.py"}
