"""Termination and state-count bounds for A007's CFG walker.

The worklist explores (node, state) pairs; adversarial control flow —
deep try/finally nesting (whose lowering duplicates finally bodies per
continuation), loops with break/continue jumping into finally blocks,
wide branch ladders over many live resources — is where a naive path
walk explodes. These are property-style tests over generated program
families: the walker must terminate, stay under :data:`STATE_CAP`, and
grow sub-exponentially in the nesting depth.
"""

import ast
import textwrap

import pytest

from repro.analysis.balance import STATE_CAP, analyze_function
from repro.analysis.core import load_paths


def _analyze(src: str, tmp_path):
    path = tmp_path / "gen.py"
    path.write_text(textwrap.dedent(src))
    modules = load_paths([path])
    module = modules.modules[0]
    fn = next(
        n for n in ast.walk(module.tree) if isinstance(n, ast.FunctionDef)
    )
    return analyze_function(
        module, fn, frozenset({"ring"}), frozenset()
    )


def _nested_try_finally(depth: int) -> str:
    """try/finally towers: each level releases one of `depth` buffers."""
    lines = ["def use(pool):"]
    indent = "    "
    for i in range(depth):
        lines.append(f"{indent}buf{i} = pool.rent()")
        lines.append(f"{indent}try:")
        indent += "    "
    lines.append(f"{indent}step()")
    for i in reversed(range(depth)):
        indent = indent[:-4]
        lines.append(f"{indent}finally:")
        lines.append(f"{indent}    pool.release(buf{i})")
    return "\n".join(lines) + "\n"


def _loop_break_continue_finally(depth: int) -> str:
    """Loops whose break/continue edges route through finally blocks."""
    lines = ["def use(pool, items):"]
    indent = "    "
    for i in range(depth):
        lines.append(f"{indent}buf{i} = pool.rent()")
        lines.append(f"{indent}for item{i} in items:")
        lines.append(f"{indent}    try:")
        lines.append(f"{indent}        if item{i}:")
        lines.append(f"{indent}            continue")
        lines.append(f"{indent}        if not item{i}:")
        lines.append(f"{indent}            break")
        lines.append(f"{indent}    finally:")
        lines.append(f"{indent}        touch()")
        lines.append(f"{indent}pool.release(buf{i})")
    return "\n".join(lines) + "\n"


def _branch_ladder(width: int) -> str:
    """Independent if/else diamonds — the classic 2^n path family."""
    lines = ["def use(pool, flags):", "    buf = pool.rent()", "    try:"]
    for i in range(width):
        lines.append(f"        if flags[{i}]:")
        lines.append("            touch()")
        lines.append("        else:")
        lines.append("            touch()")
    lines.append("    finally:")
    lines.append("        pool.release(buf)")
    return "\n".join(lines) + "\n"


@pytest.mark.parametrize("depth", [1, 2, 4, 6, 8])
def test_nested_try_finally_terminates_balanced(depth, tmp_path):
    findings, visited, bailed = _analyze(_nested_try_finally(depth), tmp_path)
    assert not bailed
    assert visited < STATE_CAP
    assert findings == []


@pytest.mark.parametrize("depth", [1, 2, 4, 6])
def test_loops_with_break_continue_into_finally(depth, tmp_path):
    findings, visited, bailed = _analyze(
        _loop_break_continue_finally(depth), tmp_path
    )
    assert not bailed
    assert visited < STATE_CAP
    # Only the outermost buffers stay held when an inner `break` path
    # skips later releases; no double releases, no crashes.
    assert all("double release" not in f.message for f in findings)


@pytest.mark.parametrize("width", [4, 8, 16, 32])
def test_branch_ladder_states_stay_linear(width, tmp_path):
    """Same dataflow state on both diamond arms must merge: visited pairs
    grow linearly in the ladder width, not 2^width."""
    findings, visited, bailed = _analyze(_branch_ladder(width), tmp_path)
    assert not bailed
    assert findings == []
    assert visited <= 40 * (width + 2), visited


def test_state_growth_is_subexponential(tmp_path):
    previous = None
    for depth in (2, 4, 6):
        _, visited, bailed = _analyze(_nested_try_finally(depth), tmp_path)
        assert not bailed
        if previous is not None:
            # Doubling the depth must far undercut squaring the states.
            assert visited < previous * previous, (depth, visited, previous)
        previous = visited


def test_pathological_function_bails_not_hangs(tmp_path):
    """A function juggling many interleaved resources across many branch
    diamonds overflows the cap: the walker must bail out cleanly (no
    findings, bailed=True) rather than hang or explode."""
    lines = ["def use(pool, flags):"]
    for i in range(12):
        lines.append(f"    buf{i} = pool.rent()")
        lines.append(f"    if flags[{i}]:")
        lines.append(f"        pool.release(buf{i})")
    findings, visited, bailed = _analyze("\n".join(lines) + "\n", tmp_path)
    assert bailed
    assert findings == []
    assert visited <= STATE_CAP


def test_while_true_single_exit_terminates(tmp_path):
    findings, visited, bailed = _analyze(
        """
        def use(ring, sink):
            while True:
                record = ring.try_read()
                if record is None:
                    break
                try:
                    sink(record)
                finally:
                    ring.consume()
        """,
        tmp_path,
    )
    assert not bailed and findings == []
