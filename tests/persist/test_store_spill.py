"""SegmentPersistence: epoch layout, fsync accounting, spill, load."""

import pytest

from repro.common.errors import ReplicationError, StorageError
from repro.common.units import MB
from repro.persist import FlushPolicy, SegmentPersistence
from repro.replication.backup_store import BackupStore
from tests.persist.conftest import make_chunks


def fill_store(store, *, vsegs=3, chunks_per_vseg=6, src_broker=0, vlog_id=0):
    """Append ``vsegs`` consecutive virtual segments' worth of chunks."""
    per_vseg = []
    seq = 0
    for vseg in range(vsegs):
        batch = make_chunks(chunks_per_vseg, producer_id=1)
        # Re-stamp sequences so consecutive vsegs carry distinct chunks.
        batch = [
            type(c)(
                stream_id=c.stream_id,
                streamlet_id=c.streamlet_id,
                producer_id=c.producer_id,
                chunk_seq=seq + i,
                record_count=c.record_count,
                payload_len=c.payload_len,
                payload=c.payload,
            )
            for i, c in enumerate(batch)
        ]
        seq += chunks_per_vseg
        store.append_batch(
            src_broker=src_broker,
            vlog_id=vlog_id,
            vseg_id=vseg,
            chunks=batch,
            segment_capacity=1 * MB,
        )
        per_vseg.append(batch)
    return per_vseg


def drain_to_disk(store, persistence):
    for segment in store.take_just_sealed():
        nbytes = store.take_flush_work(segment)
        persistence.persist_region(segment, segment.flushed_bytes - nbytes, nbytes)
    for src in {key[0] for key in store._segments}:
        for segment in store.segments_for_broker(src):
            nbytes = store.take_flush_work(segment)
            if nbytes or (segment.sealed and not segment.spilled):
                persistence.persist_region(
                    segment, segment.flushed_bytes - nbytes, nbytes
                )


def test_write_epoch_is_lazy_and_monotonic(tmp_path):
    persistence = SegmentPersistence(tmp_path / "node0")
    assert not (tmp_path / "node0").exists()  # nothing until first flush
    assert persistence.epoch_dir().name == "epoch-0001"
    persistence.close()
    again = SegmentPersistence(tmp_path / "node0")
    assert again.epoch_dir().name == "epoch-0002"
    again.close()


def test_consumed_epochs_do_not_advance_numbering(tmp_path):
    root = tmp_path / "node0"
    first = SegmentPersistence(root)
    assert first.epoch_dir().name == "epoch-0001"
    first.close()
    (root / "epoch-0001").rename(root / "epoch-0001-consumed")
    # Consumed dirs are no longer epochs; numbering restarts above the rest.
    nxt = SegmentPersistence(root)
    assert nxt.epoch_dir().name == "epoch-0001"
    nxt.close()


def test_persist_rejects_out_of_order_regions(tmp_path):
    store = BackupStore(node_id=1, materialize=True)
    persistence = SegmentPersistence(tmp_path / "node1")
    (batch,) = fill_store(store, vsegs=1)
    (segment,) = store.segments_for_broker(0)
    nbytes = store.take_flush_work(segment)
    persistence.persist_region(segment, 0, nbytes)
    with pytest.raises(StorageError):
        persistence.persist_region(segment, nbytes + 10, 5)
    persistence.close()


def test_unsynced_accounting_follows_policy(tmp_path):
    store = BackupStore(node_id=1, materialize=True)
    persistence = SegmentPersistence(
        tmp_path / "node1", policy=FlushPolicy.parse("bytes:1000000")
    )
    fill_store(store, vsegs=1)
    (segment,) = store.segments_for_broker(0)
    nbytes = store.take_flush_work(segment)
    persistence.persist_region(segment, 0, nbytes)
    assert persistence.unsynced_bytes == nbytes  # below the byte threshold
    persistence.sync_all()
    assert persistence.unsynced_bytes == 0
    persistence.close()


def test_always_policy_syncs_every_region(tmp_path):
    store = BackupStore(node_id=1, materialize=True)
    persistence = SegmentPersistence(
        tmp_path / "node1", policy=FlushPolicy.parse("always")
    )
    fill_store(store, vsegs=1)
    (segment,) = store.segments_for_broker(0)
    nbytes = store.take_flush_work(segment)
    persistence.persist_region(segment, 0, nbytes)
    assert persistence.unsynced_bytes == 0
    persistence.close()


def test_spill_migrates_sealed_segments_out_of_memory(tmp_path):
    store = BackupStore(node_id=1, materialize=True, seal_on_rollover=True)
    persistence = SegmentPersistence(tmp_path / "node1", spill=True)
    per_vseg = fill_store(store, vsegs=3)
    drain_to_disk(store, persistence)
    # Rollover sealed vsegs 0 and 1; both must now live on disk only.
    segments = {s.vseg_id: s for s in store.segments_for_broker(0)}
    assert segments[0].spilled and segments[1].spilled
    assert not segments[2].spilled
    assert store.spilled_segments == 2
    assert store.bytes_in_memory == segments[2].bytes_held
    assert store.bytes_held == sum(s.bytes_held for s in segments.values())
    # Reads transparently fall back to the segment file, verified.
    for vseg_id, expected in enumerate(per_vseg):
        assert segments[vseg_id].chunks == expected
    # Appending to a spilled segment is a protocol violation.
    with pytest.raises(ReplicationError):
        store.append_batch(
            src_broker=0,
            vlog_id=0,
            vseg_id=0,
            chunks=make_chunks(1),
            segment_capacity=1 * MB,
        )
    assert persistence.spilled_segments == 2
    persistence.close()


def test_load_returns_newest_generation_and_retires(tmp_path):
    root = tmp_path / "node1"
    store = BackupStore(node_id=1, materialize=True)
    persistence = SegmentPersistence(root, policy=FlushPolicy.parse("always"))
    per_vseg = fill_store(store, vsegs=2)
    drain_to_disk(store, persistence)
    persistence.close()

    # A second incarnation writes nothing but loads the first's files.
    second = SegmentPersistence(root)
    report = second.load()
    assert sorted(seg.meta.vseg_id for seg in report.segments) == [0, 1]
    assert report.epochs_loaded == ["epoch-0001"]
    assert report.chunks_loaded == sum(len(b) for b in per_vseg)
    assert report.bytes_truncated == 0
    loaded = {seg.meta.vseg_id: seg.chunks for seg in report.segments}
    assert loaded[0] == per_vseg[0]
    assert loaded[1] == per_vseg[1]

    second.retire_loaded_epochs(report)
    assert not (root / "epoch-0001").exists()
    assert (root / "epoch-0001-consumed").is_dir()
    # A third load finds nothing: the generation was consumed.
    assert second.load().segments == []
    second.close()


def test_load_skips_unreadable_files_and_counts_them(tmp_path):
    root = tmp_path / "node1"
    store = BackupStore(node_id=1, materialize=True)
    persistence = SegmentPersistence(root, policy=FlushPolicy.parse("always"))
    fill_store(store, vsegs=2)
    drain_to_disk(store, persistence)
    persistence.close()
    # Corrupt one file's fixed header beyond recognition.
    victim = sorted((root / "epoch-0001").glob("*.seg"))[0]
    victim.write_bytes(b"\x00" * 64)

    report = SegmentPersistence(root).load()
    assert report.files_scanned == 2
    assert report.files_skipped == 1
    assert len(report.segments) == 1


def test_newer_epoch_supersedes_older(tmp_path):
    root = tmp_path / "node1"
    for generation in range(2):
        store = BackupStore(node_id=1, materialize=True)
        persistence = SegmentPersistence(root, policy=FlushPolicy.parse("always"))
        fill_store(store, vsegs=1, chunks_per_vseg=3 + generation)
        drain_to_disk(store, persistence)
        persistence.close()

    report = SegmentPersistence(root).load()
    assert report.files_superseded == 1
    assert sorted(report.epochs_loaded) == ["epoch-0002"]
    (segment,) = report.segments
    assert len(segment.chunks) == 4  # the newer generation's count


def test_load_reverifies_crc_on_second_read(tmp_path, monkeypatch):
    """Recovery validates the bytes *it* read, but load() decodes from a
    second, independent read of the file. A payload byte corrupted between
    the two passes (torn sector, concurrent truncation) must make load()
    skip the file — not hand back silently corrupt chunks.

    Regression: load() used to decode with ``verify=False`` on the stale
    strength of recovery's earlier pass.
    """
    import repro.persist.store as store_mod

    root = tmp_path / "node1"
    store = BackupStore(node_id=1, materialize=True)
    persistence = SegmentPersistence(root, policy=FlushPolicy.parse("always"))
    fill_store(store, vsegs=1)
    drain_to_disk(store, persistence)
    persistence.close()

    real_recover = store_mod.recover_segment_file

    def recover_then_corrupt(path, **kwargs):
        report = real_recover(path, **kwargs)
        # Flip one payload byte *after* recovery blessed the file.
        data = bytearray(path.read_bytes())
        data[-20] ^= 0xFF
        path.write_bytes(bytes(data))
        return report

    monkeypatch.setattr(store_mod, "recover_segment_file", recover_then_corrupt)
    report = SegmentPersistence(root).load()
    assert report.files_scanned == 1
    assert report.files_skipped == 1
    assert report.segments == [] and report.chunks_loaded == 0
