"""Shared helpers for durable-tier tests: real encoded chunk frames."""

import pytest

from repro.wire.chunk import Chunk, encode_chunk
from repro.wire.record import Record, encode_records


def make_chunks(n=20, *, records_per_chunk=3, value_size=40, producer_id=7):
    """``n`` self-describing chunks with real payloads and CRCs."""
    chunks = []
    for seq in range(n):
        records = [
            Record(value=bytes([seq % 251]) * value_size)
            for _ in range(records_per_chunk)
        ]
        payload = encode_records(records)
        chunks.append(
            Chunk(
                stream_id=1,
                streamlet_id=0,
                producer_id=producer_id,
                chunk_seq=seq,
                record_count=records_per_chunk,
                payload_len=len(payload),
                payload=payload,
            )
        )
    return chunks


def frames_for(chunks):
    return [bytes(encode_chunk(c)) for c in chunks]


@pytest.fixture
def chunks():
    return make_chunks()


@pytest.fixture
def frames(chunks):
    return frames_for(chunks)
