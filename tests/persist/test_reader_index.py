"""Offset-index rebuild on disk recovery: recovered segment files answer
positioned reads through the same dense index the broker builds at
append time."""

import pytest

from repro.common.errors import StorageError
from repro.persist import (
    SegmentFileMeta,
    SegmentFileReader,
    SegmentFileWriter,
    recover_segment_file,
)
from repro.storage.index import SegmentOffsetIndex
from repro.wire.chunk import ChunkBuilder
from repro.wire.record import Record


def make_frame(seq, n_records):
    builder = ChunkBuilder(1 << 16, stream_id=1, streamlet_id=0, producer_id=0)
    for i in range(n_records):
        assert builder.try_append(Record(value=f"c{seq}-r{i}".encode()))
    return bytes(builder.build(chunk_seq=seq).wire)


@pytest.fixture
def seg_file(tmp_path):
    path = tmp_path / "b0_v1_s0.seg"
    meta = SegmentFileMeta(src_broker=0, vlog_id=1, vseg_id=0, capacity=1 << 20)
    writer = SegmentFileWriter(path, meta)
    frames = [make_frame(seq, n_records=3 + seq) for seq in range(6)]
    for frame in frames:
        writer.append(memoryview(frame))
    writer.close(sync=True)
    return path, frames


def test_offset_index_rebuilt_over_recovered_frames(seg_file):
    path, frames = seg_file
    recover_segment_file(path)
    reader = SegmentFileReader.open(path)
    index = reader.offset_index()
    assert index.frame_count == 6
    assert index.record_count == sum(3 + s for s in range(6))
    assert reader.record_count == index.record_count
    assert reader.offset_index() is index  # memoized, built once


def test_read_at_serves_verbatim_frame(seg_file):
    path, frames = seg_file
    recover_segment_file(path)
    reader = SegmentFileReader.open(path)
    # Record 7 lives in frame 2 (frames hold 3, 4, 5, ... records).
    assert bytes(reader.read_at(7)) == frames[2]
    view = reader.view_at(7)
    assert not view.verified  # disk bytes must re-earn the CRC bit
    view.verify_payload()
    assert view.records()[0].value == b"c2-r0"


def test_read_at_out_of_range_raises(seg_file):
    path, _ = seg_file
    reader = SegmentFileReader.open(path)
    with pytest.raises(StorageError):
        reader.read_at(reader.record_count)


def test_rebuild_matches_reference_over_same_bytes(seg_file):
    path, frames = seg_file
    reader = SegmentFileReader.open(path)
    reference = SegmentOffsetIndex.rebuild(b"".join(frames))
    rebuilt = reader.offset_index()
    assert rebuilt.frame_count == reference.frame_count
    for i in range(reference.frame_count):
        assert rebuilt.frame_range(i) == reference.frame_range(i)


def test_loaded_segments_carry_rebuilt_index(tmp_path):
    """SegmentPersistence.load hands every loaded segment its dense
    offset index alongside the decoded chunks."""
    from repro.persist import SegmentPersistence

    root = tmp_path / "node0"
    epoch = root / "epoch-0001"
    epoch.mkdir(parents=True)
    meta = SegmentFileMeta(src_broker=2, vlog_id=0, vseg_id=1, capacity=1 << 20)
    writer = SegmentFileWriter(epoch / "b2_v0_s1.seg", meta)
    for seq in range(4):
        writer.append(memoryview(make_frame(seq, n_records=5)))
    writer.close(sync=True)

    store = SegmentPersistence(root)
    report = store.load()
    assert len(report.segments) == 1
    loaded = report.segments[0]
    assert loaded.index.frame_count == 4
    assert loaded.index.record_count == 20
    assert loaded.index.record_count == sum(c.record_count for c in loaded.chunks)


def test_torn_tail_truncated_index_covers_survivors(seg_file):
    path, frames = seg_file
    raw = path.read_bytes()
    # Tear mid-way through the last frame.
    path.write_bytes(raw[: len(raw) - len(frames[-1]) // 2])
    recovered = recover_segment_file(path)
    assert recovered.chunk_count == 5
    reader = SegmentFileReader.open(path)
    index = reader.offset_index()
    assert index.frame_count == 5
    assert index.record_count == sum(3 + s for s in range(5))
    assert bytes(reader.read_at(index.record_count - 1)) == frames[4]
