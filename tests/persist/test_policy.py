"""FlushPolicy: parse, decide, round-trip — no filesystem involved."""

import pytest

from repro.common.errors import ConfigError
from repro.persist import FlushMode, FlushPolicy
from repro.replication.config import ReplicationConfig


def test_parse_simple_modes():
    assert FlushPolicy.parse("never").mode is FlushMode.NEVER
    assert FlushPolicy.parse("always").mode is FlushMode.ALWAYS
    assert FlushPolicy.parse(" ALWAYS ").mode is FlushMode.ALWAYS


def test_parse_interval_converts_ms():
    policy = FlushPolicy.parse("interval:50")
    assert policy.mode is FlushMode.INTERVAL
    assert policy.interval_s == pytest.approx(0.05)


def test_parse_bytes_and_alias():
    assert FlushPolicy.parse("bytes:4096").every_bytes == 4096
    alias = FlushPolicy.parse("every_n_bytes:512")
    assert alias.mode is FlushMode.EVERY_N_BYTES
    assert alias.every_bytes == 512


@pytest.mark.parametrize(
    "spec",
    [
        "fsync",
        "interval",
        "interval:zero",
        "interval:-5",
        "bytes",
        "bytes:x",
        "bytes:0",
        "never:3",
        "always:1",
    ],
)
def test_parse_rejects_bad_specs(spec):
    with pytest.raises(ValueError):
        FlushPolicy.parse(spec)


@pytest.mark.parametrize(
    "spec", ["never", "always", "interval:50", "bytes:4096", "interval:12.5"]
)
def test_spec_roundtrips(spec):
    policy = FlushPolicy.parse(spec)
    assert FlushPolicy.parse(policy.spec()) == policy


def test_due_after_write():
    assert FlushPolicy.parse("always").due_after_write(1)
    assert not FlushPolicy.parse("never").due_after_write(1 << 30)
    by_bytes = FlushPolicy.parse("bytes:100")
    assert not by_bytes.due_after_write(99)
    assert by_bytes.due_after_write(100)
    # Interval syncs on the tick, never on the write path.
    assert not FlushPolicy.parse("interval:1").due_after_write(1 << 30)


def test_due_on_tick_interval_only():
    interval = FlushPolicy.parse("interval:50")
    assert not interval.due_on_tick(0.01, 10)
    assert interval.due_on_tick(0.06, 10)
    # Nothing unsynced: nothing to pay an fsync for.
    assert not interval.due_on_tick(0.06, 0)
    assert not FlushPolicy.parse("always").due_on_tick(10.0, 10)
    assert not FlushPolicy.parse("bytes:1").due_on_tick(10.0, 10)


def test_replication_config_validates_fsync_policy_structurally():
    # The config layer must reject junk without importing repro.persist.
    assert ReplicationConfig(fsync_policy="bytes:4096").fsync_policy == "bytes:4096"
    assert ReplicationConfig(fsync_policy="interval:10")
    with pytest.raises(ConfigError):
        ReplicationConfig(fsync_policy="bogus")
