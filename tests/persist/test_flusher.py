"""BackupFlusher: submission order, lag accounting, error latching."""

import threading
import time

import pytest

from repro.persist import BackupFlusher


def test_drains_in_submission_order():
    seen = []
    flusher = BackupFlusher(seen.append, name="t-order")
    for i in range(50):
        flusher.submit(i, nbytes=10)
    assert flusher.wait_idle(5.0)
    assert seen == list(range(50))
    assert flusher.flush_lag_bytes == 0
    flusher.stop()


def test_lag_gauge_tracks_queue():
    gate = threading.Event()

    def persist(_):
        gate.wait(5.0)

    flusher = BackupFlusher(persist, name="t-lag")
    flusher.submit("a", nbytes=100)
    flusher.submit("b", nbytes=50)
    # The first item may already be in flight (its bytes still count as
    # lag until persisted), so the gauge reads the full 150.
    assert flusher.flush_lag_bytes == 150
    gate.set()
    assert flusher.wait_idle(5.0)
    assert flusher.flush_lag_bytes == 0
    flusher.stop()


def test_persist_error_is_latched_and_reraised():
    def persist(work):
        raise OSError("disk on fire")

    flusher = BackupFlusher(persist, name="t-err")
    flusher.submit("x", nbytes=10)
    deadline = time.monotonic() + 5.0
    while flusher.error is None and time.monotonic() < deadline:
        time.sleep(0.001)
    assert flusher.error is not None
    with pytest.raises(RuntimeError):
        flusher.submit("y", nbytes=10)
    with pytest.raises(RuntimeError):
        flusher.check()
    with pytest.raises(RuntimeError):
        flusher.wait_idle(1.0)
    # Lag was refunded: nothing pretends to be durably queued.
    assert flusher.flush_lag_bytes == 0


def test_stop_drains_by_default():
    seen = []
    flusher = BackupFlusher(seen.append, name="t-drain")
    for i in range(20):
        flusher.submit(i, nbytes=1)
    flusher.stop(drain=True)
    assert seen == list(range(20))
    assert flusher.flush_lag_bytes == 0


def test_stop_without_drain_discards_and_refunds():
    gate = threading.Event()
    seen = []

    def persist(work):
        gate.wait(5.0)
        seen.append(work)

    flusher = BackupFlusher(persist, name="t-nodrain")
    for i in range(10):
        flusher.submit(i, nbytes=7)
    gate.set()
    flusher.stop(drain=False)
    assert flusher.flush_lag_bytes == 0
    assert len(seen) <= 10


def test_submit_after_stop_rejected():
    flusher = BackupFlusher(lambda w: None, name="t-stopped")
    flusher.stop()
    with pytest.raises(RuntimeError):
        flusher.submit("x", nbytes=1)


def test_on_tick_runs_when_idle():
    ticks = []
    flusher = BackupFlusher(lambda w: None, name="t-tick", on_tick=lambda: ticks.append(1))
    deadline = time.monotonic() + 5.0
    while not ticks and time.monotonic() < deadline:
        time.sleep(0.005)
    flusher.stop()
    assert ticks
