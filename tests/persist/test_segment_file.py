"""Segment file writer/reader: header, verbatim frames, sparse index."""

import pytest

from repro.common.errors import StorageError
from repro.persist import (
    SEG_FILE_HEADER_SIZE,
    SegmentFileMeta,
    SegmentFileReader,
    SegmentFileWriter,
)

META = SegmentFileMeta(src_broker=3, vlog_id=1, vseg_id=9, capacity=1 << 20)


def write_file(path, frames, *, index_interval=200, appends=None, sync=True):
    writer = SegmentFileWriter(path, META, index_interval=index_interval)
    if appends is None:
        appends = [b"".join(frames)]
    for region in appends:
        writer.append(region)
    writer.close(sync=sync)
    return writer


def test_meta_header_roundtrip():
    packed = META.pack()
    assert len(packed) == SEG_FILE_HEADER_SIZE
    assert SegmentFileMeta.unpack(packed) == META


def test_meta_header_rejects_corruption():
    packed = bytearray(META.pack())
    packed[8] ^= 0xFF  # src_broker byte: crc must catch it
    with pytest.raises(StorageError):
        SegmentFileMeta.unpack(bytes(packed))
    with pytest.raises(StorageError):
        SegmentFileMeta.unpack(packed[:10])


def test_writer_reader_roundtrip(tmp_path, chunks, frames):
    path = tmp_path / "b3_v1_s9.seg"
    # Several appends of several frames each: incremental flush regions.
    regions = [b"".join(frames[:7]), b"".join(frames[7:12]), b"".join(frames[12:])]
    writer = write_file(path, frames, appends=regions)
    assert writer.chunk_count == len(chunks)
    assert writer.file_bytes == path.stat().st_size
    reader = SegmentFileReader.open(path)
    assert reader.meta == META
    assert reader.chunk_count == len(chunks)
    assert reader.frame_bytes == sum(len(f) for f in frames)
    assert reader.chunks(verify=True) == chunks


def test_sparse_index_enables_point_lookup(tmp_path, chunks, frames):
    path = tmp_path / "seg.seg"
    write_file(path, frames, index_interval=200)
    reader = SegmentFileReader.open(path, index_interval=200)
    entries = reader.index_entries
    # Sparse: more than the initial entry, fewer than one per chunk.
    assert 1 < len(entries) < len(chunks)
    assert entries[0] == (0, SEG_FILE_HEADER_SIZE)
    for i in range(len(chunks)):
        assert reader.chunk_at(i) == chunks[i]
    with pytest.raises(StorageError):
        reader.chunk_at(len(chunks))
    with pytest.raises(StorageError):
        reader.chunk_at(-1)


def test_reader_rebuilds_missing_sidecar(tmp_path, chunks, frames):
    path = tmp_path / "seg.seg"
    write_file(path, frames, index_interval=200)
    with_sidecar = SegmentFileReader.open(path, index_interval=200).index_entries
    path.with_suffix(".idx").unlink()
    reader = SegmentFileReader.open(path, index_interval=200)
    assert reader.index_entries == with_sidecar
    assert reader.chunks() == chunks


def test_append_requires_frame_alignment(tmp_path, frames):
    writer = SegmentFileWriter(tmp_path / "x.seg", META)
    with pytest.raises(StorageError):
        writer.append(frames[0][:-3])  # partial payload
    with pytest.raises(StorageError):
        writer.append(b"\x00" * 64)  # not a chunk header
    writer.close()


def test_append_on_closed_writer_rejected(tmp_path, frames):
    writer = SegmentFileWriter(tmp_path / "x.seg", META)
    writer.close()
    assert writer.closed
    with pytest.raises(StorageError):
        writer.append(frames[0])


def test_empty_file_roundtrip(tmp_path):
    path = tmp_path / "empty.seg"
    write_file(path, [])
    reader = SegmentFileReader.open(path)
    assert reader.chunk_count == 0
    assert reader.chunks() == []
