"""Torn-write recovery: truncate mid-frame, flip CRC bytes, lose the
sidecar — the good frame prefix must always survive, exactly once."""

import random

import pytest

from repro.common.errors import StorageError
from repro.persist import (
    SEG_FILE_HEADER_SIZE,
    SegmentFileMeta,
    SegmentFileReader,
    SegmentFileWriter,
    recover_segment_file,
)
from tests.persist.conftest import frames_for, make_chunks

META = SegmentFileMeta(src_broker=0, vlog_id=2, vseg_id=4, capacity=1 << 20)
INTERVAL = 256


def write_segment(path, frames):
    writer = SegmentFileWriter(path, META, index_interval=INTERVAL)
    writer.append(b"".join(frames))
    writer.close(sync=True)


def recover(path):
    return recover_segment_file(path, index_interval=INTERVAL)


def test_intact_file_recovers_unchanged(tmp_path, chunks, frames):
    path = tmp_path / "seg.seg"
    write_segment(path, frames)
    before = path.read_bytes()
    report = recover(path)
    assert report.truncated_bytes == 0
    assert report.chunk_count == len(chunks)
    assert not report.index_rebuilt
    assert path.read_bytes() == before
    assert SegmentFileReader.open(path, index_interval=INTERVAL).chunks() == chunks


def test_truncate_mid_frame_cuts_to_last_good_chunk(tmp_path, chunks, frames):
    path = tmp_path / "seg.seg"
    write_segment(path, frames)
    # Cut inside the 6th frame: header survives, payload is torn.
    keep = SEG_FILE_HEADER_SIZE + sum(len(f) for f in frames[:5]) + len(frames[5]) // 2
    with open(path, "r+b") as fh:
        fh.truncate(keep)
    report = recover(path)
    assert report.chunk_count == 5
    assert report.truncated_bytes == keep - (
        SEG_FILE_HEADER_SIZE + sum(len(f) for f in frames[:5])
    )
    assert path.stat().st_size == SEG_FILE_HEADER_SIZE + report.frame_bytes
    assert SegmentFileReader.open(path, index_interval=INTERVAL).chunks() == chunks[:5]


def test_crc_flip_truncates_at_corrupt_frame(tmp_path, chunks, frames):
    path = tmp_path / "seg.seg"
    write_segment(path, frames)
    # Flip one payload byte in the 9th frame: its CRC check must fail and
    # everything from that frame on is discarded.
    target = SEG_FILE_HEADER_SIZE + sum(len(f) for f in frames[:8]) + len(frames[8]) - 1
    raw = bytearray(path.read_bytes())
    raw[target] ^= 0xFF
    path.write_bytes(bytes(raw))
    report = recover(path)
    assert report.chunk_count == 8
    assert report.truncated_bytes > 0
    assert SegmentFileReader.open(path, index_interval=INTERVAL).chunks() == chunks[:8]


def test_deleted_sidecar_is_rebuilt(tmp_path, chunks, frames):
    path = tmp_path / "seg.seg"
    write_segment(path, frames)
    original_idx = path.with_suffix(".idx").read_bytes()
    path.with_suffix(".idx").unlink()
    report = recover(path)
    assert report.index_rebuilt
    assert report.truncated_bytes == 0
    # The rebuild reproduces the writer's sidecar byte for byte.
    assert path.with_suffix(".idx").read_bytes() == original_idx
    reader = SegmentFileReader.open(path, index_interval=INTERVAL)
    for i in range(len(chunks)):
        assert reader.chunk_at(i) == chunks[i]


def test_corrupt_sidecar_is_rebuilt(tmp_path, chunks, frames):
    path = tmp_path / "seg.seg"
    write_segment(path, frames)
    idx_path = path.with_suffix(".idx")
    good = idx_path.read_bytes()
    idx_path.write_bytes(good[:6] + b"\xff" * (len(good) - 6))
    report = recover(path)
    assert report.index_rebuilt
    assert idx_path.read_bytes() == good
    assert SegmentFileReader.open(path, index_interval=INTERVAL).chunks() == chunks


def test_unreadable_header_is_fatal(tmp_path, frames):
    path = tmp_path / "seg.seg"
    write_segment(path, frames)
    raw = bytearray(path.read_bytes())
    raw[0] ^= 0xFF  # break the magic
    path.write_bytes(bytes(raw))
    with pytest.raises(StorageError):
        recover(path)


def test_random_kill_points_always_leave_a_valid_prefix(tmp_path):
    """Property-style sweep: crash the 'disk' at 60 seeded random byte
    positions; recovery must always keep an exact chunk prefix, and a
    second recovery must be a no-op (idempotent)."""
    rng = random.Random(0xC0FFEE)
    chunks = make_chunks(30, records_per_chunk=2, value_size=24)
    frames = frames_for(chunks)
    full = tmp_path / "full.seg"
    write_segment(full, frames)
    raw = full.read_bytes()
    boundaries = [SEG_FILE_HEADER_SIZE]
    for frame in frames:
        boundaries.append(boundaries[-1] + len(frame))

    for case in range(60):
        kill = rng.randrange(SEG_FILE_HEADER_SIZE, len(raw) + 1)
        path = tmp_path / f"kill{case}.seg"
        path.write_bytes(raw[:kill])
        report = recover_segment_file(path, index_interval=INTERVAL)
        # The survivor count is the number of whole frames before the cut.
        expected = sum(1 for b in boundaries[1:] if b <= kill)
        assert report.chunk_count == expected
        assert path.stat().st_size == boundaries[expected]
        reader = SegmentFileReader.open(path, index_interval=INTERVAL)
        assert reader.chunks(verify=True) == chunks[:expected]
        again = recover_segment_file(path, index_interval=INTERVAL)
        assert again.truncated_bytes == 0
        assert again.chunk_count == expected


def test_random_corruption_points_never_yield_bad_chunks(tmp_path):
    """Flip a payload byte in 40 seeded random frames: the payload CRC
    must catch it, and recovery keeps exactly the frames before it.
    (Header fields carry no CRC of their own — torn *headers* surface as
    misaligned frames instead, covered by the kill-point sweep.)"""
    rng = random.Random(0xBEEF)
    from repro.wire.chunk import CHUNK_HEADER_SIZE

    chunks = make_chunks(25, records_per_chunk=2, value_size=24)
    frames = frames_for(chunks)
    full = tmp_path / "full.seg"
    write_segment(full, frames)
    raw = full.read_bytes()
    starts = [SEG_FILE_HEADER_SIZE]
    for frame in frames:
        starts.append(starts[-1] + len(frame))

    for case in range(40):
        victim = rng.randrange(len(frames))
        payload_len = len(frames[victim]) - CHUNK_HEADER_SIZE
        flip = starts[victim] + CHUNK_HEADER_SIZE + rng.randrange(payload_len)
        mutated = bytearray(raw)
        mutated[flip] ^= 0x5A
        path = tmp_path / f"flip{case}.seg"
        path.write_bytes(bytes(mutated))
        report = recover_segment_file(path, index_interval=INTERVAL)
        assert report.chunk_count == victim
        survivors = SegmentFileReader.open(path, index_interval=INTERVAL).chunks(
            verify=True
        )
        assert survivors == chunks[:victim]
