"""Calibration sweep: run the paper's anchor configurations and print
simulated vs paper-reported throughput. Used to tune CostModel defaults;
see EXPERIMENTS.md for the record of the final calibration.
"""

import sys
import time

from repro.common.units import KB
from repro.storage.config import StorageConfig
from repro.replication.config import ReplicationConfig, PolicyMode
from repro.sim.costmodel import CostModel
from repro.kera import KeraConfig, SimKeraCluster, SimWorkload

DUR = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
WARM = DUR / 3


def run(name, target, *, streams=None, streamlets=None, producers=4, consumers=4,
        chunk_kb=1, r=3, vlogs=4, policy=PolicyMode.SHARED, q=1):
    config = KeraConfig(
        num_brokers=4,
        storage=StorageConfig(materialize=False, q_active_groups=q),
        replication=ReplicationConfig(
            replication_factor=r, vlogs_per_broker=vlogs, policy=policy
        ),
        chunk_size=chunk_kb * KB,
    )
    kwargs = dict(num_producers=producers, num_consumers=consumers,
                  duration=DUR, warmup=WARM)
    wl = (SimWorkload.many_streams(streams, **kwargs) if streams
          else SimWorkload.one_stream(streamlets, **kwargs))
    t0 = time.time()
    res = SimKeraCluster(config, wl).run()
    print(f"{name:<42} sim={res.mrecords_per_sec:6.2f}M  target~{target:<5} "
          f"lat_p50={res.latency['p50']*1e3:6.2f}ms  "
          f"batch={res.avg_replication_batch_chunks:6.1f}ck  "
          f"disp={max(res.dispatch_utilization):4.2f} "
          f"work={max(res.worker_utilization):4.2f}  [{time.time()-t0:4.1f}s]")
    return res


print(f"--- duration {DUR}s ---")
# Fig 12: 1 vlog/broker, 8 prod/cons, 1KB, R3
run("F12 512s R3 1vlog 8p", "1.8", streams=512, producers=8, consumers=8, vlogs=1)
run("F12 128s R3 1vlog 8p", "1.2", streams=128, producers=8, consumers=8, vlogs=1)
# Fig 13: 4 vlogs -> +30-40%
run("F13 512s R3 4vlog 8p", "2.4", streams=512, producers=8, consumers=8, vlogs=4)
# Fig 14-16: many vlogs -> -40-50% from best
run("F14 128s R3 32vlog 8p", "~1.2", streams=128, producers=8, consumers=8, vlogs=32)
run("F16 512s R3 64vlog 8p", "~1.3", streams=512, producers=8, consumers=8, vlogs=64)
# Fig 8: 4 producers, 4 vlogs
run("F08 32s  R3 4vlog 4p", "0.5", streams=32, producers=4, consumers=0, vlogs=4)
run("F08 512s R3 4vlog 4p", "1.5", streams=512, producers=4, consumers=0, vlogs=4)
run("F08 512s R1 4vlog 4p", "2.5", streams=512, producers=4, consumers=0, vlogs=4, r=1)
# Fig 17: 1 stream 32 streamlets Q4, per-subpartition vlogs, 4 prod
run("F17 32sl R3 psub 4p 64KB", "7.0", streamlets=32, producers=4, consumers=4,
    chunk_kb=64, policy=PolicyMode.PER_SUBPARTITION, q=4)
run("F17 32sl R3 psub 4p 4KB", "2.0", streamlets=32, producers=4, consumers=4,
    chunk_kb=4, policy=PolicyMode.PER_SUBPARTITION, q=4)
# Fig 19: 16 prod/cons 64KB -> 8.3M
run("F19 32sl R3 psub 16p 64KB", "8.3", streamlets=32, producers=16, consumers=16,
    chunk_kb=64, policy=PolicyMode.PER_SUBPARTITION, q=4)
# Fig 20: 32 prod/cons -> 7.2M (drop)
run("F20 32sl R3 psub 32p 64KB", "7.2", streamlets=32, producers=32, consumers=32,
    chunk_kb=64, policy=PolicyMode.PER_SUBPARTITION, q=4)
