"""Generate EXPERIMENTS.md from benchmarks/results/figures.json.

Merges the measured series with the paper's claims and the per-figure
assessment notes below. Run after ``pytest benchmarks/ --benchmark-only``:

    python scripts/make_experiments_md.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Hand-written verdicts, keyed by figure id. Everything else is generated.
ASSESSMENTS = {
    "fig08": (
        "Partially reproduced: with replication (R2/R3) KerA leads Kafka "
        "2-2.5x at 32-128 streams and converges to parity at 512 (paper: "
        "KerA ahead, up to 4x). Divergences: the paper shows throughput "
        "increasing with streams; our client model peaks at low-to-mid "
        "stream counts (fat 1 KB chunks fill before the linger there) and "
        "declines toward 512 streams, and at exactly 512 streams / 4 "
        "producers both systems are client-bound so the KerA edge "
        "disappears."
    ),
    "fig09": (
        "Reproduced (direction): throughput rises with producers and falls "
        "with the replication factor; KerA (one log per partition) stays "
        "ahead of Kafka at R3. Magnitude: ~1.4x at 16 producers vs the "
        "paper's ~2x."
    ),
    "fig10": (
        "Reproduced at 32-128 streams: KerA with 4 shared virtual logs "
        "beats Kafka ~1.9-2.5x at R3 (paper: up to 3x); with 32 virtual "
        "logs the advantage shrinks (paper: near parity at 128 streams). "
        "At 512 streams with only 4 producers both systems are client-"
        "bound and converge."
    ),
    "fig11": (
        "Reproduced (direction): KerA with 4 active groups and one virtual "
        "log per sub-partition outperforms Kafka at every point; throughput "
        "grows with chunk size. Magnitude: ~1.5-2x at R3 vs the paper's "
        "up-to-5x — our Kafka follower pipeline is more generous than the "
        "real system's tuned-but-limited replica fetchers."
    ),
    "fig12": (
        "Reproduced: a single shared virtual log per broker sustains "
        "~1.5-1.8 Mrec/s at 512 streams / R3 (paper: up to 1.8 Mrec/s), "
        "with R1 > R2 > R3 ordering."
    ),
    "fig13": (
        "Reproduced: 2 virtual logs lift throughput ~30-40% over 1 at 512 "
        "streams (paper: 30-40% for 2-4 logs); the optimum shifts toward "
        "more logs at lower stream counts."
    ),
    "fig14": (
        "Reproduced (shape): an inverted-U — throughput rises to an optimum "
        "(8-16 logs at 128 streams) then falls at 32 logs as replication "
        "degenerates into many small RPCs. Our drop beyond the optimum is "
        "~20% vs the paper's up-to-40-50%."
    ),
    "fig15": (
        "Same inverted-U with the optimum at ~4 logs (256 streams); the "
        "tail penalty is milder (~5-10%) in this calibration."
    ),
    "fig16": (
        "Same shape; at 512 streams the optimum sits at 2 logs (~+40% over "
        "1) and larger counts give back 10-20% of that gain. The measured "
        "drop is smaller than the paper's 40-50%."
    ),
    "fig17": (
        "Reproduced: throughput grows with chunk size toward ~6.5 Mrec/s "
        "at 16-64 KB (paper: ~7 Mrec/s); the replication factor costs "
        "throughput at small chunks. At large chunks the 8 clients are "
        "client-bound, so R1 and R3 converge (the paper keeps a gap)."
    ),
    "fig18": ("Reproduced: ~10.5 Mrec/s at 16-64 KB / R3 with 16 clients "
              "(paper: 8.3), R1 > R2 > R3 at small chunks."),
    "fig19": ("Reproduced: ~9-10 Mrec/s at 64 KB / R3 with 32 clients "
              "(paper: 8.3)."),
    "fig20": (
        "Partially reproduced: 64 clients reach the same NIC-bound plateau "
        "(~9 Mrec/s) instead of the paper's contention-induced dip to 7.2; "
        "our worker model releases cores while produce requests park, so "
        "oversubscription costs less than on the real 64-core cluster."
    ),
    "fig21": (
        "Reproduced: a small number of shared virtual logs matches or "
        "slightly beats one-per-sub-partition at 32/64 KB chunks (paper: "
        "8-16 logs gain ~300 Krec/s over 32)."
    ),
    "abl_consolidation": (
        "Consolidation is the mechanism: forcing one chunk per replication "
        "RPC (the paper's Section II-B strawman) forfeits most of the "
        "virtual log's advantage at hundreds of streams."
    ),
    "abl_dispatch": (
        "Negative result worth keeping: in the final calibration the "
        "position of the virtual-log optimum is robust to halving/doubling "
        "the per-RPC dispatch cost — the high-count penalty here comes "
        "mostly from lost consolidation (per-chunk staging overheads no "
        "longer amortized across a batch) rather than dispatch-core "
        "saturation alone. The consolidation ablation isolates that "
        "directly."
    ),
}

HEADER = """# EXPERIMENTS — paper vs. measured

Every figure of the paper's evaluation (Section V), regenerated on the
discrete-event substrate (`pytest benchmarks/ --benchmark-only`; series
also saved to `benchmarks/results/figures.json`). Values are cluster
ingestion throughput in **Mrec/s** over the post-warmup window, as in the
paper. Absolute numbers are calibrated to the paper's order of magnitude;
the reproduced claims are the *shapes* (winners, optima, trends) — see
DESIGN.md §2/§6 for the substitution rationale and cost model.

Run configuration: 4 brokers x (1 dispatch + 15 worker cores), 100-byte
records, linger 1 ms, simulated duration {duration}s per point
(`REPRO_BENCH_DURATION`), trimmed sweep axes (`REPRO_BENCH_FULL=1` for the
paper's full axes).

"""


def render_figure(fig: dict) -> str:
    lines = [f"## {fig['fig_id']}: {fig['title']}", ""]
    lines.append(f"**Paper:** {fig['paper_claim']}")
    lines.append("")
    series = fig["series"]
    xs: list[str] = []
    for rows in series.values():
        for x, _ in rows:
            if x not in xs:
                xs.append(x)
    header = "| x | " + " | ".join(series) + " |"
    sep = "|---" * (len(series) + 1) + "|"
    lines.append(header)
    lines.append(sep)
    tables = {name: dict(rows) for name, rows in series.items()}
    for x in xs:
        cells = []
        for name in series:
            value = tables[name].get(x)
            cells.append(f"{value:.2f}" if value is not None else "")
        lines.append(f"| {x} | " + " | ".join(cells) + " |")
    lines.append("")
    assessment = ASSESSMENTS.get(fig["fig_id"])
    if assessment:
        lines.append(f"**Measured vs paper:** {assessment}")
        lines.append("")
    return "\n".join(lines)


def main() -> int:
    results_path = ROOT / "benchmarks" / "results" / "figures.json"
    if not results_path.exists():
        print(f"no results at {results_path}; run the benchmarks first",
              file=sys.stderr)
        return 1
    figures = json.loads(results_path.read_text())
    import os

    duration = os.environ.get("REPRO_BENCH_DURATION", "0.15")
    parts = [HEADER.format(duration=duration)]
    order = {fid: i for i, fid in enumerate(
        [f"fig{n:02d}" for n in range(8, 22)] + ["abl_consolidation", "abl_dispatch"]
    )}
    for fig in sorted(figures, key=lambda f: order.get(f["fig_id"], 99)):
        parts.append(render_figure(fig))
    parts.append(
        "## abl_recovery: crash-recovery parallelism vs cluster size\n\n"
        "Run separately by `benchmarks/bench_abl_recovery.py` on the "
        "in-process (real-bytes) cluster: one broker of a 4/6/8-node "
        "cluster is crashed after durable ingestion. Across sizes, 2-3 "
        "backups feed the recovery in parallel and 3-4 surviving brokers "
        "re-ingest the lost streamlets; every acked record survives with "
        "per-sub-partition order intact, and the cost-model estimate of "
        "parallel recovery time shrinks as the cluster grows — the "
        "RAMCloud-style scatter/gather recovery the paper inherits.\n"
    )
    out = ROOT / "EXPERIMENTS.md"
    out.write_text("\n".join(parts))
    print(f"wrote {out} ({len(figures)} figures)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
