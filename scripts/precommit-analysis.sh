#!/bin/sh
# Pre-commit hook: run the repo's A001-A008 analyzer over the files this
# branch touches. Whole-program context (view registries, sanitizer
# discovery, ring names) is still built from the full tree; only the
# *reporting* is scoped to your diff, so the hook stays fast to read
# while never missing a cross-module escape.
#
# Install (from the repo root):
#
#     ln -s ../../scripts/precommit-analysis.sh .git/hooks/pre-commit
#
# or, to keep an existing hook, call this script from it. Bypass a
# stuck gate with `git commit --no-verify` — but prefer a justified
# suppression (`# noqa: A00x -- <why>`): bare noqa is itself a finding.
#
# The diff base defaults to origin/main (falling back to main, then to
# HEAD); override with REPRO_DIFF_BASE=<ref>.

set -eu

repo_root=$(git rev-parse --show-toplevel)
cd "$repo_root"

# src only: tests/analysis/fixtures is an intentionally broken corpus.
PYTHONPATH="$repo_root/src${PYTHONPATH:+:$PYTHONPATH}" \
    exec python -m repro.analysis "$repo_root/src" \
        --changed-only ${REPRO_DIFF_BASE:+--diff-base "$REPRO_DIFF_BASE"}
