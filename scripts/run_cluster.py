#!/usr/bin/env python
"""Spin up a real-socket KerA cluster with an asyncio gateway front door.

Spawns N broker nodes whose backup/replica services run as separate OS
processes behind framed TCP connections (:class:`SocketKeraCluster`),
fronts them with the asyncio client gateway, then drives a demo workload
through real gateway connections: ``--connections`` concurrent producers
stream records in, one consumer reads everything back, and the script
reports ack throughput plus p50/p99 produce-flush latency (the metrics
production streaming benchmarks actually gate on).

Usage::

    PYTHONPATH=src python scripts/run_cluster.py
    PYTHONPATH=src python scripts/run_cluster.py \\
        --brokers 3 --connections 64 --records 200 --record-bytes 128

Everything binds to 127.0.0.1 on ephemeral ports; the cluster and its
child processes are torn down cleanly at the end (close-then-drain, so
every acked record is durable on its backups before exit).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.common.units import KB, MB, fmt_rate
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kera import KeraConfig, SocketKeraCluster
from repro.gateway import AsyncConsumer, AsyncGatewayClient, AsyncProducer, GatewayServer


def make_config(args: argparse.Namespace) -> KeraConfig:
    return KeraConfig(
        num_brokers=args.brokers,
        storage=StorageConfig(segment_size=1 * MB, q_active_groups=2),
        replication=ReplicationConfig(
            replication_factor=min(3, args.brokers),
            vlogs_per_broker=2,
            pipeline_depth=4,
            ship_window_bytes=2 * MB,
        ),
        chunk_size=4 * KB,
    )


def percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(int(len(sorted_values) * q), len(sorted_values) - 1)
    return sorted_values[index]


async def run_producer(
    host: str, port: int, pid: int, args: argparse.Namespace, latencies: list[float]
) -> int:
    """One gateway connection streaming records in flushed batches."""
    async with await AsyncGatewayClient.connect(host, port) as client:
        producer = await AsyncProducer.open(client, pid, stream_id=0)
        value = bytes(args.record_bytes)
        for i in range(args.records):
            producer.send(b"%d:%d:" % (pid, i) + value)
            if i % args.flush_every == args.flush_every - 1:
                start = time.perf_counter()
                await producer.flush()
                latencies.append(time.perf_counter() - start)
        start = time.perf_counter()
        await producer.close()
        latencies.append(time.perf_counter() - start)
        return producer.records_sent


async def drive(host: str, port: int, args: argparse.Namespace) -> None:
    async with await AsyncGatewayClient.connect(host, port) as admin:
        await admin.create_stream(0, args.streamlets)

    latencies: list[float] = []
    start = time.monotonic()
    sent = await asyncio.gather(
        *(
            run_producer(host, port, pid, args, latencies)
            for pid in range(args.connections)
        )
    )
    elapsed = time.monotonic() - start
    total = sum(sent)

    async with await AsyncGatewayClient.connect(host, port) as client:
        consumer = await AsyncConsumer.open(client, 0, stream_id=0)
        consumed = len(await consumer.drain(max_rounds=100_000))

    latencies.sort()
    print(f"\n== {args.connections} producer connections x {args.records} records "
          f"({args.record_bytes} B) over the gateway")
    print(f"   acked:     {total} records in {elapsed:.2f}s "
          f"({fmt_rate(total / elapsed)})")
    print(f"   consumed:  {consumed} records (loss check: "
          f"{'OK' if consumed == total else 'MISMATCH'})")
    print(f"   produce flush latency: "
          f"p50 {percentile(latencies, 0.50) * 1e3:.2f} ms / "
          f"p99 {percentile(latencies, 0.99) * 1e3:.2f} ms "
          f"({len(latencies)} flushes)")
    if consumed != total:
        raise SystemExit("acked-record loss detected")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--brokers", type=int, default=3)
    parser.add_argument("--streamlets", type=int, default=8)
    parser.add_argument("--connections", type=int, default=32,
                        help="concurrent producer connections")
    parser.add_argument("--records", type=int, default=200,
                        help="records per connection")
    parser.add_argument("--record-bytes", type=int, default=128)
    parser.add_argument("--flush-every", type=int, default=25)
    parser.add_argument("--port", type=int, default=0,
                        help="gateway port (0 = ephemeral)")
    args = parser.parse_args(argv)

    print(f"starting {args.brokers}-broker socket cluster "
          f"(backups in child processes over TCP)...")
    with SocketKeraCluster(make_config(args), ack_timeout=30.0) as cluster:
        transport = cluster.transport
        print(f"   rendezvous listener: {transport.listen_address()}, "
              f"{transport.connection_count()} worker connections")
        with GatewayServer(cluster, port=args.port) as gateway:
            host, port = gateway.address()
            print(f"   gateway: {host}:{port}")
            asyncio.run(drive(host, port, args))
            stats = gateway.stats
            print(f"   gateway stats: {stats.connections_accepted} connections, "
                  f"{stats.requests_served} requests, "
                  f"{stats.chunks_in} chunks in / {stats.chunks_out} out, "
                  f"{stats.errors_returned} errors")
    print("clean shutdown: workers drained and joined")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
