"""Compare two labelled runs in a bench_datapath.py JSON document.

Prints a per-benchmark ratio table (candidate / baseline) and checks two
kinds of thresholds:

* ``--max-regression FRAC`` — every shared benchmark must retain at least
  ``1 - FRAC`` of the baseline's throughput (default 0.5: warn when a
  stage drops below half, which is far outside machine noise for these
  microbenchmarks);
* ``--require NAME=RATIO`` — a named benchmark must reach at least
  ``RATIO`` times the baseline (e.g. ``encode_append_ship=3.0``, the
  zero-copy data-path acceptance bar);
* ``--require-abs NAME=VALUE`` — the candidate's named benchmark must
  reach ``VALUE`` in absolute terms, regardless of the baseline.  Used
  for metrics that are already ratios, e.g.
  ``fanout_scaling_1_to_8=0.9``, the reader-plane fan-out acceptance
  bar.

``--latency`` flips the comparison for lower-is-better stages: the
printed ratio becomes baseline/candidate (an *improvement* factor),
``--require`` demands at least that improvement, and ``--require-abs``
becomes a ceiling the candidate must stay under (e.g.
``produce_p50_ms=50`` or ``failover_throughput_dip=0.95``).  A stage is
lower-is-better when its unit is ``ms`` (latencies, recovery times) or
``frac`` (dimensionless loss fractions like the failover throughput
dip).  Stages in other units keep throughput semantics, so mixed tables
compare each row the right way up.

By default violations are reported but the exit code stays 0 so a CI
perf-smoke job is informative rather than flaky; pass ``--strict`` to
turn violations into a non-zero exit.

``--history`` additionally prints the per-stage trajectory across *all*
runs in the document, in file order, with each value's ratio to the
first run that measured that stage — the running story of where each
data-path stage's throughput went, PR over PR.

Usage::

    python scripts/perf_compare.py BENCH_datapath.json \
        --baseline after --candidate pipelined --history \
        --require replication_ship=5.0 --require backup_flush=5.0
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


#: Units whose stages compare downward under ``--latency``: wall-clock
#: milliseconds and dimensionless lower-is-better fractions.
DOWNWARD_UNITS = frozenset({"ms", "frac"})


def is_downward(unit: str) -> bool:
    """Whether a stage with this unit is lower-is-better."""
    return unit in DOWNWARD_UNITS


def load_run(doc: dict, label: str) -> dict:
    for run in doc.get("runs", []):
        if run.get("label") == label:
            return run
    labels = [r.get("label") for r in doc.get("runs", [])]
    raise SystemExit(f"no run labelled {label!r} in document (have {labels})")


def print_history(doc: dict) -> None:
    """Per-stage throughput trajectory across every run in the document."""
    runs = [r for r in doc.get("runs", []) if r.get("benchmarks")]
    if not runs:
        return
    names: list[str] = []
    for run in runs:
        for name in run["benchmarks"]:
            if name not in names:
                names.append(name)
    print("per-stage trajectory (x = ratio to first measurement):")
    for name in names:
        print(f"  {name}")
        first: float | None = None
        for run in runs:
            bench = run["benchmarks"].get(name)
            if bench is None:
                continue
            value = bench["value"]
            if first is None:
                first = value
            ratio = value / first if first else float("inf")
            unit = bench.get("unit", "")
            quick = " (quick)" if run.get("quick") else ""
            print(
                f"    {run.get('label', '?'):<14} {value:>14,.0f} {unit:<10}"
                f" {ratio:7.2f}x{quick}"
            )


def parse_requirement(spec: str) -> tuple[str, float]:
    name, sep, ratio = spec.partition("=")
    if not sep:
        raise SystemExit(f"--require expects NAME=RATIO, got {spec!r}")
    return name, float(ratio)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", type=Path, help="bench_datapath.py JSON file")
    parser.add_argument("--baseline", default="baseline")
    parser.add_argument("--candidate", default="after")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.5,
        help="tolerated fractional throughput drop per benchmark (default 0.5)",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME=RATIO",
        help="named benchmark must reach RATIO x baseline (repeatable)",
    )
    parser.add_argument(
        "--require-abs",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="candidate benchmark must reach VALUE absolutely (repeatable)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on violations (default: report only)",
    )
    parser.add_argument(
        "--history",
        action="store_true",
        help="also print each stage's trajectory across every run",
    )
    parser.add_argument(
        "--latency",
        action="store_true",
        help=(
            "compare ms-unit stages downward: ratios become improvement "
            "factors (baseline/candidate) and --require-abs a ceiling"
        ),
    )
    args = parser.parse_args(argv)

    doc = json.loads(args.results.read_text())
    if args.history:
        print_history(doc)
    baseline = load_run(doc, args.baseline)
    candidate = load_run(doc, args.candidate)
    requirements = dict(parse_requirement(spec) for spec in args.require)
    absolutes = dict(parse_requirement(spec) for spec in args.require_abs)

    # Runs measure different stage subsets as the suite grows (the
    # sockets rows carry gateway stages no earlier row has), so a run
    # lacking a stage — or all of them — is a note, not an error:
    # --require on an unshared name and --require-abs on an unmeasured
    # one still surface as threshold violations below.
    base_bench = baseline.get("benchmarks") or {}
    cand_bench = candidate.get("benchmarks") or {}
    shared = [name for name in base_bench if name in cand_bench]
    if not shared:
        print("note: runs share no benchmarks")

    print(
        f"{args.candidate!r} ({candidate.get('git_rev', '?')}) vs "
        f"{args.baseline!r} ({baseline.get('git_rev', '?')})"
    )
    if baseline.get("quick") != candidate.get("quick"):
        print("  note: runs used different timing modes (quick vs full)")

    violations = []
    floor = 1.0 - args.max_regression
    for name in shared:
        base = base_bench[name]["value"]
        cand = cand_bench[name]["value"]
        unit = cand_bench[name].get("unit", "")
        downward = args.latency and is_downward(unit)
        if downward:
            # Lower is better: the ratio is the improvement factor.
            ratio = base / cand if cand else float("inf")
        else:
            ratio = cand / base if base else float("inf")
        marks = []
        if ratio < floor:
            marks.append(f"regression > {args.max_regression:.0%}")
        if name in requirements and ratio < requirements[name]:
            marks.append(f"below required {requirements[name]:.2f}x")
        if name in absolutes:
            if downward and cand > absolutes[name]:
                marks.append(f"above required ceiling {absolutes[name]:g}")
            elif not downward and cand < absolutes[name]:
                marks.append(f"below required absolute {absolutes[name]:g}")
        if marks:
            violations.append(f"{name}: {ratio:.2f}x ({'; '.join(marks)})")
        flag = " !" if marks else ""
        print(
            f"  {name:<22} {base:>14,.0f} -> {cand:>14,.0f} {unit:<10}"
            f" {ratio:6.2f}x{flag}"
        )
    for name, ratio in requirements.items():
        if name not in shared:
            violations.append(f"{name}: required {ratio:.2f}x but not measured")
    for name, value in absolutes.items():
        if name in shared:
            continue  # already checked in the table above
        bench = cand_bench.get(name)
        if bench is None:
            violations.append(f"{name}: required absolute {value:g} but not measured")
            continue
        downward = args.latency and is_downward(bench.get("unit", ""))
        if downward and bench["value"] > value:
            violations.append(
                f"{name}: {bench['value']:g} above required ceiling {value:g}"
            )
        elif not downward and bench["value"] < value:
            violations.append(
                f"{name}: {bench['value']:g} below required absolute {value:g}"
            )
        else:
            unit = bench.get("unit", "")
            print(f"  {name:<22} {'':>14}    {bench['value']:>14,.2f} {unit:<10} (abs)")

    if violations:
        print("threshold violations:")
        for v in violations:
            print(f"  - {v}")
        return 1 if args.strict else 0
    print("all thresholds met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
