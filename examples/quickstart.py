"""Quickstart: durable produce/consume on an in-process KerA cluster.

Spins up a 4-node cluster (each node runs a broker and a backup), creates
a stream with 4 streamlets, writes real records through the public
producer API, and reads them back — every byte travels the full path:
record encoding -> chunk -> segment -> virtual-log replication to two
backups -> durable visibility -> fetch -> decode.

Run:  python examples/quickstart.py
"""

from repro.common.units import KB, fmt_bytes
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kera import InprocKeraCluster, KeraConfig, KeraConsumer, KeraProducer


def main() -> None:
    config = KeraConfig(
        num_brokers=4,
        storage=StorageConfig(segment_size=256 * KB),
        replication=ReplicationConfig(replication_factor=3, vlogs_per_broker=2),
        chunk_size=4 * KB,
    )
    cluster = InprocKeraCluster(config)
    cluster.create_stream(stream_id=0, num_streamlets=4)

    # -- produce -----------------------------------------------------------
    producer = KeraProducer(cluster, producer_id=0)
    for i in range(1_000):
        producer.send(0, f"event-{i:04d}".encode())
    # Keyed records always land on the same streamlet (ordering per key).
    for i in range(100):
        producer.send(0, f"sensor-a:{i}".encode(), keys=(b"sensor-a",))
    stats = producer.flush()
    print(f"produced {stats.records_sent} records in {stats.chunks_sent} chunks "
          f"({fmt_bytes(stats.bytes_sent)}), {stats.requests_sent} requests")

    # -- what replication did ----------------------------------------------
    for broker_id, broker in cluster.brokers.items():
        vlogs = broker.manager.vlogs
        batches = broker.manager.total_batches()
        chunks = broker.manager.total_chunks_shipped()
        if chunks:
            print(f"broker {broker_id}: {len(vlogs)} virtual logs shipped "
                  f"{chunks} chunks in {batches} replication RPCs "
                  f"({chunks / batches:.1f} chunks/RPC consolidated)")
    copies = sum(b.store.chunks_received for b in cluster.backups.values())
    print(f"backups hold {copies} chunk copies (R-1 = 2 per chunk)")

    # -- consume -------------------------------------------------------------
    consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
    records = consumer.drain()
    print(f"consumed {len(records)} records "
          f"(first: {records[0].value!r}, fetches: {consumer.stats.fetches})")
    assert len(records) == stats.records_sent
    print("quickstart OK: everything produced was durably replicated and read back")


if __name__ == "__main__":
    main()
