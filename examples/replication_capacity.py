"""Tuning the replication capacity: how many virtual logs per broker?

The paper's Section V-C question: *can we obtain better performance with
a reduced number of replicated virtual logs?* This example sweeps the
replication capacity for 512 small streams at replication factor 3 and
prints the throughput curve together with the diagnostics that explain
it — average replication batch size (consolidation) and broker dispatch
utilization (per-RPC overhead): one shared log serializes replication,
a handful parallelizes it while still consolidating, and dozens
degenerate into per-chunk RPCs that saturate the dispatch cores.

Run:  python examples/replication_capacity.py      (~1 minute)
"""

from repro.common.units import KB
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kera import KeraConfig, SimKeraCluster
from repro.simdriver import SimWorkload

STREAMS = 512
DURATION = 0.15


def run(vlogs: int):
    config = KeraConfig(
        num_brokers=4,
        storage=StorageConfig(materialize=False),
        replication=ReplicationConfig(replication_factor=3, vlogs_per_broker=vlogs),
        chunk_size=1 * KB,
    )
    workload = SimWorkload.many_streams(
        STREAMS, num_producers=8, num_consumers=8,
        duration=DURATION, warmup=DURATION / 3,
    )
    return SimKeraCluster(config, workload).run()


def main() -> None:
    print(f"{STREAMS} streams, R3, chunk 1 KB, 8 producers + 8 consumers\n")
    print(f"{'vlogs/broker':>12} | {'Mrec/s':>8} | {'chunks/RPC':>10} | "
          f"{'p50 ack':>9} | {'max dispatch':>12}")
    print("-" * 64)
    best = (0.0, 0)
    for vlogs in (1, 2, 4, 8, 16, 32, 64):
        result = run(vlogs)
        print(f"{vlogs:>12} | {result.mrecords_per_sec:8.2f} | "
              f"{result.avg_replication_batch_chunks:10.1f} | "
              f"{result.latency['p50'] * 1e3:7.2f}ms | "
              f"{max(result.dispatch_utilization):12.2f}")
        if result.producer_rate > best[0]:
            best = (result.producer_rate, vlogs)
    print(f"\noptimum: {best[1]} virtual logs per broker "
          f"({best[0] / 1e6:.2f} Mrec/s) — the paper's trade-off between "
          "replication performance, capacity, and stream count")


if __name__ == "__main__":
    main()
