"""Crash recovery: lose a broker, recover its data from the backups.

Ingests records over 8 streamlets with replication factor 3, kills broker
1, and runs the recovery protocol: the coordinator reassigns the dead
broker's streamlets to the survivors, the backups hand over the
replicated virtual segments they hold for it, the copies are merged in
virtual-segment order (replica divergence is checked), and every chunk is
replayed through the ordinary produce path — metadata reconstructed from
the [group, segment] tags, duplicates across backup copies collapsed, and
the recovered data re-replicated to the surviving backups.

Run:  python examples/crash_recovery.py
"""

from repro.common.units import KB
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kera import (
    InprocKeraCluster,
    KeraConfig,
    KeraConsumer,
    KeraProducer,
    recover_broker,
)


def main() -> None:
    config = KeraConfig(
        num_brokers=4,
        storage=StorageConfig(segment_size=64 * KB),
        replication=ReplicationConfig(replication_factor=3, vlogs_per_broker=2),
        chunk_size=1 * KB,
    )
    cluster = InprocKeraCluster(config)
    cluster.create_stream(0, num_streamlets=8)

    producer = KeraProducer(cluster, producer_id=0)
    expected = set()
    for i in range(2_000):
        value = f"r{i:05d}".encode()
        producer.send(0, value, streamlet_id=i % 8)
        expected.add(value)
    producer.flush()

    victim = 1
    lost_partitions = cluster.coordinator.partitions_on(victim)
    print(f"broker {victim} leads {len(lost_partitions)} streamlets; crashing it")

    report = recover_broker(cluster, failed_broker=victim)
    print(f"recovery merged {report.vsegs_merged} virtual segments from "
          f"{report.backups_read} backups")
    print(f"replayed {report.chunks_recovered} chunks / "
          f"{report.records_recovered} records "
          f"({report.duplicates_dropped} duplicates dropped)")
    for (stream, streamlet), target in sorted(report.reassignments.items()):
        print(f"  streamlet {streamlet} -> broker {target}")

    consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
    records = consumer.drain()
    got = {r.value for r in records}
    missing = expected - got
    assert not missing, f"lost {len(missing)} acked records!"
    assert len(records) == len(expected), "duplicate ingestion!"

    # Per-streamlet order must survive recovery.
    per_streamlet: dict[int, list[int]] = {}
    for record in records:
        value = int(record.value[1:])
        per_streamlet.setdefault(value % 8, []).append(value)
    for streamlet, values in per_streamlet.items():
        assert values == sorted(values), f"order broken in streamlet {streamlet}"
    print(f"recovery OK: all {len(expected)} acked records intact, order preserved")


if __name__ == "__main__":
    main()
