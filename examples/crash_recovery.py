"""Crash recovery: lose a broker, recover its data from the backups —
then lose the *whole cluster* and restart it from disk.

Act one (live recovery): ingests records over 8 streamlets with
replication factor 3, kills broker 1, and runs the recovery protocol:
the coordinator reassigns the dead broker's streamlets to the survivors,
the backups hand over the replicated virtual segments they hold for it,
the copies are merged in virtual-segment order (replica divergence is
checked), and every chunk is replayed through the ordinary produce path —
metadata reconstructed from the [group, segment] tags, duplicates across
backup copies collapsed, and the recovered data re-replicated to the
surviving backups.

Act two (restart from disk): a threaded cluster with a ``persist_dir``
ingests the same workload while its backups stream segment files to disk
(``fsync_policy="always"``), then dies abruptly — no drain, no clean
close. A fresh incarnation pointed at the same directory re-ingests the
segment files (torn tails truncated, indexes rebuilt), merges the
per-backup copies, and replays every acked record through produce.

Run:  python examples/crash_recovery.py
"""

import tempfile

from repro.common.units import KB
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kera import (
    InprocKeraCluster,
    KeraConfig,
    KeraConsumer,
    KeraProducer,
    recover_broker,
)
from repro.kera.recovery import restore_cluster_from_disk
from repro.kera.threaded import ThreadedKeraCluster


def live_recovery() -> None:
    config = KeraConfig(
        num_brokers=4,
        storage=StorageConfig(segment_size=64 * KB),
        replication=ReplicationConfig(replication_factor=3, vlogs_per_broker=2),
        chunk_size=1 * KB,
    )
    cluster = InprocKeraCluster(config)
    cluster.create_stream(0, num_streamlets=8)

    producer = KeraProducer(cluster, producer_id=0)
    expected = set()
    for i in range(2_000):
        value = f"r{i:05d}".encode()
        producer.send(0, value, streamlet_id=i % 8)
        expected.add(value)
    producer.flush()

    victim = 1
    lost_partitions = cluster.coordinator.partitions_on(victim)
    print(f"broker {victim} leads {len(lost_partitions)} streamlets; crashing it")

    report = recover_broker(cluster, failed_broker=victim)
    print(f"recovery merged {report.vsegs_merged} virtual segments from "
          f"{report.backups_read} backups")
    print(f"replayed {report.chunks_recovered} chunks / "
          f"{report.records_recovered} records "
          f"({report.duplicates_dropped} duplicates dropped)")
    for (stream, streamlet), target in sorted(report.reassignments.items()):
        print(f"  streamlet {streamlet} -> broker {target}")

    consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
    records = consumer.drain()
    got = {r.value for r in records}
    missing = expected - got
    assert not missing, f"lost {len(missing)} acked records!"
    assert len(records) == len(expected), "duplicate ingestion!"

    # Per-streamlet order must survive recovery.
    per_streamlet: dict[int, list[int]] = {}
    for record in records:
        value = int(record.value[1:])
        per_streamlet.setdefault(value % 8, []).append(value)
    for streamlet, values in per_streamlet.items():
        assert values == sorted(values), f"order broken in streamlet {streamlet}"
    print(f"recovery OK: all {len(expected)} acked records intact, order preserved")


def restart_from_disk(persist_dir: str) -> None:
    def make_config() -> KeraConfig:
        return KeraConfig(
            num_brokers=4,
            storage=StorageConfig(segment_size=16 * KB),
            replication=ReplicationConfig(
                replication_factor=3, vlogs_per_broker=1, fsync_policy="always"
            ),
            chunk_size=1 * KB,
            flush_threshold=1,  # every replicate batch reaches the flusher
            persist_dir=persist_dir,
        )

    cluster = ThreadedKeraCluster(make_config())
    cluster.create_stream(0, num_streamlets=8)
    expected = set()
    with KeraProducer(cluster, producer_id=0) as producer:
        for i in range(1_000):
            value = f"d{i:05d}".encode()
            producer.send(0, value, streamlet_id=i % 8)
            expected.add(value)
    cluster.wait_flush_idle(30.0)
    on_disk = sum(cluster.segments_on_disk(n) for n in cluster.system.node_ids)
    print(f"\n{len(expected)} records acked; {on_disk} segment files on disk — "
          "killing the whole cluster (no drain, no clean close)")
    cluster.simulate_power_loss()

    restarted = ThreadedKeraCluster(make_config())
    restarted.create_stream(0, num_streamlets=8)
    report = restore_cluster_from_disk(restarted)
    print(f"restore read {report.segment_files_read} segment files from "
          f"{report.backups_loaded} backups "
          f"({report.bytes_truncated} torn bytes truncated, "
          f"{report.indexes_rebuilt} indexes rebuilt)")
    print(f"replayed {report.chunks_replayed} chunks / "
          f"{report.records_restored} records for brokers "
          f"{report.brokers_restored}")

    consumer = KeraConsumer(restarted, consumer_id=0, stream_ids=[0])
    records = consumer.drain()
    got = {r.value for r in records}
    assert got == expected, f"lost {len(expected - got)} acked records!"
    assert len(records) == len(expected), "duplicate ingestion!"
    per_streamlet: dict[int, list[int]] = {}
    for record in records:
        value = int(record.value[1:])
        per_streamlet.setdefault(value % 8, []).append(value)
    for streamlet, values in per_streamlet.items():
        assert values == sorted(values), f"order broken in streamlet {streamlet}"
    restarted.shutdown()
    print(f"restart OK: all {len(expected)} acked records recovered from disk, "
          "order preserved")


def main() -> None:
    live_recovery()
    with tempfile.TemporaryDirectory(prefix="kera_restart_") as persist_dir:
        restart_from_disk(persist_dir)


if __name__ == "__main__":
    main()
