"""Kafka vs KerA on the simulated 4-broker cluster (the paper's headline).

Runs the same proxy-client workload — hundreds of small streams, 1 KB
chunks, replication factor 1 and 3 — against both systems and prints the
cluster ingestion throughput plus the replication-RPC economics that
explain the difference: KerA's shared virtual logs consolidate many
partitions' chunks into few large backup writes, while Kafka's
per-partition pull replication pays per-partition costs and an extra
fetch round trip before every acknowledgment.

Run:  python examples/kafka_vs_kera.py            (~1 minute)
"""

from repro.common.units import KB, fmt_rate
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kafka import KafkaConfig, SimKafkaCluster
from repro.kera import KeraConfig, SimKeraCluster
from repro.simdriver import SimWorkload

STREAMS = 128
DURATION = 0.15


def workload() -> SimWorkload:
    return SimWorkload.many_streams(
        STREAMS, num_producers=4, num_consumers=4,
        duration=DURATION, warmup=DURATION / 3,
    )


def run_kera(r: int, vlogs: int):
    config = KeraConfig(
        num_brokers=4,
        storage=StorageConfig(materialize=False),
        replication=ReplicationConfig(replication_factor=r, vlogs_per_broker=vlogs),
        chunk_size=1 * KB,
    )
    return SimKeraCluster(config, workload()).run()


def run_kafka(r: int):
    config = KafkaConfig(num_brokers=4, replication_factor=r, chunk_size=1 * KB)
    return SimKafkaCluster(config, workload()).run()


def describe(name: str, result) -> None:
    line = (
        f"{name:<24} {fmt_rate(result.producer_rate):>14}"
        f"   p50 ack {result.latency['p50'] * 1e3:6.2f} ms"
    )
    if result.replication_rpcs:
        line += (
            f"   {result.replication_rpcs:>7} repl RPCs"
            f" ({result.avg_replication_batch_chunks:5.1f} chunks each)"
        )
    print(line)


def main() -> None:
    print(f"{STREAMS} single-partition streams, chunk 1 KB, 4 brokers, "
          f"4 producers + 4 consumers\n")
    for r in (1, 3):
        print(f"--- replication factor {r} ---")
        describe("Kafka", run_kafka(r))
        kera4 = run_kera(r, vlogs=4)
        describe("KerA (4 virtual logs)", kera4)
        if r == 3:
            kafka = run_kafka(3)
            ratio = kera4.producer_rate / kafka.producer_rate
            print(f"\nKerA/Kafka at R3: {ratio:.1f}x "
                  f"(paper: 2-4x for hundreds of streams)")
        print()


if __name__ == "__main__":
    main()
