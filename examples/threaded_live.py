"""Threaded live mode: concurrent producers over real worker threads.

Runs the same end-to-end byte path as the quickstart, but on
:class:`repro.kera.ThreadedKeraCluster`: every node's broker and backup
services execute on their own worker threads behind bounded request
queues, push replication runs on per-broker shipper threads, and several
producer threads flush concurrently — the configuration that exercises
the sans-IO cores under real contention. At the end every acked record is
read back and verified exactly once, and wall-clock throughput is
reported (measured with the thread-safe ThroughputMeter the producer
threads share).

Run:  python examples/threaded_live.py
"""

import threading
import time

from repro.common.metrics import ThroughputMeter
from repro.common.units import KB, fmt_rate
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kera import KeraConfig, KeraConsumer, KeraProducer, ThreadedKeraCluster

PRODUCERS = 4
RECORDS_EACH = 2_000
STREAMLETS = 8


def main() -> None:
    config = KeraConfig(
        num_brokers=4,
        storage=StorageConfig(segment_size=256 * KB, q_active_groups=2),
        replication=ReplicationConfig(replication_factor=3, vlogs_per_broker=2),
        chunk_size=4 * KB,
    )
    meter = ThroughputMeter(thread_safe=True)

    with ThreadedKeraCluster(config) as cluster:
        cluster.create_stream(stream_id=0, num_streamlets=STREAMLETS)

        def produce(producer_id: int) -> None:
            producer = KeraProducer(cluster, producer_id=producer_id)
            for i in range(RECORDS_EACH):
                producer.send(0, f"p{producer_id}-{i:06d}".encode())
                if i % 200 == 199:
                    producer.flush()
                    meter.add(200, time.monotonic() - start)
            producer.flush()

        start = time.monotonic()
        threads = [
            threading.Thread(target=produce, args=(p,), name=f"producer-{p}")
            for p in range(PRODUCERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.monotonic() - start

        total = PRODUCERS * RECORDS_EACH
        print(f"{PRODUCERS} producer threads acked {total} records "
              f"in {elapsed:.2f}s ({fmt_rate(total / elapsed)})")

        for broker_id, broker in cluster.brokers.items():
            batches = broker.manager.total_batches()
            chunks = broker.manager.total_chunks_shipped()
            if chunks:
                print(f"broker {broker_id}: shipped {chunks} chunks in {batches} "
                      f"replication RPCs ({chunks / batches:.1f} chunks/RPC)")

        consumer = KeraConsumer(cluster, consumer_id=0, stream_ids=[0])
        records = consumer.drain()
        values = {r.value for r in records}
        assert len(records) == total, (len(records), total)
        assert len(values) == total  # nothing duplicated
        print(f"consumed {len(records)} records back, all unique: "
              f"every acked record recovered exactly once")

    print("threaded live OK")


if __name__ == "__main__":
    main()
