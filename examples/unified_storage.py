"""Unified ingestion and storage: streams, objects, and a KV table.

KerA's pitch (paper, Section IV) is one system exposing both Kafka-like
stream semantics and HDFS-like object semantics — plus record headers
(versions, timestamps) designed so key-value interfaces come cheap. This
example runs all three personalities against one in-process cluster:

1. a telemetry stream (ordered, durable, consumed by offset);
2. an object store holding model checkpoints as bounded streams;
3. a KV table of device metadata whose index is rebuilt from the log
   after a broker crash — the log *is* the database.

Run:  python examples/unified_storage.py
"""

from repro.common.units import KB
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig
from repro.kera import (
    InprocKeraCluster,
    KeraConfig,
    KeraConsumer,
    KeraProducer,
    KVTable,
    ObjectStore,
    recover_broker,
)


def main() -> None:
    cluster = InprocKeraCluster(
        KeraConfig(
            num_brokers=4,
            storage=StorageConfig(segment_size=128 * KB),
            replication=ReplicationConfig(replication_factor=3, vlogs_per_broker=2),
            chunk_size=2 * KB,
        )
    )

    # 1. A plain stream: device telemetry.
    cluster.create_stream(0, num_streamlets=4)
    producer = KeraProducer(cluster, producer_id=0)
    for i in range(500):
        producer.send(0, f"device-{i % 10}: temp={20 + i % 15}".encode(),
                      keys=(f"device-{i % 10}".encode(),))
    producer.flush()
    telemetry = KeraConsumer(cluster, consumer_id=0, stream_ids=[0]).drain()
    print(f"stream: ingested and read back {len(telemetry)} telemetry records")

    # 2. Objects: bounded streams holding blobs.
    store = ObjectStore(cluster)
    checkpoint = bytes(i % 256 for i in range(30_000))
    info = store.put("model-epoch-7", checkpoint)
    print(f"object: stored {info.size} bytes as {info.parts} parts "
          f"on stream {info.stream_id}")
    assert store.get("model-epoch-7") == checkpoint
    print(f"object: read back verified ({len(store.list())} objects in catalog)")

    # 3. KV table: latest-value view over a log-structured stream.
    table = KVTable(cluster, stream_id=100, num_streamlets=4)
    for device in range(10):
        table.put(f"device-{device}", f"fw=1.0;loc=rack{device % 3}".encode())
    for device in range(5):
        table.put(f"device-{device}", f"fw=1.1;loc=rack{device % 3}".encode())
    table.delete("device-9")
    print(f"kv: {len(table)} live keys, device-0 -> {table.get('device-0')!r}")

    # Crash a broker; the KV index rebuilds from the recovered log.
    report = recover_broker(cluster, failed_broker=2)
    print(f"crash: broker 2 lost, {report.records_recovered} records replayed "
          f"onto {sorted(set(report.reassignments.values()))}")
    table.rebuild()
    assert table.get("device-0") == b"fw=1.1;loc=rack0"
    assert "device-9" not in table
    print("kv: index rebuilt from the recovered log — latest versions intact")

    # The stream and the object survived too.
    assert len(KeraConsumer(cluster, consumer_id=1, stream_ids=[0]).drain()) == 500
    assert store.get("model-epoch-7") == checkpoint
    print("unified storage OK: stream, object, and KV all durable across the crash")


if __name__ == "__main__":
    main()
