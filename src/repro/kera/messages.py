"""KerA RPC message types.

Messages are dataclasses with a ``payload_bytes()`` method giving the wire
payload size the network model charges (the framing constant is added by
the cost model). The in-process driver passes the same objects by
reference; the chunk payload bytes inside them are the real thing there.

Because the live transports hand the *same* object to a handler running
on another thread, every message is frozen with slots (analysis rule
A004): a handler can never fix a request up in place, and a stray
attribute write raises instead of silently forking state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.wire.chunk import Chunk
from repro.wire.views import ChunkView

#: Wire overhead per request beyond its chunks (ids, counts).
_REQUEST_HEADER_BYTES = 32
#: Wire size of one chunk assignment in a produce response.
_ASSIGNMENT_BYTES = 24
#: Wire size of one fetch position/entry header.
_POSITION_BYTES = 24


@dataclass(frozen=True, slots=True)
class ProduceRequest:
    """``Each producer request is characterized by the stream and producer
    identifiers and a set of chunks`` (paper, Section IV-B). Proxy
    producers put chunks of many streams in one request, so the stream id
    lives on each chunk."""

    request_id: int
    producer_id: int
    chunks: list[Chunk]

    def payload_bytes(self) -> int:
        return _REQUEST_HEADER_BYTES + sum(c.size for c in self.chunks)

    @property
    def record_count(self) -> int:
        return sum(c.record_count for c in self.chunks)


@dataclass(frozen=True, slots=True)
class ChunkAssignment:
    """Broker-assigned placement returned to the producer."""

    stream_id: int
    streamlet_id: int
    group_id: int
    segment_id: int
    offset: int
    duplicate: bool = False


@dataclass(frozen=True, slots=True)
class ProduceResponse:
    request_id: int
    assignments: list[ChunkAssignment]

    def payload_bytes(self) -> int:
        return _REQUEST_HEADER_BYTES + _ASSIGNMENT_BYTES * len(self.assignments)

    @property
    def record_count(self) -> int:  # pragma: no cover - convenience
        return 0


@dataclass(frozen=True, slots=True)
class FetchPosition:
    """A consumer's cursor over one (streamlet, active entry).

    ``seek_record`` is a one-shot repositioning request: when set, the
    broker resolves the logical record offset through the offset index
    (O(log n), never a scan) before pulling, and the returned
    ``next_position`` carries the resolved ``group_pos``/``chunk_pos``
    with ``seek_record`` cleared. Seeking below the retention floor or
    beyond the entry's contents raises
    :class:`~repro.common.errors.OffsetOutOfRangeError`.
    """

    stream_id: int
    streamlet_id: int
    entry: int
    group_pos: int = 0
    chunk_pos: int = 0
    seek_record: int | None = None


@dataclass(frozen=True, slots=True)
class FetchRequest:
    """One pull: up to ``max_chunks_per_entry`` durable chunks per position
    (the paper's consumers pull ``one chunk per streamlet`` per request).

    With ``serve_views=True`` the broker answers with zero-copy
    :class:`~repro.wire.views.ChunkView` objects over indexed frame
    ranges, deduplicated through the shared fan-out cache — the reader
    plane's fast path. The default stays the seed-era materialized-chunk
    form so existing drivers (and the fig13 simulation) are byte-for-byte
    unchanged.
    """

    request_id: int
    consumer_id: int
    positions: list[FetchPosition]
    max_chunks_per_entry: int = 1
    serve_views: bool = False

    def payload_bytes(self) -> int:
        return _REQUEST_HEADER_BYTES + _POSITION_BYTES * len(self.positions)


@dataclass(frozen=True, slots=True)
class FetchEntry:
    """Chunks for one position plus the advanced cursor.

    ``chunks`` holds :class:`Chunk` objects on the legacy path and
    :class:`~repro.wire.views.ChunkView` objects when the request asked
    for ``serve_views`` — both expose ``size``/``record_count``, so the
    accounting below is form-agnostic.
    """

    position: FetchPosition
    chunks: list[Chunk] | list[ChunkView]
    next_position: FetchPosition

    @property
    def record_count(self) -> int:
        return sum(c.record_count for c in self.chunks)


@dataclass(frozen=True, slots=True)
class FetchResponse:
    request_id: int
    entries: list[FetchEntry]

    def payload_bytes(self) -> int:
        total = _REQUEST_HEADER_BYTES
        for entry in self.entries:
            total += _POSITION_BYTES + sum(c.size for c in entry.chunks)
        return total

    @property
    def record_count(self) -> int:
        return sum(e.record_count for e in self.entries)

    @property
    def chunk_count(self) -> int:
        return sum(len(e.chunks) for e in self.entries)


@dataclass(frozen=True, slots=True)
class ReplicateRequest:
    """One virtual-log replication RPC: a slice of a virtual segment's
    chunks shipped to one backup.

    In materialized mode the request carries ``frames`` — zero-copy
    views of the already-encoded (and placement-stamped) chunk bytes in
    the broker's segment buffers — and the backup appends them verbatim.
    ``chunks`` is the metadata fidelity (and migration) form; exactly one
    of the two is populated.
    """

    src_broker: int
    vlog_id: int
    vseg_id: int
    vseg_capacity: int
    #: CRC over the shipped chunks' CRCs (virtual segment header checksum
    #: discipline — backups verify integrity per chunk as well).
    batch_checksum: int
    chunks: list[Chunk] = field(default_factory=list)
    #: Encoded chunk frames (header + payload each), or ``None`` when the
    #: request carries ``chunks``. The views alias broker segment memory;
    #: receivers must copy (append to their own buffer) and never mutate.
    frames: tuple[bytes | memoryview, ...] | None = None
    #: Whether the frame payload CRCs were already validated over these
    #: very bytes in this address space (the broker validated them on
    #: ingest and ships views of its own segment memory). In-process
    #: transports hand the request over by reference, so the bit holds at
    #: the backup; any transport that copies the request across an
    #: address-space boundary (shared-memory ring, socket) must rebuild
    #: it with ``frames_verified=False`` so the receiver re-validates.
    frames_verified: bool = False

    def payload_bytes(self) -> int:
        from repro.replication.chunk_ref import CHUNK_REF_WIRE_SIZE

        if self.frames is not None:
            return _REQUEST_HEADER_BYTES + sum(
                len(f) + CHUNK_REF_WIRE_SIZE for f in self.frames
            )
        return _REQUEST_HEADER_BYTES + sum(
            c.size + CHUNK_REF_WIRE_SIZE for c in self.chunks
        )


@dataclass(frozen=True, slots=True)
class ReplicateResponse:
    ok: bool = True
    bytes_held: int = 0

    def payload_bytes(self) -> int:
        return 16
