"""Crash recovery: re-ingest a failed broker's data from the backups.

``Backups read segments from disk and issue writes to the new brokers
responsible for recovering a crashed broker's lost data at recovery time.
Each of these requests is handled as a normal producer request (i.e.,
chunks are ingested into their respective groups) while metadata is
safely reconstructed`` (paper, Section IV-B).

Because consecutive virtual segments scatter over rotating backup sets,
each backup holds a *subset* of the broker's virtual segments, and with
R >= 3 every virtual segment exists on several backups. Recovery merges
the copies by virtual segment id (creation order — which, per virtual
log, is chunk append order), verifies replica consistency, routes every
chunk to the streamlet's new leader, and replays it through the ordinary
produce path. Exactly-once de-duplication makes replayed duplicates
harmless; per-(streamlet, entry) ordering is preserved because all chunks
of an entry flow through one virtual log.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.common.errors import RecoveryError
from repro.wire.chunk import Chunk
from repro.kera.inproc import InprocKeraCluster
from repro.kera.live import LiveKeraCluster
from repro.kera.messages import ProduceRequest


@dataclass
class RecoveryReport:
    """What a recovery pass did."""

    failed_broker: int
    vsegs_merged: int = 0
    chunks_recovered: int = 0
    records_recovered: int = 0
    duplicates_dropped: int = 0
    #: (stream, streamlet) -> new leader, as executed.
    reassignments: dict[tuple[int, int], int] = field(default_factory=dict)
    #: How many backups contributed at least one virtual segment.
    backups_read: int = 0


def merge_backup_copies(
    copies: list[list[tuple[int, list[Chunk]]]],
) -> list[tuple[int, list[Chunk]]]:
    """Merge per-backup ``(vseg_id, chunks)`` runs into one ordered run.

    Replicas of the same virtual segment must agree on the chunk sequence
    up to a prefix (a backup acked earlier batches only); the longest
    replica wins. Any divergence is a corruption signal, not a race.

    A single run may carry the same chunk twice: backup-failure repair
    re-ships a virtual segment's durable prefix, and a backup that
    already held part of it appends the repeats after its original copy.
    Those repeats are collapsed (first occurrence wins) before the
    prefix comparison — identical payloads are a repair echo, differing
    payloads are corruption.
    """

    def dedup_run(vseg_id: int, chunks: list[Chunk]) -> list[Chunk]:
        seen: dict[tuple[int, int, int, int], int] = {}
        out: list[Chunk] = []
        for chunk in chunks:
            key = (chunk.stream_id, *chunk.dedup_key())
            first = seen.get(key)
            if first is None:
                seen[key] = chunk.payload_crc
                out.append(chunk)
                continue
            if first != chunk.payload_crc:
                raise RecoveryError(
                    f"replica divergence in virtual segment {vseg_id}: "
                    f"repeated chunk {key} with differing payloads"
                )
        return out

    merged: dict[int, list[Chunk]] = {}
    for backup_run in copies:
        for vseg_id, chunks in backup_run:
            chunks = dedup_run(vseg_id, chunks)
            existing = merged.get(vseg_id)
            if existing is None:
                merged[vseg_id] = list(chunks)
                continue
            short, long_ = (
                (existing, chunks) if len(existing) <= len(chunks) else (chunks, existing)
            )
            for mine, theirs in zip(short, long_, strict=False):
                if mine.dedup_key() != theirs.dedup_key() or mine.payload_crc != theirs.payload_crc:
                    raise RecoveryError(
                        f"replica divergence in virtual segment {vseg_id}: "
                        f"{mine.dedup_key()} vs {theirs.dedup_key()}"
                    )
            merged[vseg_id] = list(long_)
    return [(vseg_id, merged[vseg_id]) for vseg_id in sorted(merged)]


def recover_broker(cluster: InprocKeraCluster, failed_broker: int) -> RecoveryReport:
    """Full recovery of one crashed broker on the in-process cluster.

    1. The coordinator marks the broker failed and reassigns streamlets.
    2. Surviving brokers repair virtual segments that used the dead node
       as a backup (:meth:`InprocKeraCluster.crash_broker`).
    3. Backups hand over the dead broker's replicated segments; copies
       are merged and replayed into the new leaders as ordinary produce
       requests, replicated to the (surviving) backups.
    """
    report = RecoveryReport(failed_broker=failed_broker)
    plan = cluster.coordinator.plan_recovery(failed_broker)
    report.reassignments = dict(plan.reassignments)
    cluster.crash_broker(failed_broker)

    # Gather the lost data from every surviving backup. Routed through
    # the cluster accessor so drivers whose backup cores live in another
    # address space answer over their transport.
    copies = []
    for node in sorted(cluster.backups):
        if node == failed_broker:
            continue
        run = cluster.backup_recovery_chunks(node, failed_broker)
        if run:
            copies.append(run)
            report.backups_read += 1
    merged = merge_backup_copies(copies)
    report.vsegs_merged = len(merged)

    # Make sure target brokers know the reassigned streamlets.
    for (stream_id, streamlet_id), target in plan.reassignments.items():
        broker = cluster.brokers[target]
        if stream_id in broker.registry:
            stream = broker.registry.get(stream_id)
            if streamlet_id not in stream.streamlet_ids:
                stream.add_streamlet(streamlet_id)
        else:
            broker.create_stream(stream_id, [streamlet_id])

    # Replay in virtual-segment order; route each chunk to its new leader.
    for _, chunks in merged:
        by_target: dict[int, list[Chunk]] = {}
        for chunk in chunks:
            target = plan.reassignments.get((chunk.stream_id, chunk.streamlet_id))
            if target is None:
                raise RecoveryError(
                    f"recovered chunk for ({chunk.stream_id}, {chunk.streamlet_id}) "
                    "which was not led by the failed broker"
                )
            by_target.setdefault(target, []).append(chunk)
        for target, target_chunks in by_target.items():
            broker = cluster.brokers[target]
            request = ProduceRequest(
                request_id=cluster._request_ids.next(),
                producer_id=0,  # per-chunk producer ids drive routing/dedup
                chunks=target_chunks,
            )
            outcome = broker.handle_produce(request)
            cluster.pump_replication(target)
            report.chunks_recovered += len(outcome.new_chunks)
            report.records_recovered += outcome.new_records
            report.duplicates_dropped += outcome.duplicates

    # The recovered broker's backup data is no longer needed. Routed
    # through the cluster accessor so process-hosted backups drop over
    # their transport.
    for node in sorted(cluster.backups):
        if node != failed_broker:
            cluster.backup_drop_broker(node, failed_broker)
    return report


@dataclass
class RestoreReport:
    """What a restart-from-disk restore pass did."""

    #: Backups whose disk held at least one segment file.
    backups_loaded: int = 0
    segment_files_read: int = 0
    chunks_loaded: int = 0
    #: Torn-tail bytes discarded while recovering segment files.
    bytes_truncated: int = 0
    indexes_rebuilt: int = 0
    #: Prior-incarnation brokers whose data was replayed, in id order.
    brokers_restored: list[int] = field(default_factory=list)
    vsegs_merged: int = 0
    chunks_replayed: int = 0
    records_restored: int = 0
    duplicates_dropped: int = 0


def restore_cluster_from_disk(
    cluster: LiveKeraCluster, *, parallel: int = 4, retire: bool = True
) -> RestoreReport:
    """Restart path: rebuild a fresh cluster from its backups' disks.

    Run against a *new* cluster incarnation pointed at the previous
    incarnation's ``persist_dir`` (streams re-created, no traffic yet):

    1. Every backup re-ingests its surviving segment files
       (:meth:`~repro.kera.backup.KeraBackupCore.load_from_disk` — torn
       tails truncated, indexes rebuilt, files read in parallel).
    2. For each prior broker, the per-backup copies are merged by virtual
       segment id exactly as live recovery merges them — with R >= 2 a
       backup that lost its unsynced tail is healed by a replica that
       fsynced further.
    3. Chunks are replayed in virtual-log order through the ordinary
       client produce path, so they land on the new leaders, re-replicate,
       and re-persist under the new incarnation's epoch. Exactly-once
       de-duplication drops chunks that reached several prior virtual
       logs (repair migration), keeping the replay idempotent.
    4. With ``retire=True`` the replay is fsynced and the consumed epoch
       directories are retired, so a second restart restores from the new
       epoch alone.
    """
    report = RestoreReport()
    nodes = sorted(cluster.backups)
    for node in nodes:
        summary = cluster.backup_load_disk(node, parallel=parallel)
        if summary["segments"]:
            report.backups_loaded += 1
        report.segment_files_read += summary["segments"]
        report.chunks_loaded += summary["chunks_loaded"]
        report.bytes_truncated += summary["bytes_truncated"]
        report.indexes_rebuilt += summary["indexes_rebuilt"]

    prior_brokers = sorted(
        {broker for node in nodes for broker in cluster.backup_loaded_brokers(node)}
    )
    for failed_broker in prior_brokers:
        copies = []
        for node in nodes:
            run = cluster.backup_disk_recovery_chunks(node, failed_broker)
            if run:
                copies.append(run)
        merged = merge_backup_copies(copies)
        report.vsegs_merged += len(merged)
        report.brokers_restored.append(failed_broker)
        for _, chunks in merged:
            responses = cluster.produce(chunks, producer_id=0)
            # produce() groups chunks by leader and answers in sorted
            # broker order; rebuild that grouping to pair each assignment
            # with its chunk for duplicate/record accounting.
            by_broker: dict[int, list[Chunk]] = defaultdict(list)
            for chunk in chunks:
                leader = cluster.leader_of(chunk.stream_id, chunk.streamlet_id)
                by_broker[leader].append(chunk)
            for response, broker_id in zip(responses, sorted(by_broker), strict=True):
                sent = by_broker[broker_id]
                for assignment, chunk in zip(response.assignments, sent, strict=True):
                    if assignment.duplicate:
                        report.duplicates_dropped += 1
                    else:
                        report.chunks_replayed += 1
                        report.records_restored += chunk.record_count

    if retire:
        # Only drop the consumed generation once the replay itself is on
        # disk under the new epoch — a crash mid-restore must still find
        # one complete copy.
        for node in nodes:
            cluster.backup_sync_flush(node)
        for node in nodes:
            cluster.backup_retire_epochs(node)
    return report
