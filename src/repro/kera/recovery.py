"""Crash recovery: re-ingest a failed broker's data from the backups.

``Backups read segments from disk and issue writes to the new brokers
responsible for recovering a crashed broker's lost data at recovery time.
Each of these requests is handled as a normal producer request (i.e.,
chunks are ingested into their respective groups) while metadata is
safely reconstructed`` (paper, Section IV-B).

Because consecutive virtual segments scatter over rotating backup sets,
each backup holds a *subset* of the broker's virtual segments, and with
R >= 3 every virtual segment exists on several backups. Recovery merges
the copies by virtual segment id (creation order — which, per virtual
log, is chunk append order), verifies replica consistency, routes every
chunk to the streamlet's new leader, and replays it through the ordinary
produce path. Exactly-once de-duplication makes replayed duplicates
harmless; per-(streamlet, entry) ordering is preserved because all chunks
of an entry flow through one virtual log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import RecoveryError
from repro.wire.chunk import Chunk
from repro.kera.inproc import InprocKeraCluster
from repro.kera.messages import ProduceRequest


@dataclass
class RecoveryReport:
    """What a recovery pass did."""

    failed_broker: int
    vsegs_merged: int = 0
    chunks_recovered: int = 0
    records_recovered: int = 0
    duplicates_dropped: int = 0
    #: (stream, streamlet) -> new leader, as executed.
    reassignments: dict[tuple[int, int], int] = field(default_factory=dict)
    #: How many backups contributed at least one virtual segment.
    backups_read: int = 0


def merge_backup_copies(
    copies: list[list[tuple[int, list[Chunk]]]],
) -> list[tuple[int, list[Chunk]]]:
    """Merge per-backup ``(vseg_id, chunks)`` runs into one ordered run.

    Replicas of the same virtual segment must agree on the chunk sequence
    up to a prefix (a backup acked earlier batches only); the longest
    replica wins. Any divergence is a corruption signal, not a race.
    """
    merged: dict[int, list[Chunk]] = {}
    for backup_run in copies:
        for vseg_id, chunks in backup_run:
            existing = merged.get(vseg_id)
            if existing is None:
                merged[vseg_id] = list(chunks)
                continue
            short, long_ = (
                (existing, chunks) if len(existing) <= len(chunks) else (chunks, existing)
            )
            for mine, theirs in zip(short, long_, strict=False):
                if mine.dedup_key() != theirs.dedup_key() or mine.payload_crc != theirs.payload_crc:
                    raise RecoveryError(
                        f"replica divergence in virtual segment {vseg_id}: "
                        f"{mine.dedup_key()} vs {theirs.dedup_key()}"
                    )
            merged[vseg_id] = list(long_)
    return [(vseg_id, merged[vseg_id]) for vseg_id in sorted(merged)]


def recover_broker(cluster: InprocKeraCluster, failed_broker: int) -> RecoveryReport:
    """Full recovery of one crashed broker on the in-process cluster.

    1. The coordinator marks the broker failed and reassigns streamlets.
    2. Surviving brokers repair virtual segments that used the dead node
       as a backup (:meth:`InprocKeraCluster.crash_broker`).
    3. Backups hand over the dead broker's replicated segments; copies
       are merged and replayed into the new leaders as ordinary produce
       requests, replicated to the (surviving) backups.
    """
    report = RecoveryReport(failed_broker=failed_broker)
    plan = cluster.coordinator.plan_recovery(failed_broker)
    report.reassignments = dict(plan.reassignments)
    cluster.crash_broker(failed_broker)

    # Gather the lost data from every surviving backup.
    copies = []
    for node, backup in cluster.backups.items():
        if node == failed_broker:
            continue
        run = backup.recovery_chunks(failed_broker)
        if run:
            copies.append(run)
            report.backups_read += 1
    merged = merge_backup_copies(copies)
    report.vsegs_merged = len(merged)

    # Make sure target brokers know the reassigned streamlets.
    for (stream_id, streamlet_id), target in plan.reassignments.items():
        broker = cluster.brokers[target]
        if stream_id in broker.registry:
            stream = broker.registry.get(stream_id)
            if streamlet_id not in stream.streamlet_ids:
                stream.add_streamlet(streamlet_id)
        else:
            broker.create_stream(stream_id, [streamlet_id])

    # Replay in virtual-segment order; route each chunk to its new leader.
    for _, chunks in merged:
        by_target: dict[int, list[Chunk]] = {}
        for chunk in chunks:
            target = plan.reassignments.get((chunk.stream_id, chunk.streamlet_id))
            if target is None:
                raise RecoveryError(
                    f"recovered chunk for ({chunk.stream_id}, {chunk.streamlet_id}) "
                    "which was not led by the failed broker"
                )
            by_target.setdefault(target, []).append(chunk)
        for target, target_chunks in by_target.items():
            broker = cluster.brokers[target]
            request = ProduceRequest(
                request_id=cluster._request_ids.next(),
                producer_id=0,  # per-chunk producer ids drive routing/dedup
                chunks=target_chunks,
            )
            outcome = broker.handle_produce(request)
            cluster.pump_replication(target)
            report.chunks_recovered += len(outcome.new_chunks)
            report.records_recovered += outcome.new_records
            report.duplicates_dropped += outcome.duplicates

    # The recovered broker's backup data is no longer needed.
    for node, backup in cluster.backups.items():
        if node != failed_broker:
            backup.store.drop_broker(failed_broker)
    return report
