"""Live KerA clusters: real payload bytes through a pluggable transport.

:class:`LiveKeraCluster` is the transport-agnostic facade shared by the
synchronous in-process driver (:mod:`repro.kera.inproc`) and the
concurrent threaded driver (:mod:`repro.kera.threaded`). It assembles the
cluster on :class:`repro.runtime.ClusterRuntime`, routes client requests
to leaders over the transport, and exposes the surface recovery and
migration drive (``brokers``/``backups``/``coordinator``/
``pump_replication``/``crash_broker``).

Subclasses register their transport-specific service wrappers in
:meth:`_register_services`; the backup-side effect handler
(:class:`LiveBackupService` — ingest a replicate RPC, schedule flushes)
is shared.
"""

from __future__ import annotations

import threading
from collections import defaultdict

from repro.common.errors import ConfigError, ReplicationError, StorageError
from repro.common.idgen import IdGenerator
from repro.runtime.runtime import ClusterRuntime
from repro.runtime.system import KeraSystem
from repro.runtime.transport import LiveService, Transport
from repro.kera.backup import KeraBackupCore
from repro.kera.broker import KeraBrokerCore
from repro.kera.config import KeraConfig
from repro.kera.messages import (
    FetchPosition,
    FetchRequest,
    FetchResponse,
    ProduceRequest,
    ProduceResponse,
)
from repro.wire.chunk import Chunk

#: Virtual node id for transport calls originating outside the cluster.
CLIENT_NODE = -1


class LiveBackupService(LiveService):
    """Backup effect handler: ingest replicate RPCs, run flushes."""

    def __init__(self, cluster: "LiveKeraCluster", node_id: int) -> None:
        self.cluster = cluster
        self.core: KeraBackupCore = cluster.backups[node_id]
        self._lock = threading.Lock()

    def handle(self, method: str, request: object) -> object:
        if method != "replicate":
            raise ConfigError(f"unknown backup method {method!r}")
        with self._lock:
            response, flush = self.core.handle_replicate(request)
            if flush is not None:
                self.cluster._record_flush()
                self.core.persist(flush)
        return response


class LiveKeraCluster:
    """A whole KerA cluster in one process, behind one transport."""

    def __init__(self, config: KeraConfig | None, transport: Transport) -> None:
        self.config = config or KeraConfig()
        self.system = KeraSystem(self.config)
        self.transport = transport
        self.runtime = ClusterRuntime(self.system, transport)
        self.coordinator = self.runtime.coordinator
        self._id_lock = threading.Lock()
        self._flush_lock = threading.Lock()
        self._failed_lock = threading.Lock()
        self._request_ids = IdGenerator()  # guarded-by: _id_lock
        self.flushes_scheduled = 0  # guarded-by: _flush_lock
        self._failed: set[int] = set()  # guarded-by: _failed_lock
        self._register_services()
        self.runtime.start()

    # -- subclass hook -----------------------------------------------------------

    def _register_services(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    # -- core access --------------------------------------------------------------

    @property
    def brokers(self) -> dict[int, KeraBrokerCore]:
        return self.system.broker_cores

    @property
    def backups(self) -> dict[int, KeraBackupCore]:
        return self.system.backup_cores

    def _next_request_id(self) -> int:
        with self._id_lock:
            return self._request_ids.next()

    def _record_flush(self) -> None:
        with self._flush_lock:
            self.flushes_scheduled += 1

    # -- cluster management --------------------------------------------------------

    def create_stream(self, stream_id: int, num_streamlets: int) -> None:
        """Create a stream and register its streamlets on their leaders."""
        self.runtime.create_stream(stream_id, num_streamlets)

    def leader_of(self, stream_id: int, streamlet_id: int) -> int:
        return self.runtime.leader_of(stream_id, streamlet_id)

    # -- produce path ----------------------------------------------------------------

    def produce(self, chunks: list[Chunk], producer_id: int) -> list[ProduceResponse]:
        """Route chunks to their leaders, append, replicate, and return
        the (acknowledged) responses — one per broker touched."""
        by_broker: dict[int, list[Chunk]] = defaultdict(list)
        for chunk in chunks:
            leader = self.leader_of(chunk.stream_id, chunk.streamlet_id)
            by_broker[leader].append(chunk)
        responses = []
        for broker_id in sorted(by_broker):
            request = ProduceRequest(
                request_id=self._next_request_id(),
                producer_id=producer_id,
                chunks=by_broker[broker_id],
            )
            responses.append(
                self.transport.call(
                    CLIENT_NODE,
                    broker_id,
                    "broker",
                    "produce",
                    request,
                    request.payload_bytes(),
                )
            )
        return responses

    # -- replication ------------------------------------------------------------------

    def _replication_send(self, broker_id: int):
        """The ``send`` effect for :meth:`KeraSystem.drive_replication`:
        one replicate RPC over the transport, refusing failed nodes."""

        def send(backup_node: int, request) -> None:
            with self._failed_lock:
                failed = backup_node in self._failed
            if failed:
                raise ReplicationError(f"replication to failed node {backup_node}")
            self.transport.call(
                broker_id,
                backup_node,
                "backup",
                "replicate",
                request,
                request.payload_bytes(),
            )

        return send

    def pump_replication(self, broker_id: int) -> int:
        """Ship every ready replication batch of a broker to its backups,
        synchronously, until the broker has nothing left to ship."""
        return self.system.drive_replication(
            broker_id, self._replication_send(broker_id)
        )

    # -- fetch path ---------------------------------------------------------------------

    def fetch(
        self,
        positions: list[FetchPosition],
        *,
        consumer_id: int,
        max_chunks_per_entry: int = 16,
    ) -> list[FetchResponse]:
        """Fetch durable chunks, grouping positions by leader."""
        by_broker: dict[int, list[FetchPosition]] = defaultdict(list)
        for pos in positions:
            by_broker[self.leader_of(pos.stream_id, pos.streamlet_id)].append(pos)
        responses = []
        for broker_id in sorted(by_broker):
            request = FetchRequest(
                request_id=self._next_request_id(),
                consumer_id=consumer_id,
                positions=by_broker[broker_id],
                max_chunks_per_entry=max_chunks_per_entry,
            )
            responses.append(
                self.transport.call(
                    CLIENT_NODE,
                    broker_id,
                    "broker",
                    "fetch",
                    request,
                    request.payload_bytes(),
                )
            )
        return responses

    # -- failure injection -------------------------------------------------------------------

    def crash_broker(self, broker_id: int) -> None:
        """Take a node down: its broker and backup stop responding."""
        if broker_id not in self.brokers:
            raise StorageError(f"unknown broker {broker_id}")
        # Shipper threads consult _failed on every replicate RPC; the
        # mutation (and the survivor snapshot) must not race them.
        with self._failed_lock:
            self._failed.add(broker_id)
            failed = set(self._failed)
        for survivor_id, broker in self.brokers.items():
            if survivor_id in failed:
                continue
            repairs = broker.handle_backup_failure(broker_id)
            # Ship repair batches to the replacement backups.
            send = self._replication_send(survivor_id)
            for batch in repairs:
                request = self.system.replicate_request(survivor_id, batch)
                for backup_node in batch.backups:
                    send(backup_node, request)

    @property
    def live_broker_ids(self) -> list[int]:
        with self._failed_lock:
            failed = set(self._failed)
        return [b for b in sorted(self.brokers) if b not in failed]

    # -- lifecycle ----------------------------------------------------------------------------

    def shutdown(self) -> None:
        self.runtime.shutdown()

    def __enter__(self) -> "LiveKeraCluster":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
