"""Live KerA clusters: real payload bytes through a pluggable transport.

:class:`LiveKeraCluster` is the transport-agnostic facade shared by the
synchronous in-process driver (:mod:`repro.kera.inproc`) and the
concurrent threaded driver (:mod:`repro.kera.threaded`). It assembles the
cluster on :class:`repro.runtime.ClusterRuntime`, routes client requests
to leaders over the transport, and exposes the surface recovery and
migration drive (``brokers``/``backups``/``coordinator``/
``pump_replication``/``crash_broker``).

Subclasses register their transport-specific service wrappers in
:meth:`_register_services`; the backup-side effect handler
(:class:`LiveBackupService` — ingest a replicate RPC, schedule flushes)
is shared.
"""

from __future__ import annotations

import threading
from collections import defaultdict

from repro.common.errors import ConfigError, ReplicationError, StorageError
from repro.common.idgen import IdGenerator
from repro.runtime.runtime import ClusterRuntime
from repro.runtime.system import KeraSystem
from repro.runtime.transport import LiveService, Transport
from repro.kera.backup import FlushWork, KeraBackupCore
from repro.persist import BackupFlusher
from repro.kera.broker import KeraBrokerCore
from repro.kera.config import KeraConfig
from repro.kera.messages import (
    FetchPosition,
    FetchRequest,
    FetchResponse,
    ProduceRequest,
    ProduceResponse,
)
from repro.wire.chunk import Chunk

#: Virtual node id for transport calls originating outside the cluster.
CLIENT_NODE = -1


class LiveBackupService(LiveService):
    """Backup effect handler: ingest replicate RPCs, schedule flushes.

    With a flusher thread registered for the node (threaded driver with
    a persist dir), flush work is submitted asynchronously and the ack
    returns without touching the disk — the paper's ack-from-buffer,
    flush-async semantics. Without one (inproc driver), flushes run
    inline, keeping that driver single-threaded and deterministic.
    """

    def __init__(self, cluster: "LiveKeraCluster", node_id: int) -> None:
        self.cluster = cluster
        self.node_id = node_id
        self.core: KeraBackupCore = cluster.backups[node_id]
        self._lock = threading.Lock()

    def handle(self, method: str, request: object) -> object:
        if method != "replicate":
            raise ConfigError(f"unknown backup method {method!r}")
        with self._lock:
            response, flush = self.core.handle_replicate(request)
            works = self.core.take_sealed_flushes()
            if flush is not None:
                works.append(flush)
            if works:
                flusher = self.cluster.flusher_for(self.node_id)
                for work in works:
                    self.cluster._record_flush()
                    if flusher is not None:
                        flusher.submit(work, work.nbytes)
                    else:
                        self.core.persist(work)
        return response


class LiveKeraCluster:
    """A whole KerA cluster in one process, behind one transport."""

    def __init__(self, config: KeraConfig | None, transport: Transport) -> None:
        self.config = config or KeraConfig()
        self.system = KeraSystem(self.config)
        self.transport = transport
        self.runtime = ClusterRuntime(self.system, transport)
        self.coordinator = self.runtime.coordinator
        self._id_lock = threading.Lock()
        self._flush_lock = threading.Lock()
        self._failed_lock = threading.Lock()
        self._request_ids = IdGenerator()  # guarded-by: _id_lock
        self.flushes_scheduled = 0  # guarded-by: _flush_lock
        self._failed: set[int] = set()  # guarded-by: _failed_lock
        self._flushers: dict[int, "BackupFlusher[FlushWork]"] = {}
        self._persistence_drained = False
        self._start_flushers()
        self._register_services()
        self.runtime.start()

    # -- subclass hooks -----------------------------------------------------------

    def _register_services(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def _start_flushers(self) -> None:
        """Create per-backup flusher threads (concurrent drivers with a
        persist dir). The base cluster persists inline: the synchronous
        inproc driver stays deterministic."""

    # -- core access --------------------------------------------------------------

    @property
    def brokers(self) -> dict[int, KeraBrokerCore]:
        return self.system.broker_cores

    @property
    def backups(self) -> dict[int, KeraBackupCore]:
        return self.system.backup_cores

    def _next_request_id(self) -> int:
        with self._id_lock:
            return self._request_ids.next()

    def _record_flush(self) -> None:
        with self._flush_lock:
            self.flushes_scheduled += 1

    # -- durable tier --------------------------------------------------------------

    def flusher_for(self, node_id: int) -> "BackupFlusher[FlushWork] | None":
        return self._flushers.get(node_id)

    def flush_lag_bytes(self, node_id: int) -> int:
        """Bytes acked by the node's backup but not yet written to disk."""
        flusher = self._flushers.get(node_id)
        return 0 if flusher is None else flusher.flush_lag_bytes

    def segments_on_disk(self, node_id: int) -> int:
        return self.backups[node_id].segments_on_disk

    def wait_flush_idle(self, timeout: float | None = None) -> bool:
        """Block until every backup's flush queue is drained."""
        ok = True
        for flusher in self._flushers.values():
            ok = flusher.wait_idle(timeout) and ok
        return ok

    def backup_sync_flush(self, node_id: int) -> int:
        """Force one backup's unflushed tail to disk, fsync'd regardless
        of policy; returns its segment-file count. Call only while no
        replicate traffic is in flight for the node."""
        core = self.backups[node_id]
        works = core.drain_flush()
        flusher = self._flushers.get(node_id)
        if flusher is not None:
            for work in works:
                flusher.submit(work, work.nbytes)
            flusher.wait_idle(30.0)
            flusher.check()
        else:
            for work in works:
                core.persist(work)
        if core.persistence is not None:
            core.persistence.sync_all()
        return core.segments_on_disk

    # -- recovery / restart accessors ----------------------------------------------
    # Routed through the cluster so drivers whose backup cores live in
    # another address space (process mode) can override with RPCs.

    def backup_recovery_chunks(
        self, node_id: int, failed_broker: int
    ) -> list[tuple[int, list[Chunk]]]:
        """A backup's held chunks for a crashed broker (live recovery)."""
        return self.backups[node_id].recovery_chunks(failed_broker)

    def backup_load_disk(self, node_id: int, *, parallel: int = 4) -> dict:
        """Re-ingest a backup's segment files; returns a summary dict."""
        report = self.backups[node_id].load_from_disk(parallel=parallel)
        return {
            "segments": len(report.segments),
            "chunks_loaded": report.chunks_loaded,
            "bytes_truncated": report.bytes_truncated,
            "files_scanned": report.files_scanned,
            "files_skipped": report.files_skipped,
            "files_superseded": report.files_superseded,
            "indexes_rebuilt": report.indexes_rebuilt,
            "epochs_loaded": list(report.epochs_loaded),
        }

    def backup_loaded_brokers(self, node_id: int) -> list[int]:
        """Source brokers a restarted backup holds disk data for."""
        return self.backups[node_id].loaded_brokers()

    def backup_disk_recovery_chunks(
        self, node_id: int, failed_broker: int
    ) -> list[tuple[int, list[Chunk]]]:
        """A restarted backup's disk-loaded chunks for a prior broker."""
        return self.backups[node_id].disk_recovery_chunks(failed_broker)

    def backup_retire_epochs(self, node_id: int) -> None:
        """Drop a backup's loaded generation after a completed restore."""
        self.backups[node_id].retire_loaded_epochs()

    # -- cluster management --------------------------------------------------------

    def create_stream(self, stream_id: int, num_streamlets: int) -> None:
        """Create a stream and register its streamlets on their leaders."""
        self.runtime.create_stream(stream_id, num_streamlets)

    def leader_of(self, stream_id: int, streamlet_id: int) -> int:
        return self.runtime.leader_of(stream_id, streamlet_id)

    # -- produce path ----------------------------------------------------------------

    def produce(self, chunks: list[Chunk], producer_id: int) -> list[ProduceResponse]:
        """Route chunks to their leaders, append, replicate, and return
        the (acknowledged) responses — one per broker touched."""
        by_broker: dict[int, list[Chunk]] = defaultdict(list)
        for chunk in chunks:
            leader = self.leader_of(chunk.stream_id, chunk.streamlet_id)
            by_broker[leader].append(chunk)
        responses = []
        for broker_id in sorted(by_broker):
            request = ProduceRequest(
                request_id=self._next_request_id(),
                producer_id=producer_id,
                chunks=by_broker[broker_id],
            )
            responses.append(
                self.transport.call(
                    CLIENT_NODE,
                    broker_id,
                    "broker",
                    "produce",
                    request,
                    request.payload_bytes(),
                )
            )
        return responses

    # -- replication ------------------------------------------------------------------

    def _replication_send(self, broker_id: int):
        """The ``send`` effect for :meth:`KeraSystem.drive_replication`:
        one replicate RPC over the transport, refusing failed nodes."""

        def send(backup_node: int, request) -> None:
            with self._failed_lock:
                failed = backup_node in self._failed
            if failed:
                raise ReplicationError(f"replication to failed node {backup_node}")
            self.transport.call(
                broker_id,
                backup_node,
                "backup",
                "replicate",
                request,
                request.payload_bytes(),
            )

        return send

    def pump_replication(self, broker_id: int) -> int:
        """Ship every ready replication batch of a broker to its backups,
        synchronously, until the broker has nothing left to ship."""
        return self.system.drive_replication(
            broker_id, self._replication_send(broker_id)
        )

    # -- fetch path ---------------------------------------------------------------------

    def fetch(
        self,
        positions: list[FetchPosition],
        *,
        consumer_id: int,
        max_chunks_per_entry: int = 16,
        serve_views: bool = False,
    ) -> list[FetchResponse]:
        """Fetch durable chunks, grouping positions by leader."""
        by_broker: dict[int, list[FetchPosition]] = defaultdict(list)
        for pos in positions:
            by_broker[self.leader_of(pos.stream_id, pos.streamlet_id)].append(pos)
        responses = []
        for broker_id in sorted(by_broker):
            request = FetchRequest(
                request_id=self._next_request_id(),
                consumer_id=consumer_id,
                positions=by_broker[broker_id],
                max_chunks_per_entry=max_chunks_per_entry,
                serve_views=serve_views,
            )
            responses.append(
                self.transport.call(
                    CLIENT_NODE,
                    broker_id,
                    "broker",
                    "fetch",
                    request,
                    request.payload_bytes(),
                )
            )
        return responses

    # -- failure injection -------------------------------------------------------------------

    def crash_broker(self, broker_id: int) -> None:
        """Take a node down: its broker and backup stop responding."""
        if broker_id not in self.brokers:
            raise StorageError(f"unknown broker {broker_id}")
        # Shipper threads consult _failed on every replicate RPC; the
        # mutation (and the survivor snapshot) must not race them.
        with self._failed_lock:
            self._failed.add(broker_id)
            failed = set(self._failed)
        for survivor_id, broker in self.brokers.items():
            if survivor_id in failed:
                continue
            repairs = broker.handle_backup_failure(broker_id)
            # Ship repair batches to the replacement backups.
            send = self._replication_send(survivor_id)
            for batch in repairs:
                request = self.system.replicate_request(survivor_id, batch)
                for backup_node in batch.backups:
                    send(backup_node, request)

    @property
    def live_broker_ids(self) -> list[int]:
        with self._failed_lock:
            failed = set(self._failed)
        return [b for b in sorted(self.brokers) if b not in failed]

    # -- lifecycle ----------------------------------------------------------------------------

    def _drain_persistence(self) -> None:
        """Flush every backup's unflushed tail and close the segment files.

        Called once, after the transport stopped delivering replicate
        RPCs, so nothing races the cores. Flusher threads drain their
        queues before stopping; a clean close syncs unless the policy is
        ``never``.
        """
        if self._persistence_drained:
            return
        self._persistence_drained = True
        for node_id in sorted(self.backups):
            core = self.backups[node_id]
            flusher = self._flushers.get(node_id)
            works = core.drain_flush()
            if flusher is not None:
                for work in works:
                    flusher.submit(work, work.nbytes)
                flusher.stop(drain=True)
            else:
                for work in works:
                    core.persist(work)
            core.close_persistence()

    def shutdown(self) -> None:
        self.runtime.shutdown()
        self._drain_persistence()

    def simulate_power_loss(self) -> None:
        """Crash-test hook: stop the cluster *without* the durable tier's
        clean drain/close. Segment files keep exactly what the fsync
        policy already pushed — the state a process kill leaves behind —
        so restart tests and demos can prove recovery from it."""
        self._persistence_drained = True  # makes the clean drain a no-op
        self.shutdown()
        for flusher in self._flushers.values():
            flusher.stop(drain=False)

    def __enter__(self) -> "LiveKeraCluster":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
