"""Live KerA clusters: real payload bytes through a pluggable transport.

:class:`LiveKeraCluster` is the transport-agnostic facade shared by the
synchronous in-process driver (:mod:`repro.kera.inproc`) and the
concurrent threaded driver (:mod:`repro.kera.threaded`). It assembles the
cluster on :class:`repro.runtime.ClusterRuntime`, routes client requests
to leaders over the transport, and exposes the surface recovery and
migration drive (``brokers``/``backups``/``coordinator``/
``pump_replication``/``crash_broker``).

Subclasses register their transport-specific service wrappers in
:meth:`_register_services`; the backup-side effect handler
(:class:`LiveBackupService` — ingest a replicate RPC, schedule flushes)
is shared.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from collections.abc import Callable

from repro.common.errors import (
    ConfigError,
    NotLeaderError,
    ReplicationError,
    StorageError,
)
from repro.common.idgen import IdGenerator
from repro.runtime.runtime import ClusterRuntime
from repro.runtime.system import KeraSystem
from repro.runtime.transport import LiveService, Transport
from repro.kera.backup import FlushWork, KeraBackupCore
from repro.persist import BackupFlusher
from repro.kera.broker import KeraBrokerCore
from repro.kera.config import KeraConfig
from repro.kera.messages import (
    FetchPosition,
    FetchRequest,
    FetchResponse,
    ProduceRequest,
    ProduceResponse,
)
from repro.wire.chunk import Chunk

#: Virtual node id for transport calls originating outside the cluster.
CLIENT_NODE = -1

#: ``on_complete(response, error)`` for one broker's async produce:
#: exactly one of the two is non-None, fired exactly once.
ProduceCallback = Callable[["ProduceResponse | None", "BaseException | None"], None]


class _AsyncProduce:
    """One in-flight completion-driven produce toward a single broker."""

    __slots__ = (
        "broker_id",
        "request_id",
        "on_complete",
        "deadline",
        "response",
        "done",
        "route",
    )

    def __init__(
        self,
        broker_id: int,
        request_id: int,
        on_complete: ProduceCallback,
        deadline: float,
        route: tuple[int, int] | None = None,
    ) -> None:
        self.broker_id = broker_id
        self.request_id = request_id
        self.on_complete = on_complete
        self.deadline = deadline
        #: (stream_id, streamlet_id) of the request's first chunk, so a
        #: broker fence can fail this produce with a typed routing error.
        self.route = route
        self.response: ProduceResponse | None = None
        self.done = False  # checked-and-set under the owning cluster's _async_lock


class LiveBackupService(LiveService):
    """Backup effect handler: ingest replicate RPCs, schedule flushes.

    With a flusher thread registered for the node (threaded driver with
    a persist dir), flush work is submitted asynchronously and the ack
    returns without touching the disk — the paper's ack-from-buffer,
    flush-async semantics. Without one (inproc driver), flushes run
    inline, keeping that driver single-threaded and deterministic.
    """

    def __init__(self, cluster: "LiveKeraCluster", node_id: int) -> None:
        self.cluster = cluster
        self.node_id = node_id
        self.core: KeraBackupCore = cluster.backups[node_id]
        self._lock = threading.Lock()

    def handle(self, method: str, request: object) -> object:
        if method != "replicate":
            raise ConfigError(f"unknown backup method {method!r}")
        with self._lock:
            response, flush = self.core.handle_replicate(request)
            works = self.core.take_sealed_flushes()
            if flush is not None:
                works.append(flush)
            if works:
                flusher = self.cluster.flusher_for(self.node_id)
                for work in works:
                    self.cluster._record_flush()
                    if flusher is not None:
                        flusher.submit(work, work.nbytes)
                    else:
                        self.core.persist(work)
        return response


class LiveKeraCluster:
    """A whole KerA cluster in one process, behind one transport."""

    #: How long a produce ack may stay outstanding before it fails.
    #: Concurrent drivers override per instance; the synchronous inproc
    #: driver resolves every produce inline and never consults it as a
    #: real wait.
    ack_timeout: float = 10.0

    def __init__(self, config: KeraConfig | None, transport: Transport) -> None:
        self.config = config or KeraConfig()
        self.system = KeraSystem(self.config)
        self.transport = transport
        self.runtime = ClusterRuntime(self.system, transport)
        self.coordinator = self.runtime.coordinator
        self._id_lock = threading.Lock()
        self._flush_lock = threading.Lock()
        self._failed_lock = threading.Lock()
        self._request_ids = IdGenerator()  # guarded-by: _id_lock
        self.flushes_scheduled = 0  # guarded-by: _flush_lock
        self._failed: set[int] = set()  # guarded-by: _failed_lock
        self._async_lock = threading.Lock()
        # broker -> request_id -> in-flight async produce state.
        self._async_produces: dict[int, dict[int, _AsyncProduce]] = {}  # guarded-by: _async_lock
        self._flushers: dict[int, "BackupFlusher[FlushWork]"] = {}
        self._persistence_drained = False
        # The live failover plane, when installed (repro.failover.plane).
        # The cluster never imports it: the dependency points failover →
        # kera, keeping this module free of signal/process machinery.
        self._failover = None
        self._start_flushers()
        self._register_services()
        self.runtime.start()

    # -- subclass hooks -----------------------------------------------------------

    def _register_services(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def _start_flushers(self) -> None:
        """Create per-backup flusher threads (concurrent drivers with a
        persist dir). The base cluster persists inline: the synchronous
        inproc driver stays deterministic."""

    # -- core access --------------------------------------------------------------

    @property
    def brokers(self) -> dict[int, KeraBrokerCore]:
        return self.system.broker_cores

    @property
    def backups(self) -> dict[int, KeraBackupCore]:
        return self.system.backup_cores

    def _next_request_id(self) -> int:
        with self._id_lock:
            return self._request_ids.next()

    def _record_flush(self) -> None:
        with self._flush_lock:
            self.flushes_scheduled += 1

    # -- durable tier --------------------------------------------------------------

    def flusher_for(self, node_id: int) -> "BackupFlusher[FlushWork] | None":
        return self._flushers.get(node_id)

    def flush_lag_bytes(self, node_id: int) -> int:
        """Bytes acked by the node's backup but not yet written to disk."""
        flusher = self._flushers.get(node_id)
        return 0 if flusher is None else flusher.flush_lag_bytes

    def segments_on_disk(self, node_id: int) -> int:
        return self.backups[node_id].segments_on_disk

    def wait_flush_idle(self, timeout: float | None = None) -> bool:
        """Block until every backup's flush queue is drained."""
        ok = True
        for flusher in self._flushers.values():
            ok = flusher.wait_idle(timeout) and ok
        return ok

    def backup_sync_flush(self, node_id: int) -> int:
        """Force one backup's unflushed tail to disk, fsync'd regardless
        of policy; returns its segment-file count. Call only while no
        replicate traffic is in flight for the node."""
        core = self.backups[node_id]
        works = core.drain_flush()
        flusher = self._flushers.get(node_id)
        if flusher is not None:
            for work in works:
                flusher.submit(work, work.nbytes)
            flusher.wait_idle(30.0)
            flusher.check()
        else:
            for work in works:
                core.persist(work)
        if core.persistence is not None:
            core.persistence.sync_all()
        return core.segments_on_disk

    # -- recovery / restart accessors ----------------------------------------------
    # Routed through the cluster so drivers whose backup cores live in
    # another address space (process mode) can override with RPCs.

    def backup_recovery_chunks(
        self, node_id: int, failed_broker: int
    ) -> list[tuple[int, list[Chunk]]]:
        """A backup's held chunks for a crashed broker (live recovery)."""
        return self.backups[node_id].recovery_chunks(failed_broker)

    def backup_load_disk(self, node_id: int, *, parallel: int = 4) -> dict:
        """Re-ingest a backup's segment files; returns a summary dict."""
        report = self.backups[node_id].load_from_disk(parallel=parallel)
        return {
            "segments": len(report.segments),
            "chunks_loaded": report.chunks_loaded,
            "bytes_truncated": report.bytes_truncated,
            "files_scanned": report.files_scanned,
            "files_skipped": report.files_skipped,
            "files_superseded": report.files_superseded,
            "indexes_rebuilt": report.indexes_rebuilt,
            "epochs_loaded": list(report.epochs_loaded),
        }

    def backup_loaded_brokers(self, node_id: int) -> list[int]:
        """Source brokers a restarted backup holds disk data for."""
        return self.backups[node_id].loaded_brokers()

    def backup_disk_recovery_chunks(
        self, node_id: int, failed_broker: int
    ) -> list[tuple[int, list[Chunk]]]:
        """A restarted backup's disk-loaded chunks for a prior broker."""
        return self.backups[node_id].disk_recovery_chunks(failed_broker)

    def backup_retire_epochs(self, node_id: int) -> None:
        """Drop a backup's loaded generation after a completed restore."""
        self.backups[node_id].retire_loaded_epochs()

    # -- cluster management --------------------------------------------------------

    def create_stream(self, stream_id: int, num_streamlets: int) -> None:
        """Create a stream and register its streamlets on their leaders."""
        self.runtime.create_stream(stream_id, num_streamlets)

    def leader_of(self, stream_id: int, streamlet_id: int) -> int:
        return self.runtime.leader_of(stream_id, streamlet_id)

    # -- produce path ----------------------------------------------------------------

    def submit_produce(
        self,
        broker_id: int,
        chunks: list[Chunk],
        producer_id: int,
        on_complete: ProduceCallback,
        *,
        on_append: Callable[[], None] | None = None,
    ) -> int:
        """Issue one broker's produce without blocking any caller thread.

        The request is appended and replication kicked by the broker's
        ``produce_async`` handler; the ack wait is completion-driven:
        ``on_complete(response, error)`` fires exactly once — on a
        transport or shipper thread (or inline, for synchronous
        transports) — when every chunk is durable, or on failure/timeout.
        ``on_append``, when given, fires once the broker has *appended*
        the chunks (pipelined callers use it as the ordering barrier: a
        producer's next request for the same broker may only be submitted
        after the previous append returned, which keeps per-streamlet
        ``chunk_seq`` order intact while replication acks still overlap).
        Returns the request id.
        """
        request = ProduceRequest(
            request_id=self._next_request_id(),
            producer_id=producer_id,
            chunks=chunks,
        )
        state = _AsyncProduce(
            broker_id,
            request.request_id,
            on_complete,
            time.monotonic() + self.ack_timeout,
            (chunks[0].stream_id, chunks[0].streamlet_id) if chunks else None,
        )
        with self._async_lock:
            self._async_produces.setdefault(broker_id, {})[request.request_id] = state

        def on_submitted(outcome, error: BaseException | None) -> None:
            # Transport thread (or inline): the append finished (or the
            # call itself failed). Free the caller's ordering barrier
            # first — even on error, so pipelined callers never wedge.
            if on_append is not None:
                on_append()
            if error is not None:
                self._finish_async(state, None, error)
                return
            state.response = outcome.response
            if not outcome.pending:
                self._finish_async(state, outcome.response, None)
                return
            if self.runtime.completion.register(
                broker_id,
                request.request_id,
                lambda: self._finish_async(state, state.response, None),
            ):
                # Ack-before-register: replication finished before we got
                # here; the tracker remembered it.
                self._finish_async(state, state.response, None)
                return
            # Register-before-ack: the waiter is parked. If the broker's
            # shipper died in the window before the registration, no ack
            # will ever fire — fail now rather than waiting for the sweep.
            shipper_error = self._shipper_error(broker_id)
            if shipper_error is not None:
                self._finish_async(state, None, shipper_error)

        try:
            self.transport.call_async(
                CLIENT_NODE,
                broker_id,
                "broker",
                "produce_async",
                request,
                request.payload_bytes(),
                on_done=on_submitted,
            )
        except BaseException as exc:  # noqa: BLE001 - enqueue-side failure
            if on_append is not None:
                on_append()
            self._finish_async(state, None, exc)
        return request.request_id

    def produce_async(
        self,
        chunks: list[Chunk],
        producer_id: int,
        on_complete: ProduceCallback,
    ) -> int:
        """Route chunks to their leaders and kick off append+replication
        for each; ``on_complete`` fires once per broker touched as its
        response becomes durable. No caller thread blocks. Returns the
        number of broker submissions (= expected callbacks)."""
        by_broker: dict[int, list[Chunk]] = defaultdict(list)
        for chunk in chunks:
            leader = self.leader_of(chunk.stream_id, chunk.streamlet_id)
            by_broker[leader].append(chunk)
        for broker_id in sorted(by_broker):
            self.submit_produce(broker_id, by_broker[broker_id], producer_id, on_complete)
        return len(by_broker)

    def produce(self, chunks: list[Chunk], producer_id: int) -> list[ProduceResponse]:
        """Route chunks to their leaders, append, replicate, and return
        the (acknowledged) responses — one per broker touched.

        A thin blocking wrapper over :meth:`submit_produce`: the caller
        parks on one event while the completion path does the work."""
        by_broker: dict[int, list[Chunk]] = defaultdict(list)
        for chunk in chunks:
            leader = self.leader_of(chunk.stream_id, chunk.streamlet_id)
            by_broker[leader].append(chunk)
        order = sorted(by_broker)
        slots: list[ProduceResponse | None] = [None] * len(order)
        errors: list[BaseException] = []
        done = threading.Event()
        lock = threading.Lock()
        pending = len(order)

        def callback_for(index: int) -> ProduceCallback:
            def on_complete(
                response: ProduceResponse | None, error: BaseException | None
            ) -> None:
                nonlocal pending
                with lock:
                    slots[index] = response
                    if error is not None:
                        errors.append(error)
                    pending -= 1
                    last = pending == 0
                if last:
                    done.set()

            return on_complete

        for index, broker_id in enumerate(order):
            self.submit_produce(
                broker_id, by_broker[broker_id], producer_id, callback_for(index)
            )
        # submit_produce enforces ack_timeout itself (shipper sweep); the
        # wait here is a backstop with headroom so the typed timeout error
        # from the completion path wins the race.
        if not done.wait(self.ack_timeout + 5.0):
            raise ReplicationError(
                f"produce of {len(chunks)} chunks did not resolve within "
                f"{self.ack_timeout + 5.0}s"
            )
        if errors:
            raise errors[0]
        return [response for response in slots if response is not None]

    # -- async produce bookkeeping ---------------------------------------------------

    def _finish_async(
        self,
        state: _AsyncProduce,
        response: ProduceResponse | None,
        error: BaseException | None,
    ) -> None:
        """Resolve one async produce exactly once (any thread)."""
        with self._async_lock:
            if state.done:
                return
            state.done = True
            per_broker = self._async_produces.get(state.broker_id)
            if per_broker is not None:
                per_broker.pop(state.request_id, None)
                if not per_broker:
                    self._async_produces.pop(state.broker_id, None)
        # Whatever path resolved us, the tracker must not keep a parked
        # waiter (error/timeout path) or a stale early mark around.
        self.runtime.completion.discard(state.broker_id, state.request_id)
        state.on_complete(response, error)

    def _shipper_error(self, broker_id: int) -> BaseException | None:
        """The broker's replication-shipper failure, if any (concurrent
        drivers override; the synchronous driver has no shippers)."""
        return None

    def _on_shipper_error(self, broker_id: int, error: BaseException) -> None:
        """A broker's shipper died: fail every produce parked on it."""
        with self._async_lock:
            states = list(self._async_produces.get(broker_id, {}).values())
        for state in states:
            self._finish_async(
                state,
                None,
                ReplicationError(
                    f"replication shipper for broker {broker_id} failed: {error!r}"
                ),
            )

    def _sweep_async_produces(self, broker_id: int) -> None:
        """Fail async produces past their ack deadline (shipper-thread
        housekeeping; the completion-driven analogue of the parked
        handler's ``Event.wait(ack_timeout)`` expiring)."""
        now = time.monotonic()
        with self._async_lock:
            expired = [
                state
                for state in self._async_produces.get(broker_id, {}).values()
                if now >= state.deadline
            ]
        for state in expired:
            self._finish_async(
                state,
                None,
                ReplicationError(
                    f"request {state.request_id} not durable within "
                    f"{self.ack_timeout}s"
                ),
            )

    def inflight_produce_count(self) -> int:
        """Async produces submitted but not yet resolved (gauge)."""
        with self._async_lock:
            return sum(len(per) for per in self._async_produces.values())

    # -- replication ------------------------------------------------------------------

    def _replication_send(self, broker_id: int):
        """The ``send`` effect for :meth:`KeraSystem.drive_replication`:
        one replicate RPC over the transport, refusing failed nodes."""

        def send(backup_node: int, request) -> None:
            with self._failed_lock:
                failed = backup_node in self._failed
            if failed:
                raise ReplicationError(f"replication to failed node {backup_node}")
            self.transport.call(
                broker_id,
                backup_node,
                "backup",
                "replicate",
                request,
                request.payload_bytes(),
            )

        return send

    def pump_replication(self, broker_id: int) -> int:
        """Ship every ready replication batch of a broker to its backups,
        synchronously, until the broker has nothing left to ship."""
        return self.system.drive_replication(
            broker_id, self._replication_send(broker_id)
        )

    # -- fetch path ---------------------------------------------------------------------

    def fetch(
        self,
        positions: list[FetchPosition],
        *,
        consumer_id: int,
        max_chunks_per_entry: int = 16,
        serve_views: bool = False,
    ) -> list[FetchResponse]:
        """Fetch durable chunks, grouping positions by leader."""
        by_broker: dict[int, list[FetchPosition]] = defaultdict(list)
        for pos in positions:
            by_broker[self.leader_of(pos.stream_id, pos.streamlet_id)].append(pos)
        responses = []
        for broker_id in sorted(by_broker):
            request = FetchRequest(
                request_id=self._next_request_id(),
                consumer_id=consumer_id,
                positions=by_broker[broker_id],
                max_chunks_per_entry=max_chunks_per_entry,
                serve_views=serve_views,
            )
            responses.append(
                self.transport.call(
                    CLIENT_NODE,
                    broker_id,
                    "broker",
                    "fetch",
                    request,
                    request.payload_bytes(),
                )
            )
        return responses

    # -- failover plane hooks ----------------------------------------------------------------

    def install_failover(self, plane) -> None:
        """Attach a live failover plane (detection + recovery)."""
        self._failover = plane

    def report_backup_failure(self, node_id: int, error: BaseException) -> bool:
        """A replicate RPC to ``node_id`` failed (transport/shipper
        thread). Returns True when an installed failover plane claims the
        node — fences it cluster-wide and schedules recovery — in which
        case the caller should repair-and-continue instead of dying."""
        plane = self._failover
        if plane is None:
            return False
        return plane.note_node_failure(node_id, error)

    def is_failed(self, node_id: int) -> bool:
        with self._failed_lock:
            return node_id in self._failed

    def fence_node(self, node_id: int) -> bool:
        """Fence a node: stop its broker service from accepting requests
        and fail its in-flight produces with a typed routing error.
        Idempotent; returns False when the node was already fenced."""
        with self._failed_lock:
            if node_id in self._failed:
                return False
            self._failed.add(node_id)
        self._fence_broker_service(node_id)
        self._fail_broker_produces(node_id)
        return True

    def _fence_broker_service(self, node_id: int) -> None:
        """Driver hook: make the node's broker service refuse requests
        (threaded drivers fence the in-parent service thread and halt its
        shipper). The base cluster has nothing to fence."""

    def _fail_broker_produces(self, node_id: int) -> None:
        """Fail every in-flight async produce toward a fenced broker with
        ``NotLeaderError`` (leader unknown until recovery commits the new
        routing), so clients refresh metadata and retry instead of
        hanging out the ack timeout."""
        with self._async_lock:
            states = list(self._async_produces.get(node_id, {}).values())
        for state in states:
            stream_id, streamlet_id = state.route if state.route else (-1, -1)
            self._finish_async(
                state, None, NotLeaderError(stream_id, streamlet_id, None)
            )

    def repair_backups_for(self, failed_node: int) -> None:
        """Restore copy counts after a node loss: every surviving broker
        swaps the dead node out of its virtual segments and re-ships the
        durable prefixes to the replacements. The base implementation
        sends synchronously (inproc); shipper-driven clusters route the
        repair through each survivor's shipper thread so a backup's
        per-vseg arrival order always matches one thread's ship order."""
        with self._failed_lock:
            failed = set(self._failed)
        for survivor_id, broker in self.brokers.items():
            if survivor_id in failed:
                continue
            repairs = broker.handle_backup_failure(failed_node)
            send = self._replication_send(survivor_id)
            for batch in repairs:
                request = self.system.replicate_request(survivor_id, batch)
                for backup_node in batch.backups:
                    send(backup_node, request)

    def backup_drop_broker(self, node_id: int, failed_broker: int) -> int:
        """Discard a recovered broker's segments on one backup; returns
        bytes freed. Routed through the cluster so drivers whose backups
        live in another process can override with an RPC."""
        return self.backups[node_id].store.drop_broker(failed_broker)

    # -- failure injection -------------------------------------------------------------------

    def crash_broker(self, broker_id: int) -> None:
        """Take a node down: its broker and backup stop responding."""
        if broker_id not in self.brokers:
            raise StorageError(f"unknown broker {broker_id}")
        # Shipper threads consult _failed on every replicate RPC; the
        # mutation (and the survivor snapshot) must not race them.
        with self._failed_lock:
            self._failed.add(broker_id)
            failed = set(self._failed)
        for survivor_id, broker in self.brokers.items():
            if survivor_id in failed:
                continue
            repairs = broker.handle_backup_failure(broker_id)
            # Ship repair batches to the replacement backups.
            send = self._replication_send(survivor_id)
            for batch in repairs:
                request = self.system.replicate_request(survivor_id, batch)
                for backup_node in batch.backups:
                    send(backup_node, request)

    @property
    def live_broker_ids(self) -> list[int]:
        with self._failed_lock:
            failed = set(self._failed)
        return [b for b in sorted(self.brokers) if b not in failed]

    # -- lifecycle ----------------------------------------------------------------------------

    def _drain_persistence(self) -> None:
        """Flush every backup's unflushed tail and close the segment files.

        Called once, after the transport stopped delivering replicate
        RPCs, so nothing races the cores. Flusher threads drain their
        queues before stopping; a clean close syncs unless the policy is
        ``never``.
        """
        if self._persistence_drained:
            return
        self._persistence_drained = True
        for node_id in sorted(self.backups):
            core = self.backups[node_id]
            flusher = self._flushers.get(node_id)
            works = core.drain_flush()
            if flusher is not None:
                for work in works:
                    flusher.submit(work, work.nbytes)
                flusher.stop(drain=True)
            else:
                for work in works:
                    core.persist(work)
            core.close_persistence()

    def shutdown(self) -> None:
        self.runtime.shutdown()
        self._drain_persistence()

    def simulate_power_loss(self) -> None:
        """Crash-test hook: stop the cluster *without* the durable tier's
        clean drain/close. Segment files keep exactly what the fsync
        policy already pushed — the state a process kill leaves behind —
        so restart tests and demos can prove recovery from it."""
        self._persistence_drained = True  # makes the clean drain a no-op
        self.shutdown()
        for flusher in self._flushers.values():
            flusher.stop(drain=False)

    def __enter__(self) -> "LiveKeraCluster":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
