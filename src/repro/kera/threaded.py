"""Threaded KerA cluster: the concurrent live mode.

Every (node, service) binding runs on its own worker threads behind a
bounded request queue (:class:`repro.runtime.ThreadedTransport`), each
broker additionally drives push replication from a dedicated *shipper*
thread, and real concurrent producers/consumers push real bytes — the
configuration that proves the sans-IO cores are thread-safe under
contention.

Concurrency design, mirroring the simulator's model:

* **per-sub-partition locks** in the broker service serialize whole
  produce requests that touch the same ``(stream, streamlet, entry)``
  sub-partition (Q > 1 lets distinct producers append in parallel) and,
  because a producer's retransmissions land on the same sub-partition,
  make duplicate detection race-free;
* the broker core's internal mutex keeps each request's append +
  replication registration atomic, so virtual-log reference order always
  matches segment append order (the invariant
  ``mark_chunk_durable`` enforces);
* a produce handler whose chunks are not yet durable parks on a
  completion event — registered with the runtime's
  :class:`CompletionTracker`, fired by the shipper thread when the
  replicate acks return; the backup service runs single-worker, keeping
  each backup core single-threaded.
"""

from __future__ import annotations

import threading

from repro.common.errors import ConfigError, NotLeaderError, ReplicationError, RpcError
from repro.persist import BackupFlusher
from repro.runtime.threaded import ThreadedTransport
from repro.runtime.transport import LiveService, Transport
from repro.kera.config import KeraConfig
from repro.kera.live import LiveBackupService, LiveKeraCluster
from repro.kera.messages import ProduceRequest
from repro.kera.shipper import PipelinedShipper


class _ThreadedBrokerService(LiveService):
    """Broker wrapper for worker threads: lock, append, kick, park."""

    def __init__(self, cluster: "ThreadedKeraCluster", node_id: int) -> None:
        self.cluster = cluster
        self.node_id = node_id
        self.core = cluster.brokers[node_id]
        self._locks_guard = threading.Lock()
        self._locks: dict[tuple[int, int, int], threading.Lock] = {}  # guarded-by: _locks_guard
        self._fenced = False  # set once by fence(); never cleared

    def _lock(self, key: tuple[int, int, int]) -> threading.Lock:
        with self._locks_guard:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = threading.Lock()
            return lock

    def fence(self) -> None:
        """Stop serving: every subsequent request gets a typed routing
        error. One-way — a fenced broker never comes back under the same
        identity (its streamlets move to survivors)."""
        self._fenced = True

    def _refuse(self, request: object) -> NotLeaderError:
        stream_id, streamlet_id = -1, -1
        chunks = getattr(request, "chunks", None)
        if chunks:
            stream_id = chunks[0].stream_id
            streamlet_id = chunks[0].streamlet_id
        else:
            positions = getattr(request, "positions", None)
            if positions:
                stream_id = positions[0].stream_id
                streamlet_id = positions[0].streamlet_id
        leader: int | None = None
        if stream_id >= 0:
            try:
                current = self.cluster.leader_of(stream_id, streamlet_id)
            except Exception:  # noqa: BLE001 - stream unknown mid-recovery
                current = self.node_id
            if current != self.node_id:
                leader = current  # recovery already committed new routing
        return NotLeaderError(stream_id, streamlet_id, leader)

    def handle(self, method: str, request: object) -> object:
        if method == "ping":
            if self._fenced:
                raise RpcError(f"broker {self.node_id} is fenced")
            return self.node_id
        if self._fenced:
            raise self._refuse(request)
        if method == "produce":
            return self._produce(request)
        if method == "produce_async":
            return self._produce_async(request)
        if method == "fetch":
            return self.core.handle_fetch(request)
        raise ConfigError(f"unknown broker method {method!r}")

    def _append(self, request: ProduceRequest) -> object:
        # Per-sub-partition serialization, exactly as the sim driver
        # models it: every (stream, streamlet, entry) sub-partition the
        # request touches is locked — in sorted order, so two requests
        # with overlapping footprints can never deadlock.
        q = self.cluster.config.storage.q_active_groups
        keys = sorted(
            {(c.stream_id, c.streamlet_id, c.producer_id % q) for c in request.chunks}
        )
        locks = [self._lock(key) for key in keys]
        for lock in locks:
            lock.acquire()
        try:
            return self.core.handle_produce(request)
        finally:
            for lock in reversed(locks):
                lock.release()

    def _produce_async(self, request: ProduceRequest) -> object:
        """Completion-driven produce: append, kick the shipper, and
        return the whole outcome — the *caller* (``submit_produce``)
        registers with the completion tracker, so no worker thread parks
        here waiting for replication acks."""
        outcome = self._append(request)
        self.cluster.shipper(self.node_id).kick()
        return outcome

    def _produce(self, request: ProduceRequest) -> object:
        outcome = self._append(request)
        done: threading.Event | None = None
        if outcome.pending:
            done = threading.Event()
            if self.cluster.runtime.completion.register(
                self.node_id, request.request_id, done.set
            ):
                done.set()
        shipper = self.cluster.shipper(self.node_id)
        shipper.kick()
        if done is not None and not done.wait(self.cluster.ack_timeout):
            if shipper.error is not None:
                raise ReplicationError(
                    f"replication shipper for broker {self.node_id} failed: "
                    f"{shipper.error!r}"
                )
            raise ReplicationError(
                f"request {request.request_id} not durable within "
                f"{self.cluster.ack_timeout}s"
            )
        return outcome.response


class ThreadedKeraCluster(LiveKeraCluster):
    """A KerA cluster with every node's services on their own threads."""

    def __init__(
        self,
        config: KeraConfig | None = None,
        *,
        produce_workers: int = 4,
        queue_depth: int = 128,
        call_timeout: float = 30.0,
        ack_timeout: float = 10.0,
        transport: Transport | None = None,
    ) -> None:
        self.ack_timeout = ack_timeout
        self._shippers: dict[int, PipelinedShipper] = {}
        self._broker_services: dict[int, _ThreadedBrokerService] = {}
        super().__init__(
            config,
            transport
            or ThreadedTransport(
                queue_depth=queue_depth,
                workers_per_service=produce_workers,
                call_timeout=call_timeout,
            ),
        )
        for node in self.system.node_ids:
            shipper = PipelinedShipper(self, node)
            self._shippers[node] = shipper
            shipper.start()

    def _start_flushers(self) -> None:
        # One flusher thread per backup with secondary storage: the
        # backup service acks from the buffer, this thread owns the disk.
        for node, core in self.backups.items():
            if core.persistence is not None:
                self._flushers[node] = BackupFlusher(
                    core.persist,
                    name=f"backup-flusher-{node}",
                    on_tick=core.tick_persistence,
                )

    def _register_services(self) -> None:
        for node in self.system.node_ids:
            service = _ThreadedBrokerService(self, node)
            self._broker_services[node] = service
            self.transport.register(node, "broker", service)
            # One worker: the backup core stays single-threaded.
            self.transport.register(
                node, "backup", LiveBackupService(self, node), workers=1
            )

    def shipper(self, broker_id: int) -> PipelinedShipper:
        return self._shippers[broker_id]

    def _shipper_error(self, broker_id: int) -> BaseException | None:
        shipper = self._shippers.get(broker_id)
        return shipper.error if shipper is not None else None

    def _fence_broker_service(self, node_id: int) -> None:
        service = self._broker_services.get(node_id)
        if service is not None:
            service.fence()
        shipper = self._shippers.get(node_id)
        if shipper is not None:
            shipper.halt(
                ReplicationError(f"broker {node_id} fenced by failover")
            )

    def repair_backups_for(self, failed_node: int) -> None:
        # Queue the repair on each survivor's shipper thread rather than
        # sending from here: a backup's per-vseg arrival order must match
        # the one shipper's issue order, or later recovery merges would
        # see interleaved (diverging) runs.
        with self._failed_lock:
            failed = set(self._failed)
        for survivor_id, shipper in self._shippers.items():
            if survivor_id in failed or shipper.error is not None:
                continue
            shipper.repair_node(failed_node)

    def shutdown(self) -> None:
        for shipper in self._shippers.values():
            shipper.stop()
        for shipper in self._shippers.values():
            shipper.join(timeout=5.0)
        super().shutdown()
