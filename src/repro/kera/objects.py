"""Objects as bounded streams: KerA's unified ingestion/storage API.

``KerA is a high-performance ingestion system that unifies ingestion and
storage, exposing one API that captures the semantics of both
stream-based systems like Apache Kafka and distributed systems like
Hadoop HDFS`` — and ``an object is simply represented as a bounded
stream`` (paper, Sections IV and IV-A).

The object store maps a named blob onto a dedicated stream: the blob is
split into part-records (key = object name, version = part index), the
final part carries an end-of-object marker, and a read reassembles the
parts in order — all through the ordinary durable produce/fetch path, so
objects inherit replication, exactly-once, and crash recovery for free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import StorageError
from repro.common.idgen import IdGenerator
from repro.wire.record import Record
from repro.kera.client import KeraConsumer, KeraProducer
from repro.kera.inproc import InprocKeraCluster

#: Timestamp flag marking the final part of an object.
_EOF_MARK = 1
#: Per-part payload ceiling: leave room for the record header + name key
#: inside one chunk.
_HEADER_SLACK = 64


@dataclass(frozen=True)
class ObjectInfo:
    """Catalog entry for one stored object."""

    name: bytes
    size: int
    parts: int
    stream_id: int


class ObjectStore:
    """Named bounded streams over a KerA cluster."""

    def __init__(
        self,
        cluster: InprocKeraCluster,
        *,
        base_stream_id: int = 1 << 20,
        streamlets_per_object: int = 1,
        writer_id: int = 1 << 16,
    ) -> None:
        self.cluster = cluster
        self.streamlets_per_object = streamlets_per_object
        self._stream_ids = IdGenerator(start=base_stream_id)
        self._writer_id = writer_id
        self._catalog: dict[bytes, ObjectInfo] = {}
        self.part_size = cluster.config.chunk_size - _HEADER_SLACK
        if self.part_size <= 0:
            raise StorageError(
                "chunk_size too small to carry object parts "
                f"({cluster.config.chunk_size} bytes)"
            )

    # -- write path ------------------------------------------------------------

    def put(self, name: bytes | str, data: bytes) -> ObjectInfo:
        """Durably store ``data`` under ``name`` (immutable; re-put is an
        error — objects are bounded streams, not mutable files)."""
        key = name.encode() if isinstance(name, str) else bytes(name)
        if not key:
            raise StorageError("object name must be non-empty")
        if key in self._catalog:
            raise StorageError(f"object {key!r} already exists")
        part_size = self.part_size - len(key)
        if part_size <= 0:
            raise StorageError(f"object name {key!r} too long for the chunk size")
        stream_id = self._stream_ids.next()
        self.cluster.create_stream(stream_id, self.streamlets_per_object)
        producer = KeraProducer(self.cluster, producer_id=self._writer_id)
        parts = [data[i : i + part_size] for i in range(0, len(data), part_size)] or [b""]
        for index, part in enumerate(parts):
            is_last = index == len(parts) - 1
            producer.send(
                stream_id,
                part,
                keys=(key,),
                version=index,
                timestamp=_EOF_MARK if is_last else 0,
                streamlet_id=index % self.streamlets_per_object,
            )
        producer.flush()
        info = ObjectInfo(name=key, size=len(data), parts=len(parts), stream_id=stream_id)
        self._catalog[key] = info
        return info

    # -- read path ----------------------------------------------------------------

    def get(self, name: bytes | str) -> bytes:
        """Read an object back, reassembling its parts in version order
        and verifying the end-of-object marker."""
        info = self.stat(name)
        consumer = KeraConsumer(
            self.cluster, consumer_id=self._writer_id, stream_ids=[info.stream_id]
        )
        records = consumer.drain()
        parts: dict[int, Record] = {}
        for record in records:
            if record.key != info.name:
                raise StorageError(
                    f"foreign record in object stream {info.stream_id}"
                )
            assert record.version is not None
            parts[record.version] = record
        if sorted(parts) != list(range(info.parts)):
            raise StorageError(
                f"object {info.name!r} incomplete: have parts {sorted(parts)}"
            )
        last = parts[info.parts - 1]
        if last.timestamp != _EOF_MARK:
            raise StorageError(f"object {info.name!r} missing end-of-object marker")
        return b"".join(parts[i].value for i in range(info.parts))

    def stat(self, name: bytes | str) -> ObjectInfo:
        key = name.encode() if isinstance(name, str) else bytes(name)
        info = self._catalog.get(key)
        if info is None:
            raise StorageError(f"unknown object {key!r}")
        return info

    def list(self) -> list[ObjectInfo]:
        return [self._catalog[k] for k in sorted(self._catalog)]

    def __contains__(self, name: bytes | str) -> bool:
        key = name.encode() if isinstance(name, str) else bytes(name)
        return key in self._catalog
