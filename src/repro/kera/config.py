"""KerA system configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.common.units import KB, MB, MSEC
from repro.replication.config import ReplicationConfig
from repro.storage.config import StorageConfig


@dataclass(frozen=True)
class KeraConfig:
    """Cluster-wide KerA configuration.

    Mirrors the paper's experimental knobs: number of broker nodes, the
    storage sizing (segment size, Q active groups), the replication
    tunables (factor, virtual logs per broker, sharing policy), and the
    client-side chunk/linger parameters.
    """

    num_brokers: int = 4
    storage: StorageConfig = field(default_factory=StorageConfig)
    replication: ReplicationConfig = field(default_factory=ReplicationConfig)
    #: Producer chunk capacity (paper: 1 KB to 64 KB).
    chunk_size: int = 16 * KB
    #: linger.ms equivalent — max wait for a chunk to fill.
    linger: float = 1 * MSEC
    #: Client-side cache (chunks buffered between the two client threads).
    client_cache_chunks: int = 1000
    #: Backup flush threshold: flush once a replicated segment holds this
    #: many unflushed bytes (flushes are always asynchronous).
    flush_threshold: int = 1 * KB * 1024
    #: Live mode only: directory for the backups' secondary storage. When
    #: set, flushes write real log-structured segment files (one per
    #: replicated virtual segment, same frame format on disk and in
    #: memory, inside per-incarnation epoch directories) and a restarted
    #: cluster can recover acked data from them. The fsync cadence and
    #: memory/disk migration are configured on the replication config
    #: (``fsync_policy`` / ``spill_sealed``).
    persist_dir: str | None = None
    #: Backward-compatible alias for ``persist_dir`` (earlier revisions'
    #: name); ``persist_dir`` wins when both are set.
    disk_dir: str | None = None
    #: Per-broker byte budget for the shared hot-chunk fan-out cache on
    #: the view-serving read path (``repro.storage.fancache``).
    fanout_cache_bytes: int = 64 * MB

    def __post_init__(self) -> None:
        if self.num_brokers < 1:
            raise ConfigError("num_brokers must be >= 1")
        if self.replication.replication_factor > self.num_brokers:
            raise ConfigError(
                f"replication factor {self.replication.replication_factor} "
                f"needs at least that many nodes (have {self.num_brokers})"
            )
        if self.chunk_size <= 0:
            raise ConfigError("chunk_size must be positive")
        if self.linger < 0:
            raise ConfigError("linger must be >= 0")
        if self.fanout_cache_bytes <= 0:
            raise ConfigError("fanout_cache_bytes must be positive")

    @property
    def storage_dir(self) -> str | None:
        """The effective secondary-storage root (``persist_dir`` wins)."""
        return self.persist_dir if self.persist_dir is not None else self.disk_dir
