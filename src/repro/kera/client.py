"""High-level producer and consumer clients for the in-process cluster.

This is the public API the examples use. The producer mirrors the paper's
two-thread design collapsed into one object: :meth:`KeraProducer.send`
plays the source thread (append records to per-streamlet chunk buffers,
round-robin or by key hash), :meth:`KeraProducer.flush` plays the
requests thread (gather filled chunks into per-broker requests and push).
The consumer keeps a fetch position per (streamlet, active entry) and
iterates durably-replicated records in order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.checksum import crc32c
from repro.common.errors import ConfigError
from repro.common.idgen import IdGenerator
from repro.wire.chunk import Chunk, ChunkBuilder, CHUNK_HEADER_SIZE
from repro.wire.pool import BufferPool
from repro.wire.record import Record
from repro.wire.views import ChunkView
from repro.kera.live import LiveKeraCluster
from repro.kera.messages import FetchPosition


@dataclass
class ProducerStats:
    records_sent: int = 0
    chunks_sent: int = 0
    bytes_sent: int = 0
    requests_sent: int = 0
    duplicates_reported: int = 0


class KeraProducer:
    """Appends records to a set of streams and flushes them durably."""

    def __init__(
        self,
        cluster: LiveKeraCluster,
        producer_id: int,
        *,
        chunk_size: int | None = None,
    ) -> None:
        self.cluster = cluster
        self.producer_id = producer_id
        self.chunk_size = chunk_size or cluster.config.chunk_size
        # One scratch buffer per streamlet builder, shared through a pool
        # so records encode straight into chunk-frame memory (encode-once
        # data path); builders return them via close().
        self._pool = BufferPool(CHUNK_HEADER_SIZE + self.chunk_size)
        self._builders: dict[tuple[int, int], ChunkBuilder] = {}
        self._seqs: dict[tuple[int, int], IdGenerator] = {}
        self._ready: list[Chunk] = []
        self._rr_cursor: dict[int, int] = {}
        self.stats = ProducerStats()

    @property
    def pool(self) -> BufferPool:
        """The scratch-buffer pool (rental accounting for leak checks)."""
        return self._pool

    # -- partitioning ----------------------------------------------------------

    def _pick_streamlet(self, stream_id: int, record: Record) -> int:
        """Key hash when the record has keys, else round-robin (paper,
        Section IV-B: "round-robin or by record's key, which is hashed to
        identify a streamlet")."""
        streamlets = self.cluster.coordinator.stream(stream_id).streamlet_ids
        if record.keys:
            return streamlets[crc32c(record.keys[0]) % len(streamlets)]
        cursor = self._rr_cursor.get(stream_id, 0)
        self._rr_cursor[stream_id] = cursor + 1
        return streamlets[cursor % len(streamlets)]

    def _builder(self, stream_id: int, streamlet_id: int) -> ChunkBuilder:
        key = (stream_id, streamlet_id)
        builder = self._builders.get(key)
        if builder is None:
            builder = ChunkBuilder(
                self.chunk_size,
                stream_id=stream_id,
                streamlet_id=streamlet_id,
                producer_id=self.producer_id,
                pool=self._pool,
            )
            self._builders[key] = builder
            self._seqs[key] = IdGenerator()
        return builder

    # -- source side --------------------------------------------------------------

    def send(
        self,
        stream_id: int,
        value: bytes,
        *,
        keys: tuple[bytes, ...] = (),
        version: int | None = None,
        timestamp: int | None = None,
        streamlet_id: int | None = None,
    ) -> None:
        """Append one record; full chunks are staged for the next flush."""
        record = Record(value=value, keys=keys, version=version, timestamp=timestamp)
        if streamlet_id is None:
            streamlet_id = self._pick_streamlet(stream_id, record)
        builder = self._builder(stream_id, streamlet_id)
        if not builder.try_append(record):
            self._seal(stream_id, streamlet_id)
            if not builder.try_append(record):
                raise ConfigError(
                    f"record of {record.encoded_size()} bytes exceeds chunk "
                    f"size {self.chunk_size}"
                )

    def _seal(self, stream_id: int, streamlet_id: int) -> None:
        key = (stream_id, streamlet_id)
        builder = self._builders[key]
        if builder.is_empty:
            return
        chunk = builder.build(chunk_seq=self._seqs[key].next())
        self._ready.append(chunk)

    # -- requests side ---------------------------------------------------------------

    def flush(self) -> ProducerStats:
        """Seal every partial chunk and push everything durably.

        Exception-safe: a failed produce puts the unsent chunks back on
        the ready list, so a retrying caller re-sends them (the broker's
        exactly-once sequence check absorbs any partial first attempt).
        """
        for stream_id, streamlet_id in list(self._builders):
            self._seal(stream_id, streamlet_id)
        if not self._ready:
            return self.stats
        chunks, self._ready = self._ready, []
        try:
            responses = self.cluster.produce(chunks, producer_id=self.producer_id)
        except BaseException:
            self._ready = chunks + self._ready
            raise
        for chunk in chunks:
            self.stats.records_sent += chunk.record_count
            self.stats.chunks_sent += 1
            self.stats.bytes_sent += chunk.payload_len
        for response in responses:
            self.stats.requests_sent += 1
            self.stats.duplicates_reported += sum(
                1 for a in response.assignments if a.duplicate
            )
        return self.stats

    def close(self, *, flush: bool = True) -> ProducerStats:
        """Hand the builders' scratch buffers back to the pool, flushing
        first by default. The producer must not be used afterwards.

        The buffers go back even when the flush fails mid-close — pool
        rentals must never leak on an exception path (``pool.rented``
        returns to 0 regardless). ``flush=False`` skips the final push,
        for teardown after an error when re-sending is not wanted.
        """
        try:
            stats = self.flush() if flush else self.stats
        finally:
            for builder in self._builders.values():
                builder.close()
            self._builders.clear()
        return stats

    def __enter__(self) -> "KeraProducer":
        return self

    def __exit__(self, exc_type: object, *exc: object) -> None:
        # On the error path don't pile a flush failure onto the original
        # exception — just return the buffers.
        self.close(flush=exc_type is None)


@dataclass
class ConsumerStats:
    records_read: int = 0
    chunks_read: int = 0
    fetches: int = 0


class KeraConsumer:
    """Pulls durably-replicated records from a set of streams, in order
    per (streamlet, entry)."""

    def __init__(
        self,
        cluster: LiveKeraCluster,
        consumer_id: int,
        stream_ids: list[int],
    ) -> None:
        self.cluster = cluster
        self.consumer_id = consumer_id
        self.stream_ids = list(stream_ids)
        q = cluster.config.storage.q_active_groups
        self._positions: dict[tuple[int, int, int], FetchPosition] = {}
        for stream_id in self.stream_ids:
            for streamlet_id in cluster.coordinator.stream(stream_id).streamlet_ids:
                for entry in range(q):
                    self._positions[(stream_id, streamlet_id, entry)] = FetchPosition(
                        stream_id=stream_id, streamlet_id=streamlet_id, entry=entry
                    )
        self.stats = ConsumerStats()

    def poll_chunks(self, max_chunks_per_entry: int = 16) -> list[Chunk]:
        """One fetch round over every position; advances the cursors."""
        responses = self.cluster.fetch(
            list(self._positions.values()),
            consumer_id=self.consumer_id,
            max_chunks_per_entry=max_chunks_per_entry,
        )
        out: list[Chunk] = []
        self.stats.fetches += len(responses)
        for response in responses:
            for entry in response.entries:
                pos = entry.position
                self._positions[(pos.stream_id, pos.streamlet_id, pos.entry)] = (
                    entry.next_position
                )
                out.extend(entry.chunks)
                self.stats.chunks_read += len(entry.chunks)
                self.stats.records_read += entry.record_count
        return out

    def poll_views(self, max_chunks_per_entry: int = 16) -> list[ChunkView]:
        """One fetch round returning zero-copy chunk views; advances the
        cursors.

        Views come through the broker's fan-out cache: the frame CRC was
        re-validated at the serving boundary and the record decode is
        memoized on the shared view, so ``view.records()`` is free when
        another consumer group already touched the chunk. Payload bytes
        are never copied until the caller materializes them.
        """
        responses = self.cluster.fetch(
            list(self._positions.values()),
            consumer_id=self.consumer_id,
            max_chunks_per_entry=max_chunks_per_entry,
            serve_views=True,
        )
        out: list[ChunkView] = []
        self.stats.fetches += len(responses)
        for response in responses:
            for entry in response.entries:
                pos = entry.position
                self._positions[(pos.stream_id, pos.streamlet_id, pos.entry)] = (
                    entry.next_position
                )
                out.extend(entry.chunks)  # type: ignore[arg-type]
                self.stats.chunks_read += len(entry.chunks)
                self.stats.records_read += entry.record_count
        return out

    def poll(self, max_chunks_per_entry: int = 16) -> list[Record]:
        """Like :meth:`poll_chunks` but decoded to records (live mode)."""
        records: list[Record] = []
        for chunk in self.poll_chunks(max_chunks_per_entry):
            records.extend(chunk.records())
        return records

    def drain(self, *, max_rounds: int = 1000) -> list[Record]:
        """Poll until a round returns nothing."""
        records: list[Record] = []
        for _ in range(max_rounds):
            batch = self.poll()
            if not batch:
                return records
            records.extend(batch)
        return records

    # -- offset management ------------------------------------------------------

    def positions(self) -> dict[tuple[int, int, int], FetchPosition]:
        """Snapshot of the consumer's cursors — the 'committed offsets' a
        restarted consumer resumes from."""
        return dict(self._positions)

    def seek(self, positions: dict[tuple[int, int, int], FetchPosition]) -> None:
        """Restore previously snapshotted cursors (POSIX-file-style seek:
        consumers can re-read any offset)."""
        for key, pos in positions.items():
            if key not in self._positions:
                raise ConfigError(f"position for unknown assignment {key}")
            self._positions[key] = pos

    def seek_offset(
        self, stream_id: int, streamlet_id: int, entry: int, record_offset: int
    ) -> None:
        """Position one cursor at a logical record offset.

        The offset is resolved broker-side through the per-group offset
        index on the next poll (O(log n) bisect, O(1) frames touched —
        never a scan); the poll's ``next_position`` replaces the one-shot
        seek with resolved cursor coordinates. Seeking below the retention
        floor or past the end raises
        :class:`~repro.common.errors.OffsetOutOfRangeError` from that poll.
        """
        key = (stream_id, streamlet_id, entry)
        if key not in self._positions:
            raise ConfigError(f"position for unknown assignment {key}")
        self._positions[key] = FetchPosition(
            stream_id=stream_id,
            streamlet_id=streamlet_id,
            entry=entry,
            seek_record=record_offset,
        )

    def rewind(self) -> None:
        """Reset every cursor to the beginning of its sub-partition."""
        for key in self._positions:
            stream_id, streamlet_id, entry = key
            self._positions[key] = FetchPosition(
                stream_id=stream_id, streamlet_id=streamlet_id, entry=entry
            )
