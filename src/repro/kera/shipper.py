"""The pipelined replication shipper: one thread per broker.

Replaces the strictly synchronous ship loop (collect one batch → send to
every backup → wait → complete) with a pipeline:

* batches are issued with :meth:`Transport.call_async` — up to
  ``pipeline_depth`` RPCs per virtual log stay in flight, and acks
  arriving out of order are re-sequenced by the virtual log itself
  (``VirtualLog.complete_batch`` buffers them and applies durability in
  issue order);
* a :class:`~repro.replication.flow.FlowController` bounds unacked
  payload bytes (``ship_window_bytes``) — the credit-based backpressure
  that keeps a slow backup from buffering unbounded broker memory;
* an :class:`~repro.replication.flow.AdaptiveBatcher` decides when to
  linger (``ship_linger_s``): while appends trickle in below the current
  consolidation target the shipper waits briefly so the next RPC carries
  more chunks, and the target itself adapts to demand and to credit
  refusals.

Ack callbacks run on transport threads (worker or reaper); batch
completion is safe there because the broker core serializes all
structural mutation behind its reentrant mutex. A failed RPC or a ship to
a crashed node surfaces on :attr:`PipelinedShipper.error` exactly like
the old shipper, and parked produce handlers report it.

``stop()`` drains: the thread keeps collecting and shipping until nothing
is unshipped and no batch is in flight (bounded by a drain deadline), so
shutdown under load loses no acks and double-applies none.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

from repro.common.errors import ReplicationError
from repro.replication.flow import AdaptiveBatcher, FlowController
from repro.replication.virtual_log import ReplicationBatch

if TYPE_CHECKING:
    from repro.kera.broker import KeraBrokerCore
    from repro.kera.live import LiveKeraCluster


class _Flight:
    """One issued batch awaiting acks from its backups."""

    __slots__ = ("batch", "nbytes", "remaining", "resolved")

    def __init__(self, batch: ReplicationBatch, nbytes: int, backups: int) -> None:
        self.batch = batch
        self.nbytes = nbytes
        self.remaining = backups
        self.resolved = False


class PipelinedShipper(threading.Thread):
    """Drains a broker's ready batches to its backups, pipelined."""

    #: Idle re-poll period, a safety net should a kick ever be missed.
    _IDLE_POLL = 0.05
    #: How long ``stop()`` keeps draining in-flight work.
    _DRAIN_TIMEOUT = 5.0

    def __init__(self, cluster: "LiveKeraCluster", broker_id: int) -> None:
        super().__init__(name=f"kera-shipper-{broker_id}", daemon=True)
        self.cluster = cluster
        self.broker_id = broker_id
        config = cluster.config.replication
        self.flow = FlowController(config.ship_window_bytes)
        self.batcher = AdaptiveBatcher(linger_s=config.ship_linger_s)
        self._wake = threading.Event()
        self._stopping = threading.Event()
        self._drain_deadline = float("inf")
        self._flights_lock = threading.Lock()
        self._flights: dict[int, _Flight] = {}  # guarded-by: _flights_lock
        # Failed flights awaiting backup repair, queued by transport
        # threads and serviced on this thread (blocking repair RPCs on a
        # transport callback would deadlock the reaper/reader draining
        # its own responses). (batch, failed backup node, error) triples;
        # batch is None for proactive repairs with no failed flight.
        self._repairs: list[tuple[ReplicationBatch | None, int, BaseException]] = []  # guarded-by: _flights_lock
        self.error: BaseException | None = None

    # -- control --------------------------------------------------------------

    def kick(self) -> None:
        self._wake.set()

    def stop(self) -> None:
        self._drain_deadline = time.monotonic() + self._DRAIN_TIMEOUT
        self._stopping.set()
        self._wake.set()

    def halt(self, error: BaseException) -> None:
        """Stop shipping *without* draining and without failing parked
        produces (the failover plane fences a dead broker's shipper and
        fails its in-flight produces itself, with a typed routing error
        clients can retry on)."""
        if self.error is None:
            self.error = error
        self._wake.set()

    def in_flight_batches(self) -> int:
        with self._flights_lock:
            return len(self._flights)

    def repair_node(self, node: int) -> None:
        """Queue proactive repair for a dead backup (any thread): the
        shipper thread swaps the node out of every affected virtual
        segment and re-ships durable prefixes. Going through the shipper
        keeps all of a broker's replicate traffic on one thread, so a
        backup's per-vseg arrival order matches ship order."""
        with self._flights_lock:
            self._repairs.append(
                (None, node, ReplicationError(f"backup node {node} failed"))
            )
        self._wake.set()

    # -- main loop ------------------------------------------------------------

    def run(self) -> None:
        sleep = self._IDLE_POLL
        while True:
            self._wake.wait(timeout=sleep)
            self._wake.clear()
            if self.error is not None:
                return
            draining = self._stopping.is_set()
            try:
                self._service_repairs()
                sleep = self._pump(draining)
            except BaseException as exc:  # noqa: BLE001 - surfaced to producers
                self._fail(exc)
                return
            # Housekeeping for completion-driven produces: expire any
            # async submissions past their ack deadline (the analogue of
            # a parked handler's Event.wait timing out).
            self.cluster._sweep_async_produces(self.broker_id)
            if draining and (self._drained() or time.monotonic() >= self._drain_deadline):
                return

    def _drained(self) -> bool:
        with self._flights_lock:
            if self._flights:
                return False
        return self.cluster.brokers[self.broker_id].unshipped_chunks() == 0

    def _pump(self, draining: bool) -> float:
        core = self.cluster.brokers[self.broker_id]
        if not draining and self.batcher.linger_s > 0:
            delay = self.batcher.linger_delay(core.unshipped_chunks(), time.monotonic())
            if delay > 0:
                return delay
        for batch in core.collect_batches():
            self._issue(core, batch)
            if self.error is not None:
                break
        return self._IDLE_POLL

    def _service_repairs(self) -> None:
        """Repair after a fenced backup's ship failures (shipper thread).

        Aborts the earliest failed batch per virtual log (the rewind
        covers its later siblings), swaps the dead node out of every
        affected virtual segment, and re-ships the durable prefix to the
        replacement. Runs on this thread because repair issues blocking
        flow-credit waits and RPCs that must not run on transport
        callbacks.
        """
        with self._flights_lock:
            if not self._repairs:
                return
            repairs, self._repairs = self._repairs, []
        core = self.cluster.brokers[self.broker_id]
        # Earliest-issued failed batch per vlog: abort_batch(earliest)
        # rewinds the cursor past every later in-flight sibling too.
        earliest: dict[int, ReplicationBatch] = {}
        failed_nodes: list[int] = []
        for batch, node, _error in repairs:
            if node not in failed_nodes:
                failed_nodes.append(node)
            if batch is None or batch.repair:
                # Proactive repair (no failed flight), or a repair ship
                # that failed: durability was never revoked, so there is
                # nothing to abort; the node swap below emits fresh
                # repair batches.
                continue
            best = earliest.get(batch.vlog_id)
            if best is None or batch.issue_seq < best.issue_seq:
                earliest[batch.vlog_id] = batch
        for batch in earliest.values():
            # Aborting drops every later in-flight batch of the vlog;
            # their late acks must find their flights already resolved
            # (else they would complete_batch a dropped batch).
            with self._flights_lock:
                siblings = [
                    f
                    for f in self._flights.values()
                    if f.batch.vlog_id == batch.vlog_id
                    and not f.batch.repair
                    and f.batch.issue_seq >= batch.issue_seq
                ]
                for flight in siblings:
                    flight.resolved = True
                    self._flights.pop(flight.batch.batch_id, None)
            for flight in siblings:
                self.flow.release(flight.nbytes)
            try:
                core.abort_batch(batch)
            except ReplicationError:
                # Already dropped by an earlier sibling's abort (a late
                # failure callback queued after that abort ran): the
                # rewound cursor covers these references.
                continue
        for node in failed_nodes:
            # ReplicationError here is the typed cluster-too-small
            # refusal (not enough survivors for the copy count) and must
            # surface to producers, not be swallowed.
            for repair_batch in core.handle_backup_failure(node):
                self._issue(core, repair_batch)
        self._wake.set()

    # -- issue path -----------------------------------------------------------

    def _issue(self, core: "KeraBrokerCore", batch: ReplicationBatch) -> None:
        request = self.cluster.system.replicate_request(self.broker_id, batch)
        nbytes = request.payload_bytes()
        if not self.flow.try_acquire(nbytes):
            self.batcher.observe_backpressure()
            while not self.flow.acquire(nbytes, timeout=self._IDLE_POLL):
                if self._stopping.is_set() and time.monotonic() >= self._drain_deadline:
                    core.abort_batch(batch)
                    return
        flight = _Flight(batch, nbytes, len(batch.backups))
        with self._flights_lock:
            self._flights[batch.batch_id] = flight
        for backup in batch.backups:
            with self.cluster._failed_lock:
                failed = backup in self.cluster._failed
            if failed:
                self._resolve(
                    flight,
                    ReplicationError(f"replication to failed node {backup}"),
                    backup,
                )
                return
            try:
                self.cluster.transport.call_async(
                    self.broker_id,
                    backup,
                    "backup",
                    "replicate",
                    request,
                    nbytes,
                    on_done=lambda _resp, err, f=flight, b=backup: self._resolve(f, err, b),
                )
            except BaseException as exc:  # noqa: BLE001 - enqueue-side failure
                self._resolve(flight, exc, backup)
                return

    # -- ack path (transport threads) -----------------------------------------

    def _resolve(
        self,
        flight: _Flight,
        error: BaseException | None,
        backup: int | None = None,
    ) -> None:
        with self._flights_lock:
            if flight.resolved:
                return  # late ack for a batch already failed
            if error is None:
                flight.remaining -= 1
                if flight.remaining > 0:
                    return
            flight.resolved = True
            self._flights.pop(flight.batch.batch_id, None)
        if error is not None:
            self.flow.release(flight.nbytes)
            # Backup-loss is survivable: if the failover plane claims the
            # node (fences it cluster-wide), queue the batch for repair on
            # the shipper thread instead of killing this broker's pipeline.
            if backup is not None and self.cluster.report_backup_failure(backup, error):
                with self._flights_lock:
                    self._repairs.append((flight.batch, backup, error))
                self._wake.set()
                return
            self._fail(error)
            return
        if flight.batch.repair:
            # Repair batches re-ship an already-durable prefix to a
            # replacement backup; the virtual log forbids completing them
            # (durability was never revoked), so just return the credit.
            self.flow.release(flight.nbytes)
            self._wake.set()
            return
        try:
            # Safe on a transport thread: the core's reentrant mutex
            # serializes this against produces, and out-of-order acks are
            # re-sequenced inside the virtual log.
            self.cluster.brokers[self.broker_id].complete_batch(flight.batch)
        except BaseException as exc:  # noqa: BLE001 - surfaced to producers
            self.flow.release(flight.nbytes)
            self._fail(exc)
            return
        self.flow.release(flight.nbytes)
        self.batcher.observe_ship(len(flight.batch.refs), time.monotonic())
        # Freed credit / pipeline slot: let the shipper look again.
        self._wake.set()

    def _fail(self, error: BaseException) -> None:
        first = False
        if self.error is None:
            self.error = error
            first = True
        self._wake.set()
        if first:
            # Parked handlers see self.error when their wait expires;
            # completion-driven produces have no thread to wake, so fail
            # them eagerly.
            self.cluster._on_shipper_error(self.broker_id, error)
