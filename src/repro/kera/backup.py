"""The KerA backup service core.

One backup service runs on every node, colocated with a broker
(paper, Figure 1 / Section V-A). It holds replicated in-memory segments
and asynchronously persists them ``with the same in-memory format``; at
recovery time it serves the crashed broker's chunks back to the cluster.

When constructed with ``disk_dir`` (live mode), flushes write real files:
one file per replicated segment, appended incrementally, decodable with
the ordinary chunk framing — which is what lets recovery read segments
back from disk after a restart.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import StorageError
from repro.replication.backup_store import BackupStore, ReplicatedSegment
from repro.kera.messages import ReplicateRequest, ReplicateResponse
from repro.wire.chunk import Chunk
from repro.wire.framing import decode_chunks


@dataclass
class FlushWork:
    """An asynchronous disk write the driver should schedule."""

    segment: ReplicatedSegment
    nbytes: int
    #: Byte range of the segment this flush covers.
    start: int = 0


class KeraBackupCore:
    """Sans-IO backup state machine for one node."""

    def __init__(
        self,
        *,
        node_id: int,
        materialize: bool = True,
        flush_threshold: int = 1 << 20,
        disk_dir: str | Path | None = None,
    ) -> None:
        self.node_id = node_id
        self.store = BackupStore(node_id, materialize=materialize)
        self.flush_threshold = flush_threshold
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        if self.disk_dir is not None:
            if not materialize:
                raise StorageError("disk persistence requires materialized segments")
            self.disk_dir.mkdir(parents=True, exist_ok=True)

    # -- secondary storage ----------------------------------------------------

    def _segment_path(self, segment: ReplicatedSegment) -> Path:
        assert self.disk_dir is not None
        return (
            self.disk_dir
            / f"b{segment.src_broker}_v{segment.vlog_id}_s{segment.vseg_id}.seg"
        )

    def persist(self, flush: FlushWork) -> Path | None:
        """Execute a flush: append the covered byte range to the segment's
        file (same format on disk and in memory). No-op without a
        ``disk_dir``."""
        if self.disk_dir is None:
            return None
        segment = flush.segment
        path = self._segment_path(segment)
        data = segment.buffer.view(flush.start, flush.nbytes)
        with path.open("ab") as f:
            f.write(data)
        return path

    def read_persisted(self, segment: ReplicatedSegment) -> list[Chunk]:
        """Recovery read path: decode a segment's chunks from its file."""
        if self.disk_dir is None:
            raise StorageError("backup has no secondary storage configured")
        path = self._segment_path(segment)
        return decode_chunks(path.read_bytes())

    def handle_replicate(
        self, request: ReplicateRequest
    ) -> tuple[ReplicateResponse, FlushWork | None]:
        """Ingest a replication batch; returns the response plus flush work
        once enough unflushed bytes accumulated (the response never waits
        for the disk — ``backups respond immediately to the broker``).

        Requests carrying encoded ``frames`` (materialized replication)
        take the verbatim-append path; ``chunks`` requests (metadata
        fidelity, recovery migration) are appended object by object."""
        if request.frames is not None:
            segment = self.store.append_frames(
                src_broker=request.src_broker,
                vlog_id=request.vlog_id,
                vseg_id=request.vseg_id,
                frames=request.frames,
                segment_capacity=request.vseg_capacity,
                verified=request.frames_verified,
            )
        else:
            segment = self.store.append_batch(
                src_broker=request.src_broker,
                vlog_id=request.vlog_id,
                vseg_id=request.vseg_id,
                chunks=request.chunks,
                segment_capacity=request.vseg_capacity,
            )
        flush = None
        if segment.unflushed_bytes >= self.flush_threshold:
            start = segment.flushed_bytes
            flush = FlushWork(
                segment=segment,
                nbytes=self.store.take_flush_work(segment),
                start=start,
            )
        return ReplicateResponse(ok=True, bytes_held=segment.bytes_held), flush

    def drain_flush(self) -> list[FlushWork]:
        """Flush work for everything still unflushed (shutdown / idle)."""
        work = []
        for src_broker in {k[0] for k in self.store._segments}:
            for segment in self.store.segments_for_broker(src_broker):
                if segment.unflushed_bytes > 0:
                    start = segment.flushed_bytes
                    work.append(
                        FlushWork(
                            segment=segment,
                            nbytes=self.store.take_flush_work(segment),
                            start=start,
                        )
                    )
        return work

    # -- recovery -----------------------------------------------------------

    def recovery_chunks(self, failed_broker: int) -> list[tuple[int, list[Chunk]]]:
        """The failed broker's chunks held here, as ``(vseg_id, chunks)``
        runs in virtual-segment order."""
        return [
            (segment.vseg_id, list(segment.chunks))
            for segment in self.store.segments_for_broker(failed_broker)
        ]
