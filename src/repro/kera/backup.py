"""The KerA backup service core.

One backup service runs on every node, colocated with a broker
(paper, Figure 1 / Section V-A). It holds replicated in-memory segments
and asynchronously persists them ``with the same in-memory format``; at
recovery time it serves the crashed broker's chunks back to the cluster.

When constructed with ``disk_dir`` (live mode), flushes write real
log-structured segment files through :class:`repro.persist.SegmentPersistence`:
one ``*.seg`` + ``*.idx`` pair per replicated segment inside an epoch
directory, appended verbatim from the segment buffer (the frames carry
their own CRCs, so nothing is re-encoded), fsynced per the configured
policy — which is what lets a restarted cluster recover every acked
record from disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import StorageError
from repro.persist import DiskLoadReport, FlushPolicy, LoadedSegment, SegmentPersistence
from repro.persist.segment_file import DEFAULT_INDEX_INTERVAL
from repro.replication.backup_store import BackupStore, ReplicatedSegment
from repro.kera.messages import ReplicateRequest, ReplicateResponse
from repro.wire.chunk import Chunk


@dataclass
class FlushWork:
    """An asynchronous disk write the driver should schedule.

    ``nbytes`` may be zero: a policy/spill checkpoint for a segment that
    sealed with nothing left to flush.
    """

    segment: ReplicatedSegment
    nbytes: int
    #: Byte range of the segment this flush covers.
    start: int = 0


class KeraBackupCore:
    """Sans-IO backup state machine for one node.

    "Sans-IO" up to the durable tier: the replication/ack path never
    touches the disk — it only *emits* :class:`FlushWork` — while
    :meth:`persist` executes that work and is called either inline
    (inproc driver) or from a dedicated flusher thread (live drivers).
    """

    def __init__(
        self,
        *,
        node_id: int,
        materialize: bool = True,
        flush_threshold: int = 1 << 20,
        disk_dir: str | Path | None = None,
        fsync_policy: str = "never",
        spill: bool = False,
        index_interval: int = DEFAULT_INDEX_INTERVAL,
    ) -> None:
        self.node_id = node_id
        self.flush_threshold = flush_threshold
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.persistence: SegmentPersistence | None = None
        if self.disk_dir is not None:
            if not materialize:
                raise StorageError("disk persistence requires materialized segments")
            self.persistence = SegmentPersistence(
                self.disk_dir,
                policy=FlushPolicy.parse(fsync_policy),
                spill=spill,
                index_interval=index_interval,
            )
        self.store = BackupStore(
            node_id,
            materialize=materialize,
            seal_on_rollover=spill and self.persistence is not None,
        )
        #: Prior incarnations' segments re-ingested from disk. Kept apart
        #: from the live store: virtual-segment ids restart from zero on
        #: every incarnation, so an old generation's (src, vlog, vseg)
        #: keys would collide with new replication traffic.
        self._loaded: list[LoadedSegment] = []
        self._load_report: DiskLoadReport | None = None

    # -- secondary storage ----------------------------------------------------

    def _segment_path(self, segment: ReplicatedSegment) -> Path:
        if self.persistence is None:
            raise StorageError("backup has no secondary storage configured")
        return self.persistence.path_for(
            segment.src_broker, segment.vlog_id, segment.vseg_id
        )

    def persist(self, flush: FlushWork) -> Path | None:
        """Execute a flush: append the covered byte range to the segment's
        file (same format on disk and in memory) and apply the fsync
        policy. No-op without a ``disk_dir``."""
        if self.persistence is None:
            return None
        return self.persistence.persist_region(
            flush.segment, flush.start, flush.nbytes
        )

    def tick_persistence(self) -> None:
        """Idle-time hook (flusher thread): time-batched fsync."""
        if self.persistence is not None:
            self.persistence.tick()

    def close_persistence(self, *, sync: bool | None = None) -> None:
        if self.persistence is not None:
            self.persistence.close(sync=sync)

    def read_persisted(self, segment: ReplicatedSegment) -> list[Chunk]:
        """Recovery read path: decode a segment's chunks from its file."""
        if self.persistence is None:
            raise StorageError("backup has no secondary storage configured")
        return self.persistence.read_chunks(
            segment.src_broker, segment.vlog_id, segment.vseg_id
        )

    def handle_replicate(
        self, request: ReplicateRequest
    ) -> tuple[ReplicateResponse, FlushWork | None]:
        """Ingest a replication batch; returns the response plus flush work
        once enough unflushed bytes accumulated (the response never waits
        for the disk — ``backups respond immediately to the broker``).

        Requests carrying encoded ``frames`` (materialized replication)
        take the verbatim-append path; ``chunks`` requests (metadata
        fidelity, recovery migration) are appended object by object."""
        if request.frames is not None:
            segment = self.store.append_frames(
                src_broker=request.src_broker,
                vlog_id=request.vlog_id,
                vseg_id=request.vseg_id,
                frames=request.frames,
                segment_capacity=request.vseg_capacity,
                verified=request.frames_verified,
            )
        else:
            segment = self.store.append_batch(
                src_broker=request.src_broker,
                vlog_id=request.vlog_id,
                vseg_id=request.vseg_id,
                chunks=request.chunks,
                segment_capacity=request.vseg_capacity,
            )
        flush = None
        if segment.unflushed_bytes >= self.flush_threshold:
            start = segment.flushed_bytes
            flush = FlushWork(
                segment=segment,
                nbytes=self.store.take_flush_work(segment),
                start=start,
            )
        return ReplicateResponse(ok=True, bytes_held=segment.bytes_held), flush

    def take_sealed_flushes(self) -> list[FlushWork]:
        """Flush work for segments just sealed by virtual-log rollover.

        Drains each one's unflushed tail so the file is complete, which
        in spill mode lets :meth:`persist` migrate it out of memory. A
        segment whose bytes were already all flushed still gets a
        zero-byte checkpoint so the spill happens.
        """
        work = []
        for segment in self.store.take_just_sealed():
            start = segment.flushed_bytes
            work.append(
                FlushWork(
                    segment=segment,
                    nbytes=self.store.take_flush_work(segment),
                    start=start,
                )
            )
        return work

    def drain_flush(self) -> list[FlushWork]:
        """Flush work for everything still unflushed (shutdown / idle)."""
        work = self.take_sealed_flushes()
        queued = {id(w.segment) for w in work}
        for src_broker in {k[0] for k in self.store._segments}:
            for segment in self.store.segments_for_broker(src_broker):
                if segment.unflushed_bytes > 0 and id(segment) not in queued:
                    start = segment.flushed_bytes
                    work.append(
                        FlushWork(
                            segment=segment,
                            nbytes=self.store.take_flush_work(segment),
                            start=start,
                        )
                    )
        return work

    # -- restart path ---------------------------------------------------------

    def load_from_disk(self, *, parallel: int = 4) -> DiskLoadReport:
        """Re-ingest prior incarnations' segment files (torn tails
        truncated, indexes rebuilt, files recovered in parallel). The
        loaded segments serve :meth:`disk_recovery_chunks` — a restarted
        backup answers restart-recovery reads from what its disk
        survived."""
        if self.persistence is None:
            raise StorageError("backup has no secondary storage configured")
        report = self.persistence.load(parallel=parallel)
        self._loaded = [seg for seg in report.segments if seg.chunks]
        self._load_report = report
        return report

    def disk_recovery_chunks(
        self, failed_broker: int
    ) -> list[tuple[int, list[Chunk]]]:
        """A prior incarnation's chunks for ``failed_broker``, from disk,
        as ``(vseg_id, chunks)`` runs in virtual-log order (mirrors
        :meth:`recovery_chunks`, but over the loaded generation)."""
        picked = sorted(
            (seg for seg in self._loaded if seg.meta.src_broker == failed_broker),
            key=lambda seg: (seg.meta.vlog_id, seg.meta.vseg_id),
        )
        return [(seg.meta.vseg_id, list(seg.chunks)) for seg in picked]

    def loaded_brokers(self) -> list[int]:
        """Source brokers with disk-loaded data awaiting restore."""
        return sorted({seg.meta.src_broker for seg in self._loaded})

    def retire_loaded_epochs(self, report: DiskLoadReport | None = None) -> None:
        """Drop the loaded generation once its data has been replayed and
        re-persisted by this incarnation."""
        if report is None:
            report = self._load_report
        if report is not None and self.persistence is not None:
            self.persistence.retire_loaded_epochs(report)
        self._loaded = []
        self._load_report = None

    # -- stats ----------------------------------------------------------------

    @property
    def segments_on_disk(self) -> int:
        return 0 if self.persistence is None else self.persistence.segments_on_disk

    @property
    def spilled_segments(self) -> int:
        return self.store.spilled_segments

    # -- recovery -----------------------------------------------------------

    def recovery_chunks(self, failed_broker: int) -> list[tuple[int, list[Chunk]]]:
        """The failed broker's chunks held here, as ``(vseg_id, chunks)``
        runs in virtual-segment order."""
        return [
            (segment.vseg_id, list(segment.chunks))
            for segment in self.store.segments_for_broker(failed_broker)
        ]
