"""Streamlet migration: horizontal scalability without failures.

``M represents the maximum number of nodes that can ingest and store a
stream's records (ensuring horizontal scalability through migration of
streamlets to new brokers)`` (paper, Section IV-A). Migration reuses the
recovery machinery, but sourced from the *live* broker instead of the
backups: the source broker's chunks for the streamlet are replayed into
the target through the ordinary produce path (placement tags and
exactly-once sequence numbers travel with every chunk), the coordinator
flips leadership, and the moved data is re-replicated from its new
primary.

Ordering per (streamlet, entry) is preserved for the same reason it is in
recovery: chunks are replayed in group-creation/append order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import StorageError
from repro.kera.inproc import InprocKeraCluster
from repro.kera.messages import ProduceRequest


@dataclass
class MigrationReport:
    """What one streamlet migration moved."""

    stream_id: int
    streamlet_id: int
    source: int
    target: int
    chunks_moved: int = 0
    records_moved: int = 0
    bytes_moved: int = 0


def migrate_streamlet(
    cluster: InprocKeraCluster, stream_id: int, streamlet_id: int, target: int
) -> MigrationReport:
    """Move one streamlet's leadership (and data) to ``target``."""
    meta = cluster.coordinator.stream(stream_id)
    try:
        source = meta.leaders[streamlet_id]
    except KeyError:
        raise StorageError(
            f"stream {stream_id} has no streamlet {streamlet_id}"
        ) from None
    if target not in cluster.coordinator.live_brokers:
        raise StorageError(f"target broker {target} is not a live broker")
    if target == source:
        raise StorageError(f"streamlet already led by broker {target}")
    report = MigrationReport(
        stream_id=stream_id, streamlet_id=streamlet_id, source=source, target=target
    )

    source_broker = cluster.brokers[source]
    streamlet = source_broker.registry.get(stream_id).streamlet(streamlet_id)
    if source_broker.manager.pending_chunks():
        # Quiesce: in this synchronous driver replication is always pumped
        # to completion, so pending work means an internal bug.
        raise StorageError("cannot migrate with replication in flight")

    # Register the streamlet on the target.
    target_broker = cluster.brokers[target]
    if stream_id in target_broker.registry:
        target_broker.registry.get(stream_id).add_streamlet(streamlet_id)
    else:
        target_broker.create_stream(stream_id, [streamlet_id])

    # Replay the data in group/append order through the produce path.
    chunks = [stored.to_wire_chunk() for stored in streamlet.chunks()]
    if chunks:
        request = ProduceRequest(
            request_id=cluster._request_ids.next(),
            producer_id=0,
            chunks=chunks,
        )
        outcome = target_broker.handle_produce(request)
        cluster.pump_replication(target)
        report.chunks_moved = len(outcome.new_chunks)
        report.records_moved = outcome.new_records
        report.bytes_moved = outcome.new_bytes

    # Flip leadership; the source's copy is now garbage (a real system
    # would reclaim its segments lazily).
    meta.leaders[streamlet_id] = target
    return report
