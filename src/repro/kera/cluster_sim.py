"""The discrete-event KerA cluster driver.

System-side behaviour on top of :class:`repro.simdriver.BaseSimCluster`:

* every broker node also runs a backup service;
* the broker's produce handler appends chunks under per-sub-partition
  locks (parallel appends need Q > 1), triggers virtual-log
  synchronization, releases its worker, and parks until every chunk of
  the request is durable (active, push-based replication);
* each virtual log keeps one replication RPC in flight to its backup set;
  whatever accumulated while the RPC travelled ships in the next batch
  (group commit). Staging a batch consumes broker worker CPU serialized
  per virtual log — the replication pipeline whose multiplicity is the
  paper's *replication capacity* knob;
* backups verify, buffer, and asynchronously flush replicated segments;
  the produce path never waits on a disk.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.common.errors import ConfigError
from repro.replication.manager import wire_chunks
from repro.replication.virtual_log import ReplicationBatch, VirtualLog
from repro.rpc.fabric import RELEASE_WORKER, Service
from repro.sim.costmodel import CostModel
from repro.sim.engine import Event
from repro.sim.resources import Resource
from repro.simdriver.base import BaseSimCluster, SimResult, SimWorkload
from repro.kera.backup import KeraBackupCore
from repro.kera.broker import KeraBrokerCore
from repro.kera.config import KeraConfig
from repro.kera.coordinator import StreamMetadata
from repro.kera.messages import FetchRequest, ProduceRequest, ReplicateRequest

__all__ = ["SimKeraCluster", "SimWorkload", "SimResult"]


class _BrokerService(Service):
    """Sim wrapper around :class:`KeraBrokerCore` (produce + fetch)."""

    def __init__(self, driver: "SimKeraCluster", node_id: int) -> None:
        self.driver = driver
        self.node_id = node_id
        self.core = driver.broker_cores[node_id]
        self.locks: dict[tuple[int, int, int], Resource] = {}

    def _lock(self, key: tuple[int, int, int]) -> Resource:
        lock = self.locks.get(key)
        if lock is None:
            lock = Resource(self.driver.env, 1)
            self.locks[key] = lock
        return lock

    def handle(self, method: str, request: Any) -> Generator[Any, Any, tuple[Any, int]]:
        if method == "produce":
            return (yield from self._produce(request))
        if method == "fetch":
            return (yield from self._fetch(request))
        raise ConfigError(f"unknown broker method {method!r}")

    def _produce(
        self, request: ProduceRequest
    ) -> Generator[Any, Any, tuple[Any, int]]:
        driver = self.driver
        cost = driver.cost
        env = driver.env
        yield env.timeout(cost.request_handle_cost)
        # Per-sub-partition append serialization: group the request's
        # chunks by (stream, streamlet, entry) and charge the append CPU
        # under that sub-partition's lock (Q > 1 -> parallel appends).
        q = driver.q_active_groups
        by_subpartition: dict[tuple[int, int, int], tuple[int, int]] = {}
        for chunk in request.chunks:
            key = (chunk.stream_id, chunk.streamlet_id, chunk.producer_id % q)
            n, nbytes = by_subpartition.get(key, (0, 0))
            by_subpartition[key] = (n + 1, nbytes + chunk.payload_len)
        for key, (n, nbytes) in by_subpartition.items():
            work = n * (cost.chunk_append_cost + cost.chunk_ref_cost) + (
                nbytes * cost.byte_copy_cost
            )
            yield from self._lock(key).use(work)
        outcome = self.core.handle_produce(request)
        driver._start_shipments(self.node_id)
        if outcome.pending:
            done = driver._completion_event(self.node_id, request.request_id)
            yield RELEASE_WORKER
            yield done
        response = outcome.response
        return response, response.payload_bytes()

    def _fetch(self, request: FetchRequest) -> Generator[Any, Any, tuple[Any, int]]:
        cost = self.driver.cost
        response = self.core.handle_fetch(request)
        work = cost.request_handle_cost + response.chunk_count * cost.consumer_chunk_cost
        yield self.driver.env.timeout(work)
        return response, response.payload_bytes()


class _BackupService(Service):
    """Sim wrapper around :class:`KeraBackupCore`."""

    def __init__(self, driver: "SimKeraCluster", node_id: int) -> None:
        self.driver = driver
        self.node_id = node_id
        self.core = driver.backup_cores[node_id]

    def handle(self, method: str, request: Any) -> Generator[Any, Any, tuple[Any, int]]:
        if method != "replicate":
            raise ConfigError(f"unknown backup method {method!r}")
        driver = self.driver
        cost = driver.cost
        nbytes = sum(c.payload_len for c in request.chunks)
        work = (
            cost.backup_request_cost
            + len(request.chunks) * cost.backup_chunk_cost
            + nbytes * cost.byte_copy_cost
        )
        yield driver.env.timeout(work)
        response, flush = self.core.handle_replicate(request)
        if flush is not None:
            node = driver.fabric.nodes[self.node_id]
            driver.env.process(
                node.disk.write(flush.nbytes), name=f"flush@{self.node_id}"
            )
        return response, response.payload_bytes()


class SimKeraCluster(BaseSimCluster):
    """Builds and runs one simulated KerA experiment."""

    def __init__(
        self,
        config: KeraConfig | None = None,
        workload: SimWorkload | None = None,
        cost: CostModel | None = None,
    ) -> None:
        self.config = config or KeraConfig()
        if self.config.storage.materialize:
            raise ConfigError(
                "the simulation driver requires metadata-only storage "
                "(StorageConfig(materialize=False)); byte fidelity belongs "
                "to InprocKeraCluster"
            )
        super().__init__(
            workload or SimWorkload(),
            cost or CostModel(),
            num_brokers=self.config.num_brokers,
            q_active_groups=self.config.storage.q_active_groups,
            chunk_size=self.config.chunk_size,
            linger=self.config.linger,
            client_cache_chunks=self.config.client_cache_chunks,
        )

    # -- system wiring -----------------------------------------------------------

    def _setup_system(self) -> None:
        self.broker_cores: dict[int, KeraBrokerCore] = {}
        self.backup_cores: dict[int, KeraBackupCore] = {}
        for node in self.broker_nodes:
            self.broker_cores[node] = KeraBrokerCore(
                broker_id=node,
                nodes=self.broker_nodes,
                storage_config=self.config.storage,
                replication_config=self.config.replication,
                on_request_complete=self._make_completion_cb(node),
                zero_copy_fetch=True,
            )
            self.backup_cores[node] = KeraBackupCore(
                node_id=node,
                materialize=False,
                flush_threshold=self.config.flush_threshold,
            )
            self.fabric.register(node, "broker", _BrokerService(self, node))
            self.fabric.register(node, "backup", _BackupService(self, node))

    def _on_stream_created(self, meta: StreamMetadata) -> None:
        for node in self.broker_nodes:
            local = meta.streamlets_on(node)
            if local:
                self.broker_cores[node].create_stream(meta.stream_id, local)

    # -- replication shipping --------------------------------------------------------

    def _start_shipments(self, broker_id: int) -> None:
        core = self.broker_cores[broker_id]
        for batch in core.collect_batches():
            vlog = core.vlog_for_batch(batch)
            self.env.process(
                self._ship_loop(broker_id, vlog, batch),
                name=f"ship:b{broker_id}v{batch.vlog_id}",
            )

    def _ship_loop(
        self, broker_id: int, vlog: VirtualLog, batch: ReplicationBatch | None
    ) -> Generator[Event, Any, None]:
        core = self.broker_cores[broker_id]
        cost = self.cost
        workers = self.fabric.nodes[broker_id].workers
        while batch is not None:
            # Staging the batch (reference walk, wire headers, checksum
            # folding) consumes broker worker CPU and serializes per
            # virtual log — the replication pipeline a single shared log
            # provides, and the reason replication capacity is a knob.
            yield from workers.use(
                cost.repl_batch_send_cost
                + batch.chunk_count * cost.repl_chunk_send_cost
            )
            request = ReplicateRequest(
                src_broker=broker_id,
                vlog_id=batch.vlog_id,
                vseg_id=batch.vseg.vseg_id,
                vseg_capacity=batch.vseg.capacity,
                batch_checksum=batch.vseg.checksum,
                chunks=list(wire_chunks(batch)),
            )
            nbytes = request.payload_bytes()
            if len(batch.backups) == 1:
                yield from self.fabric.call_inline(
                    broker_id, batch.backups[0], "backup", "replicate", request, nbytes
                )
            else:
                rpcs = [
                    self.fabric.call(
                        broker_id, backup, "backup", "replicate", request, nbytes
                    )
                    for backup in batch.backups
                ]
                yield self.env.all_of(rpcs)
            core.complete_batch(batch)
            batch = vlog.next_batch()

    # -- result ------------------------------------------------------------------------

    def _system_result_fields(self) -> dict[str, Any]:
        chunks_shipped = sum(
            core.manager.total_chunks_shipped() for core in self.broker_cores.values()
        )
        batches = sum(
            core.manager.total_batches() for core in self.broker_cores.values()
        )
        return {
            "avg_replication_batch_chunks": (chunks_shipped / batches) if batches else 0.0,
            "replication_rpcs": self.fabric.stats.calls.get(("backup", "replicate"), 0),
            "memory_peak_bytes": sum(
                core.allocator.peak_bytes for core in self.broker_cores.values()
            ),
        }
