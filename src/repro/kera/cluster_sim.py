"""The discrete-event KerA cluster driver.

System-side behaviour on top of :class:`repro.simdriver.BaseSimCluster`
(which assembles the cluster on :class:`repro.runtime.ClusterRuntime`
with a :class:`repro.runtime.KeraSystem` adapter):

* every broker node also runs a backup service;
* the broker's produce handler appends chunks under per-sub-partition
  locks (parallel appends need Q > 1), triggers virtual-log
  synchronization, releases its worker, and parks until every chunk of
  the request is durable (active, push-based replication);
* each virtual log keeps one replication RPC in flight to its backup set;
  whatever accumulated while the RPC travelled ships in the next batch
  (group commit) — the pipeline lives in
  :class:`repro.runtime.SimKeraReplication`;
* backups verify, buffer, and asynchronously flush replicated segments;
  the produce path never waits on a disk.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

from repro.common.errors import ConfigError
from repro.rpc.fabric import RELEASE_WORKER, Service
from repro.runtime.sim import SimKeraReplication
from repro.runtime.system import KeraSystem
from repro.sim.costmodel import CostModel
from repro.sim.resources import Resource
from repro.simdriver.base import BaseSimCluster, SimResult, SimWorkload
from repro.kera.backup import KeraBackupCore
from repro.kera.broker import KeraBrokerCore
from repro.kera.config import KeraConfig
from repro.kera.messages import FetchRequest, ProduceRequest

__all__ = ["SimKeraCluster", "SimWorkload", "SimResult"]


class _BrokerService(Service):
    """Sim wrapper around :class:`KeraBrokerCore` (produce + fetch)."""

    def __init__(self, driver: "SimKeraCluster", node_id: int) -> None:
        self.driver = driver
        self.node_id = node_id
        self.core = driver.broker_cores[node_id]
        self.locks: dict[tuple[int, int, int], Resource] = {}

    def _lock(self, key: tuple[int, int, int]) -> Resource:
        lock = self.locks.get(key)
        if lock is None:
            lock = Resource(self.driver.env, 1)
            self.locks[key] = lock
        return lock

    def handle(self, method: str, request: Any) -> Generator[Any, Any, tuple[Any, int]]:
        if method == "produce":
            return (yield from self._produce(request))
        if method == "fetch":
            return (yield from self._fetch(request))
        raise ConfigError(f"unknown broker method {method!r}")

    def _produce(
        self, request: ProduceRequest
    ) -> Generator[Any, Any, tuple[Any, int]]:
        driver = self.driver
        cost = driver.cost
        env = driver.env
        yield env.timeout(cost.request_handle_cost)
        # Per-sub-partition append serialization: group the request's
        # chunks by (stream, streamlet, entry) and charge the append CPU
        # under that sub-partition's lock (Q > 1 -> parallel appends).
        q = driver.q_active_groups
        by_subpartition: dict[tuple[int, int, int], tuple[int, int]] = {}
        for chunk in request.chunks:
            key = (chunk.stream_id, chunk.streamlet_id, chunk.producer_id % q)
            n, nbytes = by_subpartition.get(key, (0, 0))
            by_subpartition[key] = (n + 1, nbytes + chunk.payload_len)
        for key, (n, nbytes) in by_subpartition.items():
            work = n * (cost.chunk_append_cost + cost.chunk_ref_cost) + (
                nbytes * cost.byte_copy_cost
            )
            yield from self._lock(key).use(work)
        outcome = self.core.handle_produce(request)
        driver.replication.start_shipments(self.node_id)
        if outcome.pending:
            done = driver._completion_event(self.node_id, request.request_id)
            yield RELEASE_WORKER
            yield done
        response = outcome.response
        return response, response.payload_bytes()

    def _fetch(self, request: FetchRequest) -> Generator[Any, Any, tuple[Any, int]]:
        cost = self.driver.cost
        response = self.core.handle_fetch(request)
        work = cost.request_handle_cost + response.chunk_count * cost.consumer_chunk_cost
        yield self.driver.env.timeout(work)
        return response, response.payload_bytes()


class _BackupService(Service):
    """Sim wrapper around :class:`KeraBackupCore`."""

    def __init__(self, driver: "SimKeraCluster", node_id: int) -> None:
        self.driver = driver
        self.node_id = node_id
        self.core = driver.backup_cores[node_id]

    def handle(self, method: str, request: Any) -> Generator[Any, Any, tuple[Any, int]]:
        if method != "replicate":
            raise ConfigError(f"unknown backup method {method!r}")
        driver = self.driver
        cost = driver.cost
        nbytes = sum(c.payload_len for c in request.chunks)
        work = (
            cost.backup_request_cost
            + len(request.chunks) * cost.backup_chunk_cost
            + nbytes * cost.byte_copy_cost
        )
        yield driver.env.timeout(work)
        response, flush = self.core.handle_replicate(request)
        if flush is not None:
            node = driver.fabric.nodes[self.node_id]
            driver.env.process(
                node.disk.write(flush.nbytes), name=f"flush@{self.node_id}"
            )
        return response, response.payload_bytes()


class SimKeraCluster(BaseSimCluster):
    """Builds and runs one simulated KerA experiment."""

    def __init__(
        self,
        config: KeraConfig | None = None,
        workload: SimWorkload | None = None,
        cost: CostModel | None = None,
    ) -> None:
        self.config = config or KeraConfig()
        if self.config.storage.materialize:
            raise ConfigError(
                "the simulation driver requires metadata-only storage "
                "(StorageConfig(materialize=False)); byte fidelity belongs "
                "to InprocKeraCluster"
            )
        super().__init__(
            workload or SimWorkload(),
            cost or CostModel(),
            system=KeraSystem(self.config, zero_copy_fetch=True),
            q_active_groups=self.config.storage.q_active_groups,
            chunk_size=self.config.chunk_size,
            linger=self.config.linger,
            client_cache_chunks=self.config.client_cache_chunks,
        )

    # -- system wiring -----------------------------------------------------------

    @property
    def broker_cores(self) -> dict[int, KeraBrokerCore]:
        return self.system.broker_cores

    @property
    def backup_cores(self) -> dict[int, KeraBackupCore]:
        return self.system.backup_cores

    def _register_services(self) -> None:
        self.replication = SimKeraReplication(
            self.env, self.fabric, self.cost, self.system
        )
        for node in self.broker_nodes:
            self.transport.register(node, "broker", _BrokerService(self, node))
            self.transport.register(node, "backup", _BackupService(self, node))

    # -- result ------------------------------------------------------------------------

    def _system_result_fields(self) -> dict[str, Any]:
        chunks_shipped = sum(
            core.manager.total_chunks_shipped() for core in self.broker_cores.values()
        )
        batches = sum(
            core.manager.total_batches() for core in self.broker_cores.values()
        )
        return {
            "avg_replication_batch_chunks": (chunks_shipped / batches) if batches else 0.0,
            "replication_rpcs": self.fabric.stats.calls.get(("backup", "replicate"), 0),
            "memory_peak_bytes": sum(
                core.allocator.peak_bytes for core in self.broker_cores.values()
            ),
        }
