"""In-process KerA cluster: the live, real-bytes synchronous driver.

Every core runs in this process and every call is synchronous; chunk
payloads are real encoded records end to end (produce → segment bytes →
replication RPC → backup segment bytes → fetch → decode). There is no
timing here — this driver exists to prove the *data path* and to host the
integration tests and examples; performance questions go to
:mod:`repro.kera.cluster_sim`, concurrency questions to
:mod:`repro.kera.threaded`.

The cluster assembly lives in :class:`repro.kera.live.LiveKeraCluster`
on :class:`repro.runtime.ClusterRuntime`; this module contributes only
the synchronous produce handler (append, pump replication to completion,
ack) over :class:`repro.runtime.InprocTransport`.
"""

from __future__ import annotations

from repro.common.errors import ConfigError, ReplicationError
from repro.runtime.inproc import InprocTransport
from repro.runtime.transport import LiveService
from repro.kera.config import KeraConfig
from repro.kera.live import LiveBackupService, LiveKeraCluster
from repro.kera.messages import ProduceRequest


class _InprocBrokerService(LiveService):
    """Synchronous broker wrapper: produce pumps replication inline."""

    def __init__(self, cluster: "InprocKeraCluster", node_id: int) -> None:
        self.cluster = cluster
        self.node_id = node_id
        self.core = cluster.brokers[node_id]

    def handle(self, method: str, request: object) -> object:
        if method == "produce":
            return self._produce(request)
        if method == "produce_async":
            return self._produce_async(request)
        if method == "fetch":
            return self.core.handle_fetch(request)
        raise ConfigError(f"unknown broker method {method!r}")

    def _produce_async(self, request: ProduceRequest) -> object:
        """Completion-driven produce for the synchronous transport: the
        replication pump runs inline, so by the time the outcome returns
        to ``submit_produce`` every pending chunk has already completed
        and the tracker's early-completion memory resolves the register
        immediately — the ack-before-register path, exercised on every
        call."""
        outcome = self.core.handle_produce(request)
        self.cluster.pump_replication(self.node_id)
        return outcome

    def _produce(self, request: ProduceRequest) -> object:
        outcome = self.core.handle_produce(request)
        self.cluster.pump_replication(self.node_id)
        if outcome.pending and not self.cluster.runtime.completion.consume(
            self.node_id, request.request_id
        ):
            raise ReplicationError(
                f"request {request.request_id} not durable after replication pump"
            )
        return outcome.response


class InprocKeraCluster(LiveKeraCluster):
    """A whole KerA cluster in one process."""

    def __init__(self, config: KeraConfig | None = None) -> None:
        super().__init__(config, InprocTransport())

    def _register_services(self) -> None:
        for node in self.system.node_ids:
            self.transport.register(node, "broker", _InprocBrokerService(self, node))
            self.transport.register(node, "backup", LiveBackupService(self, node))
