"""In-process KerA cluster: the live, real-bytes driver.

Every core runs in this process and every call is synchronous; chunk
payloads are real encoded records end to end (produce → segment bytes →
replication RPC → backup segment bytes → fetch → decode). There is no
timing here — this driver exists to prove the *data path* and to host the
integration tests and examples; performance questions go to
:mod:`repro.kera.cluster_sim`.
"""

from __future__ import annotations

from collections import defaultdict

from repro.common.errors import ReplicationError, StorageError
from repro.common.idgen import IdGenerator
from repro.replication.manager import wire_chunks
from repro.kera.backup import KeraBackupCore
from repro.kera.broker import KeraBrokerCore
from repro.kera.config import KeraConfig
from repro.kera.coordinator import Coordinator
from repro.kera.messages import (
    FetchPosition,
    FetchRequest,
    FetchResponse,
    ProduceRequest,
    ProduceResponse,
    ReplicateRequest,
)
from repro.wire.chunk import Chunk


class InprocKeraCluster:
    """A whole KerA cluster in one process."""

    def __init__(self, config: KeraConfig | None = None) -> None:
        self.config = config or KeraConfig()
        node_ids = list(range(self.config.num_brokers))
        self.coordinator = Coordinator(node_ids)
        self._completed: set[int] = set()
        self.brokers: dict[int, KeraBrokerCore] = {
            node: KeraBrokerCore(
                broker_id=node,
                nodes=node_ids,
                storage_config=self.config.storage,
                replication_config=self.config.replication,
                on_request_complete=self._completed.add,
            )
            for node in node_ids
        }
        self.backups: dict[int, KeraBackupCore] = {
            node: KeraBackupCore(
                node_id=node,
                materialize=self.config.storage.materialize,
                flush_threshold=self.config.flush_threshold,
                disk_dir=(
                    f"{self.config.disk_dir}/node{node}"
                    if self.config.disk_dir is not None
                    else None
                ),
            )
            for node in node_ids
        }
        self._request_ids = IdGenerator()
        self._failed: set[int] = set()
        self.flushes_scheduled = 0

    # -- cluster management -----------------------------------------------------

    def create_stream(self, stream_id: int, num_streamlets: int) -> None:
        """Create a stream and register its streamlets on their leaders."""
        meta = self.coordinator.create_stream(stream_id, num_streamlets)
        for broker_id in self.coordinator.live_brokers:
            local = meta.streamlets_on(broker_id)
            if local:
                self.brokers[broker_id].create_stream(stream_id, local)

    def leader_of(self, stream_id: int, streamlet_id: int) -> int:
        return self.coordinator.stream(stream_id).leaders[streamlet_id]

    # -- produce path ----------------------------------------------------------------

    def produce(self, chunks: list[Chunk], producer_id: int) -> list[ProduceResponse]:
        """Route chunks to their leaders, append, replicate synchronously,
        and return the (acknowledged) responses — one per broker touched."""
        by_broker: dict[int, list[Chunk]] = defaultdict(list)
        for chunk in chunks:
            leader = self.leader_of(chunk.stream_id, chunk.streamlet_id)
            by_broker[leader].append(chunk)
        responses = []
        for broker_id in sorted(by_broker):
            request = ProduceRequest(
                request_id=self._request_ids.next(),
                producer_id=producer_id,
                chunks=by_broker[broker_id],
            )
            broker = self.brokers[broker_id]
            outcome = broker.handle_produce(request)
            self.pump_replication(broker_id)
            if outcome.pending and request.request_id not in self._completed:
                raise ReplicationError(
                    f"request {request.request_id} not durable after replication pump"
                )
            self._completed.discard(request.request_id)
            responses.append(outcome.response)
        return responses

    def pump_replication(self, broker_id: int) -> int:
        """Ship every ready replication batch of a broker to its backups,
        synchronously, until the broker has nothing left to ship."""
        broker = self.brokers[broker_id]
        shipped = 0
        while True:
            batches = broker.collect_batches()
            if not batches:
                break
            for batch in batches:
                request = ReplicateRequest(
                    src_broker=broker_id,
                    vlog_id=batch.vlog_id,
                    vseg_id=batch.vseg.vseg_id,
                    vseg_capacity=batch.vseg.capacity,
                    batch_checksum=batch.vseg.checksum,
                    chunks=list(wire_chunks(batch)),
                )
                for backup_node in batch.backups:
                    if backup_node in self._failed:
                        raise ReplicationError(
                            f"replication to failed node {backup_node}"
                        )
                    backup = self.backups[backup_node]
                    _, flush = backup.handle_replicate(request)
                    if flush is not None:
                        self.flushes_scheduled += 1
                        backup.persist(flush)
                broker.complete_batch(batch)
                shipped += 1
        return shipped

    # -- fetch path ---------------------------------------------------------------------

    def fetch(
        self,
        positions: list[FetchPosition],
        *,
        consumer_id: int,
        max_chunks_per_entry: int = 16,
    ) -> list[FetchResponse]:
        """Fetch durable chunks, grouping positions by leader."""
        by_broker: dict[int, list[FetchPosition]] = defaultdict(list)
        for pos in positions:
            by_broker[self.leader_of(pos.stream_id, pos.streamlet_id)].append(pos)
        responses = []
        for broker_id in sorted(by_broker):
            request = FetchRequest(
                request_id=self._request_ids.next(),
                consumer_id=consumer_id,
                positions=by_broker[broker_id],
                max_chunks_per_entry=max_chunks_per_entry,
            )
            responses.append(self.brokers[broker_id].handle_fetch(request))
        return responses

    # -- failure injection -------------------------------------------------------------------

    def crash_broker(self, broker_id: int) -> None:
        """Take a node down: its broker and backup stop responding."""
        if broker_id not in self.brokers:
            raise StorageError(f"unknown broker {broker_id}")
        self._failed.add(broker_id)
        for survivor_id, broker in self.brokers.items():
            if survivor_id in self._failed:
                continue
            repairs = broker.handle_backup_failure(broker_id)
            # Ship repair batches to the replacement backups.
            for batch in repairs:
                request = ReplicateRequest(
                    src_broker=survivor_id,
                    vlog_id=batch.vlog_id,
                    vseg_id=batch.vseg.vseg_id,
                    vseg_capacity=batch.vseg.capacity,
                    batch_checksum=batch.vseg.checksum,
                    chunks=list(wire_chunks(batch)),
                )
                for backup_node in batch.backups:
                    self.backups[backup_node].handle_replicate(request)

    @property
    def live_broker_ids(self) -> list[int]:
        return [b for b in sorted(self.brokers) if b not in self._failed]
