"""Forkable virtual logs: copy-on-write reader-plane branches.

AgileLog (PAPERS.md) motivates cheap *forks* of a log for speculative or
agent consumers: a fork sees a consistent snapshot of the parent's
committed prefix and may grow its own private tail, without copying a
byte of shared data. This module implements that shape at the client
layer over encoded chunk frames — the same frames the reader plane
serves zero-copy (:class:`~repro.wire.views.ChunkView`).

Semantics:

* ``fork()`` snapshots the parent's current length. The child *shares*
  the prefix by reference — ``child.frame_at(i) is parent.frame_at(i)``
  for every prefix index (buffer identity, pinned by tests) — and owns a
  private tail past it.
* The parent keeps appending after a fork; those appends are invisible
  to the child (snapshot isolation), exactly as the child's tail is
  invisible to the parent. Neither ever blocks or copies for the other.
* Forks nest: a fork of a fork chains prefix resolution through its
  ancestors, so a deep branch still stores only its own tail.

This is deliberately distinct from
:class:`repro.replication.virtual_log.VirtualLog`, the broker-side
replication vlog: that one orders chunk *references* for durability;
this one branches *consumption* over immutable frame bytes.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.common.errors import OffsetOutOfRangeError, StorageError
from repro.wire.views import ChunkView


class VirtualLog:
    """An append-only log of encoded chunk frames, forkable with CoW."""

    __slots__ = ("name", "_parent", "_fork_point", "_tail", "_cumulative", "_forks")

    def __init__(self, name: str = "root") -> None:
        self.name = name
        self._parent: "VirtualLog | None" = None
        #: Number of parent frames visible to this log (0 for a root).
        self._fork_point = 0
        #: Frames appended to this log itself (the private tail).
        self._tail: list[memoryview | bytes] = []
        #: Cumulative record counts over *visible* frames (prefix + tail),
        #: mirroring the segment offset-index discipline so seeks bisect.
        self._cumulative: list[int] = []
        self._forks = 0

    @classmethod
    def _fork_of(cls, parent: "VirtualLog") -> "VirtualLog":
        child = cls(name=f"{parent.name}/fork{parent._forks}")
        child._parent = parent
        child._fork_point = len(parent)
        # Seed the child's cumulative array with the prefix totals so
        # record offsets stay log-global across the fork point.
        if parent._cumulative:
            child._cumulative = parent._cumulative[: child._fork_point]
        return child

    # -- write side ----------------------------------------------------------

    def append(self, frame: memoryview | bytes) -> int:
        """Append one encoded chunk frame; return its frame index.

        The frame's record count is read from its fixed header (one
        struct unpack — no payload work) to keep the seek index current.
        """
        count = ChunkView(frame).record_count
        self._tail.append(frame)
        total = (self._cumulative[-1] if self._cumulative else 0) + count
        self._cumulative.append(total)
        return len(self._cumulative) - 1

    def fork(self) -> "VirtualLog":
        """A copy-on-write branch sharing this log's current prefix."""
        child = VirtualLog._fork_of(self)
        self._forks += 1
        return child

    # -- read side -----------------------------------------------------------

    def __len__(self) -> int:
        """Visible frames: inherited prefix plus private tail."""
        return self._fork_point + len(self._tail)

    @property
    def record_count(self) -> int:
        return self._cumulative[-1] if self._cumulative else 0

    @property
    def fork_point(self) -> int:
        """Frames inherited from the parent (0 for a root log)."""
        return self._fork_point

    def frame_at(self, index: int) -> memoryview | bytes:
        """The ``index``-th visible frame — the *same object* the parent
        holds when ``index`` is below the fork point (zero-copy sharing)."""
        if index < 0 or index >= len(self):
            raise StorageError(
                f"frame index {index} outside [0, {len(self)}) in log {self.name}"
            )
        log: VirtualLog = self
        while index < log._fork_point:
            assert log._parent is not None  # fork_point > 0 implies a parent
            log = log._parent
        return log._tail[index - log._fork_point]

    def view_at(self, index: int) -> ChunkView:
        """Zero-copy decode view of the ``index``-th frame."""
        return ChunkView(self.frame_at(index))

    def frame_record_base(self, index: int) -> int:
        """Record offset of frame ``index``'s first record."""
        return self._cumulative[index - 1] if index > 0 else 0

    def locate(self, record_offset: int) -> int:
        """Frame index containing ``record_offset`` (one bisect)."""
        if record_offset < 0 or record_offset >= self.record_count:
            raise OffsetOutOfRangeError(
                record_offset, 0, self.record_count, f"virtual log {self.name}"
            )
        return bisect_right(self._cumulative, record_offset)

    def reader(self, *, start_frame: int = 0) -> "LogReader":
        return LogReader(self, start_frame=start_frame)


class LogReader:
    """A fork-aware cursor over a :class:`VirtualLog`.

    Readers resolve frames through the log they were opened on, so a
    reader on a fork walks the shared prefix and then the fork's private
    tail; a reader on the parent never sees the fork's tail. Positioned
    reads go through the log's record index (bisect, no scan).
    """

    __slots__ = ("log", "frame_pos", "records_read")

    def __init__(self, log: VirtualLog, *, start_frame: int = 0) -> None:
        self.log = log
        self.frame_pos = start_frame
        self.records_read = log.frame_record_base(start_frame) if start_frame else 0

    def read(self, max_frames: int = 1) -> list[ChunkView]:
        """Pull up to ``max_frames`` views, advancing the cursor."""
        out: list[ChunkView] = []
        end = len(self.log)
        while self.frame_pos < end and len(out) < max_frames:
            view = self.log.view_at(self.frame_pos)
            out.append(view)
            self.frame_pos += 1
            self.records_read += view.record_count
        return out

    def seek_record(self, record_offset: int) -> None:
        """Position at the frame containing ``record_offset``."""
        index = self.log.locate(record_offset)
        self.frame_pos = index
        self.records_read = self.log.frame_record_base(index)

    @property
    def exhausted(self) -> bool:
        return self.frame_pos >= len(self.log)
