"""A key-value view over a log-structured stream.

The record entry header ``contains an attribute to optionally define a
version and a timestamp field that are necessary to enable key-value
interfaces efficiently`` (paper, Section IV-A), and the conclusion lists
integrating ``key-value stores based on log-structured storage (e.g.,
RocksDB)`` as a next step. This module builds that view from the pieces
already in the engine:

* ``put`` appends a versioned keyed record through the durable produce
  path (keys route to a stable streamlet, preserving per-key order);
* ``get`` serves the latest version from an in-memory index;
* ``delete`` writes a tombstone (empty value, odd timestamp flag);
* the index is *reconstructable*: :meth:`KVTable.rebuild` replays the
  stream through the ordinary consumer — which is exactly what happens
  after a broker crash, so the table inherits KerA's fault tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import StorageError
from repro.kera.client import KeraConsumer, KeraProducer
from repro.kera.inproc import InprocKeraCluster

_TOMBSTONE_MARK = 1


@dataclass(frozen=True)
class VersionedValue:
    """A value with its monotonically increasing per-key version."""

    value: bytes
    version: int
    deleted: bool = False


class KVTable:
    """Durable per-key latest-value store over one stream."""

    def __init__(
        self,
        cluster: InprocKeraCluster,
        *,
        stream_id: int,
        num_streamlets: int = 4,
        writer_id: int = 1 << 17,
        create: bool = True,
    ) -> None:
        self.cluster = cluster
        self.stream_id = stream_id
        self.writer_id = writer_id
        if create:
            cluster.create_stream(stream_id, num_streamlets)
        self._producer = KeraProducer(cluster, producer_id=writer_id)
        self._index: dict[bytes, VersionedValue] = {}
        self._versions: dict[bytes, int] = {}
        self.puts = 0
        self.deletes = 0

    # -- write path -------------------------------------------------------------

    def _next_version(self, key: bytes) -> int:
        version = self._versions.get(key, -1) + 1
        self._versions[key] = version
        return version

    def put(self, key: bytes | str, value: bytes) -> int:
        """Durably store ``value`` for ``key``; returns the new version."""
        kb = key.encode() if isinstance(key, str) else bytes(key)
        if not kb:
            raise StorageError("key must be non-empty")
        version = self._next_version(kb)
        self._producer.send(
            self.stream_id, value, keys=(kb,), version=version, timestamp=0
        )
        self._producer.flush()  # durable before the index reflects it
        self._index[kb] = VersionedValue(value=value, version=version)
        self.puts += 1
        return version

    def delete(self, key: bytes | str) -> None:
        """Write a tombstone for ``key``."""
        kb = key.encode() if isinstance(key, str) else bytes(key)
        if kb not in self._index or self._index[kb].deleted:
            raise KeyError(kb)
        version = self._next_version(kb)
        self._producer.send(
            self.stream_id, b"", keys=(kb,), version=version,
            timestamp=_TOMBSTONE_MARK,
        )
        self._producer.flush()
        self._index[kb] = VersionedValue(value=b"", version=version, deleted=True)
        self.deletes += 1

    # -- read path ------------------------------------------------------------------

    def get(self, key: bytes | str) -> bytes:
        kb = key.encode() if isinstance(key, str) else bytes(key)
        entry = self._index.get(kb)
        if entry is None or entry.deleted:
            raise KeyError(kb)
        return entry.value

    def get_versioned(self, key: bytes | str) -> VersionedValue:
        kb = key.encode() if isinstance(key, str) else bytes(key)
        entry = self._index.get(kb)
        if entry is None:
            raise KeyError(kb)
        return entry

    def __contains__(self, key: bytes | str) -> bool:
        kb = key.encode() if isinstance(key, str) else bytes(key)
        entry = self._index.get(kb)
        return entry is not None and not entry.deleted

    def keys(self) -> list[bytes]:
        return sorted(k for k, v in self._index.items() if not v.deleted)

    def __len__(self) -> int:
        return sum(1 for v in self._index.values() if not v.deleted)

    # -- index reconstruction -----------------------------------------------------------

    def rebuild(self) -> int:
        """Rebuild the index by replaying the stream (e.g. after crash
        recovery migrated the streamlets). Returns records replayed."""
        consumer = KeraConsumer(
            self.cluster, consumer_id=self.writer_id, stream_ids=[self.stream_id]
        )
        records = consumer.drain()
        index: dict[bytes, VersionedValue] = {}
        versions: dict[bytes, int] = {}
        for record in records:
            key = record.key
            if key is None or record.version is None:
                raise StorageError("non-KV record in KV stream")
            if record.version >= versions.get(key, -1):
                versions[key] = record.version
                index[key] = VersionedValue(
                    value=record.value,
                    version=record.version,
                    deleted=record.timestamp == _TOMBSTONE_MARK,
                )
        self._index = index
        self._versions = versions
        return len(records)
