"""KerA: the high-performance ingestion system with virtual-log replication.

The broker, backup, and coordinator are **sans-IO cores** — pure state
machines with no notion of time or transport. Two drivers execute them:

* :mod:`repro.kera.cluster_sim` — the discrete-event driver used by every
  benchmark: clients, brokers, and backups run as simulated processes over
  the RPC fabric, with the calibrated cost model attached;
* :mod:`repro.kera.inproc` — a synchronous in-process driver with real
  payload bytes end to end, used by the quickstart example and the
  integration tests (produce → replicate → consume → decode);
* :mod:`repro.kera.threaded` — the concurrent live driver: every broker
  and backup on its own worker threads behind bounded request queues,
  with real concurrent producers and consumers.

All three run on :class:`repro.runtime.ClusterRuntime`; only the
transport differs.

Crash recovery (:mod:`repro.kera.recovery`) re-ingests the failed broker's
chunks from the backups' replicated segments into the surviving brokers,
reconstructing metadata from the ``[group, segment]`` tags each chunk
carries.
"""

from repro.kera.config import KeraConfig
from repro.kera.messages import (
    ProduceRequest,
    ProduceResponse,
    ChunkAssignment,
    FetchRequest,
    FetchResponse,
    FetchPosition,
    FetchEntry,
    ReplicateRequest,
    ReplicateResponse,
)
from repro.kera.broker import KeraBrokerCore, ProduceOutcome
from repro.kera.backup import KeraBackupCore
from repro.kera.coordinator import Coordinator, StreamMetadata
from repro.kera.live import LiveKeraCluster
from repro.kera.inproc import InprocKeraCluster
from repro.kera.threaded import ThreadedKeraCluster
from repro.kera.process import ProcessKeraCluster
from repro.kera.socket_cluster import SocketKeraCluster
from repro.kera.shipper import PipelinedShipper
from repro.kera.client import KeraProducer, KeraConsumer
from repro.kera.fork import VirtualLog, LogReader
from repro.kera.recovery import recover_broker, RecoveryReport, merge_backup_copies
from repro.kera.cluster_sim import SimKeraCluster, SimWorkload, SimResult
from repro.kera.objects import ObjectStore, ObjectInfo
from repro.kera.kv import KVTable, VersionedValue
from repro.kera.migration import migrate_streamlet, MigrationReport

__all__ = [
    "KeraConfig",
    "ProduceRequest",
    "ProduceResponse",
    "ChunkAssignment",
    "FetchRequest",
    "FetchResponse",
    "FetchPosition",
    "FetchEntry",
    "ReplicateRequest",
    "ReplicateResponse",
    "KeraBrokerCore",
    "ProduceOutcome",
    "KeraBackupCore",
    "Coordinator",
    "StreamMetadata",
    "LiveKeraCluster",
    "InprocKeraCluster",
    "ThreadedKeraCluster",
    "ProcessKeraCluster",
    "SocketKeraCluster",
    "PipelinedShipper",
    "KeraProducer",
    "KeraConsumer",
    "VirtualLog",
    "LogReader",
    "recover_broker",
    "RecoveryReport",
    "merge_backup_copies",
    "SimKeraCluster",
    "SimWorkload",
    "SimResult",
    "ObjectStore",
    "ObjectInfo",
    "KVTable",
    "VersionedValue",
    "migrate_streamlet",
    "MigrationReport",
]
