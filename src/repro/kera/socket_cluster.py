"""Socket-parallel KerA cluster: backups behind real TCP connections.

:class:`SocketKeraCluster` is :class:`~repro.kera.process.ProcessKeraCluster`
with the shared-memory rings swapped for framed TCP: every node's backup
service runs in a worker process reachable only through one localhost
socket, fed by :class:`repro.runtime.socket_transport.SocketTransport`.
The division of state is identical to process mode — the child owns the
node's backup core (including the durable tier and its flusher thread),
the parent's cores see no traffic — and so is the RPC surface, because
the socket transport speaks the very same request/response kinds.

What changes is the boundary: replicate batches now cross a TCP stream
with scatter-gather ``sendmsg`` (frames leave the broker's segment views
without a coalescing copy), and backpressure becomes a byte-credit
window per connection (``window_bytes``) instead of a physical ring
bound. The pipelined shipper throttles on ``Transport.credit`` either
way, so replicate/ack pipelining works unchanged.

This is the deployable-shape rung of the transport ladder: swap the
localhost rendezvous for real addresses and the same frames cross a
real network. The asyncio client gateway (:mod:`repro.gateway`) fronts
this cluster for thousands of remote producer/consumer connections.
"""

from __future__ import annotations

from repro.common.units import MB
from repro.runtime.socket_transport import SocketServiceSpec, SocketTransport
from repro.runtime.transport import Transport
from repro.kera.config import KeraConfig
from repro.kera.process import ProcessBackupWorker, ProcessKeraCluster
from repro.kera.threaded import _ThreadedBrokerService


class SocketKeraCluster(ProcessKeraCluster):
    """A KerA cluster whose replication plane crosses real sockets."""

    def __init__(
        self,
        config: KeraConfig | None = None,
        *,
        produce_workers: int = 4,
        queue_depth: int = 128,
        call_timeout: float = 30.0,
        ack_timeout: float = 10.0,
        window_bytes: int = 4 * MB,
        transport: Transport | None = None,
    ) -> None:
        self._window_bytes = window_bytes
        super().__init__(
            config,
            produce_workers=produce_workers,
            queue_depth=queue_depth,
            call_timeout=call_timeout,
            ack_timeout=ack_timeout,
            transport=transport
            or SocketTransport(
                queue_depth=queue_depth,
                workers_per_service=produce_workers,
                call_timeout=call_timeout,
            ),
        )

    def _register_services(self) -> None:
        config = self.config
        storage_dir = config.storage_dir
        for node in self.system.node_ids:
            service = _ThreadedBrokerService(self, node)
            self._broker_services[node] = service
            self.transport.register(node, "broker", service)
            self.transport.register(
                node,
                "backup",
                SocketServiceSpec(
                    factory=ProcessBackupWorker,
                    kwargs={
                        "node_id": node,
                        "materialize": config.storage.materialize,
                        "flush_threshold": config.flush_threshold,
                        "disk_dir": (
                            f"{storage_dir}/node{node}"
                            if storage_dir is not None
                            else None
                        ),
                        "fsync_policy": config.replication.fsync_policy,
                        "spill": config.replication.spill_sealed,
                    },
                    window_bytes=self._window_bytes,
                ),
            )
