"""Process-parallel KerA cluster: backups in worker processes.

:class:`ProcessKeraCluster` is the threaded cluster with its backup
services re-homed into child processes behind
:class:`repro.runtime.process.ProcessTransport`: every node's broker
service stays on in-process worker threads, while its backup/replica
service runs in a worker process fed by a shared-memory request ring.
Replication frames are written straight from the broker's segment views
into the ring (the single boundary copy) and re-validated — CRC work on
another core — by the child before landing in its store. The pipelined
shipper throttles on the ring's free bytes via ``Transport.credit``.

The division of state is strict: the *child* owns the node's
:class:`~repro.kera.backup.KeraBackupCore` outright (the parent's
``system.backup_cores`` entries exist but see no traffic in this mode),
including its durable tier — the child runs its own flusher thread and
fsync policy, and drains both when the transport closes its rings.
Backup-side accounting crosses back through the ``stats`` RPC (now
including ``flush_lag_bytes`` and ``segments_on_disk``), and recovery /
restart reads cross through dedicated RPCs (``recovery_chunks``,
``load_disk``, ``disk_recovery_chunks``) — chunks decoded from disk
carry plain byte payloads, so they pickle cleanly.

Failure injection: :meth:`crash_broker` works — repair batches ship over
the rings like any other replicate RPC.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import ConfigError
from repro.common.units import MB
from repro.persist import BackupFlusher
from repro.runtime.process import ProcessServiceSpec, ProcessTransport
from repro.runtime.transport import LiveService, Transport
from repro.kera.backup import FlushWork, KeraBackupCore
from repro.kera.config import KeraConfig
from repro.kera.live import CLIENT_NODE
from repro.kera.threaded import ThreadedKeraCluster, _ThreadedBrokerService
from repro.wire.chunk import Chunk


class ProcessBackupWorker(LiveService):
    """Runs in the child process: owns one node's backup core outright.

    Constructed by the transport *in the child* (the parent pickles only
    this class and the kwargs), so the core's segments, flush accounting,
    disk files, and flusher thread live entirely in the worker's address
    space.
    """

    def __init__(
        self,
        *,
        node_id: int,
        materialize: bool = True,
        flush_threshold: int = 1 << 20,
        disk_dir: str | None = None,
        fsync_policy: str = "never",
        spill: bool = False,
    ) -> None:
        self.core = KeraBackupCore(
            node_id=node_id,
            materialize=materialize,
            flush_threshold=flush_threshold,
            disk_dir=disk_dir,
            fsync_policy=fsync_policy,
            spill=spill,
        )
        self.flushes = 0
        self.flusher: BackupFlusher[FlushWork] | None = None
        if self.core.persistence is not None:
            self.flusher = BackupFlusher(
                self.core.persist,
                name=f"backup-flusher-{node_id}",
                on_tick=self.core.tick_persistence,
            )

    def _schedule(self, works: list[FlushWork]) -> None:
        self.flushes += len(works)
        for work in works:
            if self.flusher is not None:
                self.flusher.submit(work, work.nbytes)
            else:
                self.core.persist(work)

    def handle(self, method: str, request: Any) -> Any:
        if method == "replicate":
            response, flush = self.core.handle_replicate(request)
            works = self.core.take_sealed_flushes()
            if flush is not None:
                works.append(flush)
            if works:
                self._schedule(works)
            return response
        if method == "stats":
            store = self.core.store
            return {
                "chunks_received": store.chunks_received,
                "batches_received": store.batches_received,
                "bytes_held": store.bytes_held,
                "bytes_in_memory": store.bytes_in_memory,
                "segment_count": store.segment_count,
                "spilled_segments": store.spilled_segments,
                "flushes": self.flushes,
                "flush_lag_bytes": (
                    0 if self.flusher is None else self.flusher.flush_lag_bytes
                ),
                "segments_on_disk": self.core.segments_on_disk,
            }
        if method == "sync_flush":
            # Drain every unflushed tail through the flusher and wait.
            self._schedule(self.core.drain_flush())
            if self.flusher is not None:
                self.flusher.wait_idle(30.0)
            if self.core.persistence is not None:
                self.core.persistence.sync_all()
            return self.core.segments_on_disk
        if method == "recovery_chunks":
            return self.core.recovery_chunks(int(request))
        if method == "load_disk":
            report = self.core.load_from_disk()
            return {
                "segments": len(report.segments),
                "chunks_loaded": report.chunks_loaded,
                "bytes_truncated": report.bytes_truncated,
                "files_scanned": report.files_scanned,
                "files_skipped": report.files_skipped,
                "files_superseded": report.files_superseded,
                "indexes_rebuilt": report.indexes_rebuilt,
                "epochs_loaded": list(report.epochs_loaded),
            }
        if method == "loaded_brokers":
            return self.core.loaded_brokers()
        if method == "disk_recovery_chunks":
            return self.core.disk_recovery_chunks(int(request))
        if method == "retire_epochs":
            self.core.retire_loaded_epochs()
            return True
        if method == "drop_broker":
            return self.core.store.drop_broker(int(request))
        raise ConfigError(f"unknown backup method {method!r}")

    def close(self) -> None:
        """Child-side shutdown hook (ring closed and drained): flush the
        tail, stop the flusher, close the segment files."""
        works = self.core.drain_flush()
        if self.flusher is not None:
            for work in works:
                self.flusher.submit(work, work.nbytes)
            self.flusher.stop(drain=True)
        else:
            for work in works:
                self.core.persist(work)
        self.core.close_persistence()


class ProcessKeraCluster(ThreadedKeraCluster):
    """A KerA cluster whose replication plane runs on other cores."""

    def __init__(
        self,
        config: KeraConfig | None = None,
        *,
        produce_workers: int = 4,
        queue_depth: int = 128,
        call_timeout: float = 30.0,
        ack_timeout: float = 10.0,
        ring_bytes: int = 4 * MB,
        transport: Transport | None = None,
    ) -> None:
        self._ring_bytes = ring_bytes
        super().__init__(
            config,
            produce_workers=produce_workers,
            queue_depth=queue_depth,
            call_timeout=call_timeout,
            ack_timeout=ack_timeout,
            transport=transport
            or ProcessTransport(
                queue_depth=queue_depth,
                workers_per_service=produce_workers,
                call_timeout=call_timeout,
            ),
        )

    def _start_flushers(self) -> None:
        # The children own persistence; the parent-side cores see no
        # traffic and must not open files or spawn flusher threads.
        return

    def _register_services(self) -> None:
        config = self.config
        storage_dir = config.storage_dir
        for node in self.system.node_ids:
            service = _ThreadedBrokerService(self, node)
            self._broker_services[node] = service
            self.transport.register(node, "broker", service)
            self.transport.register(
                node,
                "backup",
                ProcessServiceSpec(
                    factory=ProcessBackupWorker,
                    kwargs={
                        "node_id": node,
                        "materialize": config.storage.materialize,
                        "flush_threshold": config.flush_threshold,
                        "disk_dir": (
                            f"{storage_dir}/node{node}"
                            if storage_dir is not None
                            else None
                        ),
                        "fsync_policy": config.replication.fsync_policy,
                        "spill": config.replication.spill_sealed,
                    },
                    ring_bytes=self._ring_bytes,
                ),
            )

    # -- cross-process accounting / recovery ---------------------------------

    def backup_stats(self, node_id: int) -> dict[str, int]:
        """Backup-side accounting, fetched from the worker process."""
        return self.transport.call(CLIENT_NODE, node_id, "backup", "stats", None)

    def flush_lag_bytes(self, node_id: int) -> int:
        return int(self.backup_stats(node_id)["flush_lag_bytes"])

    def segments_on_disk(self, node_id: int) -> int:
        return int(self.backup_stats(node_id)["segments_on_disk"])

    def backup_sync_flush(self, node_id: int) -> int:
        """Force a child's tail to disk (fsync'd); returns its file count."""
        return self.transport.call(
            CLIENT_NODE, node_id, "backup", "sync_flush", None
        )

    def backup_recovery_chunks(
        self, node_id: int, failed_broker: int
    ) -> list[tuple[int, list[Chunk]]]:
        return self.transport.call(
            CLIENT_NODE, node_id, "backup", "recovery_chunks", failed_broker
        )

    def backup_load_disk(self, node_id: int, *, parallel: int = 4) -> dict:
        return self.transport.call(
            CLIENT_NODE, node_id, "backup", "load_disk", None
        )

    def backup_loaded_brokers(self, node_id: int) -> list[int]:
        return self.transport.call(
            CLIENT_NODE, node_id, "backup", "loaded_brokers", None
        )

    def backup_disk_recovery_chunks(
        self, node_id: int, failed_broker: int
    ) -> list[tuple[int, list[Chunk]]]:
        return self.transport.call(
            CLIENT_NODE, node_id, "backup", "disk_recovery_chunks", failed_broker
        )

    def backup_retire_epochs(self, node_id: int) -> None:
        self.transport.call(CLIENT_NODE, node_id, "backup", "retire_epochs", None)

    def backup_drop_broker(self, node_id: int, failed_broker: int) -> int:
        return self.transport.call(
            CLIENT_NODE, node_id, "backup", "drop_broker", failed_broker
        )
