"""Process-parallel KerA cluster: backups in worker processes.

:class:`ProcessKeraCluster` is the threaded cluster with its backup
services re-homed into child processes behind
:class:`repro.runtime.process.ProcessTransport`: every node's broker
service stays on in-process worker threads, while its backup/replica
service runs in a worker process fed by a shared-memory request ring.
Replication frames are written straight from the broker's segment views
into the ring (the single boundary copy) and re-validated — CRC work on
another core — by the child before landing in its store. The pipelined
shipper throttles on the ring's free bytes via ``Transport.credit``.

The division of state is strict: the *child* owns the node's
:class:`~repro.kera.backup.KeraBackupCore` outright (the parent's
``system.backup_cores`` entries exist but see no traffic in this mode).
Backup-side accounting crosses back only through the ``stats`` RPC —
see :meth:`ProcessKeraCluster.backup_stats`.

Failure injection: :meth:`crash_broker` works — repair batches ship over
the rings like any other replicate RPC. Recovery *reads* (serving a
crashed broker's chunks back from backup state) are not wired across the
process boundary; drive recovery scenarios on the inproc or threaded
clusters, which share the same sans-IO cores.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import ConfigError
from repro.common.units import MB
from repro.runtime.process import ProcessServiceSpec, ProcessTransport
from repro.runtime.transport import LiveService, Transport
from repro.kera.backup import KeraBackupCore
from repro.kera.config import KeraConfig
from repro.kera.live import CLIENT_NODE
from repro.kera.threaded import ThreadedKeraCluster, _ThreadedBrokerService


class ProcessBackupWorker(LiveService):
    """Runs in the child process: owns one node's backup core outright.

    Constructed by the transport *in the child* (the parent pickles only
    this class and the kwargs), so the core's segments, flush accounting,
    and disk files live entirely in the worker's address space.
    """

    def __init__(
        self,
        *,
        node_id: int,
        materialize: bool = True,
        flush_threshold: int = 1 << 20,
        disk_dir: str | None = None,
    ) -> None:
        self.core = KeraBackupCore(
            node_id=node_id,
            materialize=materialize,
            flush_threshold=flush_threshold,
            disk_dir=disk_dir,
        )
        self.flushes = 0

    def handle(self, method: str, request: Any) -> Any:
        if method == "replicate":
            response, flush = self.core.handle_replicate(request)
            if flush is not None:
                self.flushes += 1
                self.core.persist(flush)
            return response
        if method == "stats":
            store = self.core.store
            return {
                "chunks_received": store.chunks_received,
                "batches_received": store.batches_received,
                "bytes_held": store.bytes_held,
                "segment_count": store.segment_count,
                "flushes": self.flushes,
            }
        raise ConfigError(f"unknown backup method {method!r}")


class ProcessKeraCluster(ThreadedKeraCluster):
    """A KerA cluster whose replication plane runs on other cores."""

    def __init__(
        self,
        config: KeraConfig | None = None,
        *,
        produce_workers: int = 4,
        queue_depth: int = 128,
        call_timeout: float = 30.0,
        ack_timeout: float = 10.0,
        ring_bytes: int = 4 * MB,
        transport: Transport | None = None,
    ) -> None:
        self._ring_bytes = ring_bytes
        super().__init__(
            config,
            produce_workers=produce_workers,
            queue_depth=queue_depth,
            call_timeout=call_timeout,
            ack_timeout=ack_timeout,
            transport=transport
            or ProcessTransport(
                queue_depth=queue_depth,
                workers_per_service=produce_workers,
                call_timeout=call_timeout,
            ),
        )

    def _register_services(self) -> None:
        config = self.config
        for node in self.system.node_ids:
            self.transport.register(node, "broker", _ThreadedBrokerService(self, node))
            self.transport.register(
                node,
                "backup",
                ProcessServiceSpec(
                    factory=ProcessBackupWorker,
                    kwargs={
                        "node_id": node,
                        "materialize": config.storage.materialize,
                        "flush_threshold": config.flush_threshold,
                        "disk_dir": (
                            f"{config.disk_dir}/node{node}"
                            if config.disk_dir is not None
                            else None
                        ),
                    },
                    ring_bytes=self._ring_bytes,
                ),
            )

    def backup_stats(self, node_id: int) -> dict[str, int]:
        """Backup-side accounting, fetched from the worker process."""
        return self.transport.call(CLIENT_NODE, node_id, "backup", "stats", None)
