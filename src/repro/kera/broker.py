"""The KerA broker core: the produce and fetch paths, sans I/O.

Produce path (paper, Section IV-B, "Replicating chunks after broker
appends"): the broker identifies the stream object for each chunk's
stream identifier, computes the streamlet's active group from the
producer identifier and Q, appends the chunk to the group (which may
create a new segment and/or group), then appends a chunk reference to the
replicated virtual log associated with that streamlet. Once all chunks of
a request are appended, the affected virtual logs are synchronized on the
backups; the producer request is acknowledged only when every one of its
chunks is durably replicated.

Exactly-once: each chunk carries ``(producer_id, chunk_seq)`` scoped to
its streamlet; retransmitted chunks are detected and never re-appended,
and a request whose duplicate chunk is still awaiting replication is
acknowledged only when the original becomes durable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable

from repro.common.errors import ReplicationError
from repro.common.units import MB
from repro.replication.config import ReplicationConfig
from repro.replication.manager import ReplicationManager
from repro.replication.virtual_log import ReplicationBatch, VirtualLog
from repro.storage.config import StorageConfig
from repro.storage.fancache import FanoutCache
from repro.storage.memory import SegmentAllocator
from repro.storage.offsets import StreamletCursor
from repro.storage.segment import StoredChunk
from repro.storage.stream import Stream, StreamRegistry
from repro.wire.chunk import Chunk
from repro.wire.views import ChunkView
from repro.kera.messages import (
    ChunkAssignment,
    FetchEntry,
    FetchPosition,
    FetchRequest,
    FetchResponse,
    ProduceRequest,
    ProduceResponse,
)

RequestDoneCallback = Callable[[int], None]


@dataclass
class ProduceOutcome:
    """What a produce request did, and whether its ack must wait."""

    request_id: int
    response: ProduceResponse
    #: Chunks newly appended by this request (excludes duplicates).
    new_chunks: list[StoredChunk] = field(default_factory=list)
    #: Number of records newly appended.
    new_records: int = 0
    #: Payload bytes newly appended.
    new_bytes: int = 0
    #: True when the ack must wait for replication (driver parks).
    pending: bool = False
    duplicates: int = 0


class KeraBrokerCore:
    """Sans-IO broker state machine for one node."""

    def __init__(
        self,
        *,
        broker_id: int,
        nodes: list[int],
        storage_config: StorageConfig,
        replication_config: ReplicationConfig,
        on_request_complete: RequestDoneCallback | None = None,
        zero_copy_fetch: bool = False,
        fanout_cache_bytes: int = 64 * MB,
    ) -> None:
        self.broker_id = broker_id
        self.storage_config = storage_config
        self.replication_config = replication_config
        self.allocator = SegmentAllocator(storage_config)
        self.registry = StreamRegistry()
        self.manager = ReplicationManager(
            broker_id=broker_id,
            nodes=nodes,
            config=replication_config,
            on_durable=self._on_chunk_durable,
        )
        self.on_request_complete = on_request_complete
        #: When set, fetch responses carry StoredChunk references instead
        #: of re-encoded wire chunks — the zero-copy read path the paper's
        #: shared client/broker binary format enables. The simulation
        #: driver uses it; serialization-boundary drivers must re-encode.
        self.zero_copy_fetch = zero_copy_fetch
        #: Shared hot-chunk cache for the view-serving fetch path: N
        #: consumer groups fanning out over one stream validate and
        #: decode each hot chunk once, keyed by (vlog, vseg, chunk).
        self.fancache = FanoutCache(fanout_cache_bytes)
        # Exactly-once state.
        self._last_durable_seq: dict[tuple[int, int, int], int] = {}
        self._inflight: dict[tuple[int, int, int, int], StoredChunk] = {}
        # Ack bookkeeping: stable chunk identity (stream, streamlet,
        # producer, chunk_seq) -> waiting request ids. Keyed by identity,
        # not id(stored): durability events may fire on another thread.
        self._chunk_waiters: dict[tuple[int, int, int, int], list[int]] = {}
        self._request_remaining: dict[int, int] = {}
        # One lock serializes all structural mutation; reentrant because
        # R=1 appends fire the durability callback inside handle_produce
        # and batch completion fires it inside complete_batch. The lock
        # keeps each produce request atomic (dup-check + append +
        # replication registration + waiter registration), which is what
        # guarantees vlog reference order matches segment append order
        # and that a request's waiters are registered before any of its
        # durability events can be observed.
        self._mutex = threading.RLock()
        # Stats.
        self.records_ingested = 0
        self.chunks_ingested = 0
        self.bytes_ingested = 0
        self.duplicates_dropped = 0

    # -- stream management ---------------------------------------------------

    def create_stream(self, stream_id: int, streamlet_ids: Iterable[int]) -> Stream:
        """Register the streamlets this broker leads for ``stream_id``."""
        with self._mutex:
            stream = Stream(
                stream_id=stream_id,
                streamlet_ids=streamlet_ids,
                config=self.storage_config,
                allocator=self.allocator,
            )
            self.registry.add(stream)
            return stream

    def ensure_streamlet(self, stream_id: int, streamlet_id: int) -> None:
        """Register a streamlet this broker is taking over (recovery /
        migration), idempotently and race-free against live produces."""
        with self._mutex:
            if stream_id in self.registry:
                stream = self.registry.get(stream_id)
                if streamlet_id not in stream.streamlet_ids:
                    stream.add_streamlet(streamlet_id)
            else:
                self.create_stream(stream_id, [streamlet_id])

    # -- produce path ------------------------------------------------------------

    def handle_produce(self, request: ProduceRequest) -> ProduceOutcome:
        with self._mutex:
            return self._handle_produce(request)

    def _handle_produce(self, request: ProduceRequest) -> ProduceOutcome:
        outcome = ProduceOutcome(
            request_id=request.request_id,
            response=ProduceResponse(request_id=request.request_id, assignments=[]),
        )
        wait_chunks: list[StoredChunk] = []
        for chunk in request.chunks:
            key3 = (chunk.stream_id, chunk.streamlet_id, chunk.producer_id)
            key4 = key3 + (chunk.chunk_seq,)
            last = self._last_durable_seq.get(key3, -1)
            if chunk.chunk_seq <= last:
                # Durable duplicate: already acknowledged territory.
                outcome.duplicates += 1
                self.duplicates_dropped += 1
                outcome.response.assignments.append(
                    ChunkAssignment(
                        stream_id=chunk.stream_id,
                        streamlet_id=chunk.streamlet_id,
                        group_id=0,
                        segment_id=0,
                        offset=0,
                        duplicate=True,
                    )
                )
                continue
            pending_dup = self._inflight.get(key4)
            if pending_dup is not None:
                # Duplicate of a chunk still awaiting replication: the ack
                # must wait for the original.
                outcome.duplicates += 1
                self.duplicates_dropped += 1
                wait_chunks.append(pending_dup)
                outcome.response.assignments.append(
                    ChunkAssignment(
                        stream_id=pending_dup.stream_id,
                        streamlet_id=pending_dup.streamlet_id,
                        group_id=pending_dup.group_id,
                        segment_id=pending_dup.segment_id,
                        offset=pending_dup.offset,
                        duplicate=True,
                    )
                )
                continue
            stream = self.registry.get(chunk.stream_id)
            streamlet = stream.streamlet(chunk.streamlet_id)
            stored = streamlet.append(chunk)
            entry = streamlet.entry_for_producer(chunk.producer_id)
            self._inflight[key4] = stored
            self.manager.replicate(stored, entry)
            outcome.new_chunks.append(stored)
            outcome.new_records += stored.record_count
            outcome.new_bytes += stored.payload_len
            self.records_ingested += stored.record_count
            self.chunks_ingested += 1
            self.bytes_ingested += stored.payload_len
            if not stored.is_durable:
                wait_chunks.append(stored)
            outcome.response.assignments.append(
                ChunkAssignment(
                    stream_id=stored.stream_id,
                    streamlet_id=stored.streamlet_id,
                    group_id=stored.group_id,
                    segment_id=stored.segment_id,
                    offset=stored.offset,
                )
            )
        if wait_chunks:
            outcome.pending = True
            self._request_remaining[request.request_id] = len(wait_chunks)
            for stored in wait_chunks:
                key4 = (
                    stored.stream_id,
                    stored.streamlet_id,
                    stored.producer_id,
                    stored.chunk_seq,
                )
                self._chunk_waiters.setdefault(key4, []).append(request.request_id)
        return outcome

    def _on_chunk_durable(self, stored: StoredChunk) -> None:
        with self._mutex:
            key3 = (stored.stream_id, stored.streamlet_id, stored.producer_id)
            last = self._last_durable_seq.get(key3, -1)
            if stored.chunk_seq > last:
                self._last_durable_seq[key3] = stored.chunk_seq
            key4 = key3 + (stored.chunk_seq,)
            self._inflight.pop(key4, None)
            completed: list[int] = []
            for request_id in self._chunk_waiters.pop(key4, ()):
                remaining = self._request_remaining.get(request_id)
                if remaining is None:
                    raise ReplicationError(
                        f"durability event for untracked request {request_id}"
                    )
                remaining -= 1
                if remaining == 0:
                    del self._request_remaining[request_id]
                    completed.append(request_id)
                else:
                    self._request_remaining[request_id] = remaining
        if self.on_request_complete is not None:
            for request_id in completed:
                self.on_request_complete(request_id)

    # -- replication driver interface -----------------------------------------------

    def collect_batches(self) -> list[ReplicationBatch]:
        """Ready-to-ship batches from virtual logs touched since last call."""
        with self._mutex:
            return self.manager.collect_batches()

    def vlog_for_batch(self, batch: ReplicationBatch) -> VirtualLog:
        vlog = self.manager.vlog(batch.vlog_id)
        if vlog is None:
            raise ReplicationError(f"unknown virtual log {batch.vlog_id}")
        return vlog

    def complete_batch(self, batch: ReplicationBatch) -> list[StoredChunk]:
        with self._mutex:
            return self.manager.complete_batch(batch)

    def abort_batch(self, batch: ReplicationBatch) -> None:
        """Un-issue a collected batch so its chunks re-ship later."""
        with self._mutex:
            self.manager.abort_batch(batch)

    def unshipped_chunks(self) -> int:
        """References not yet placed in any batch (the shipper's linger
        decision reads this to size its consolidation window)."""
        with self._mutex:
            return self.manager.unshipped_chunks()

    # -- fetch path ----------------------------------------------------------------

    def handle_fetch(self, request: FetchRequest) -> FetchResponse:
        """Serve durably-replicated chunks from the requested positions.

        Cursor resolution (including ``seek_record`` repositioning through
        the offset index) happens under the broker mutex; the per-chunk
        serving work — cache admission with its boundary CRC and record
        decode, or legacy re-encode — happens *outside* it, against
        immutable durable bytes, so concurrent consumer groups don't
        serialize on the produce path's lock.
        """
        with self._mutex:
            plans = self._plan_fetch(request)
        entries: list[FetchEntry] = []
        for pos, stored_chunks, next_position in plans:
            chunks: list[Chunk] | list[ChunkView]
            if request.serve_views:
                vlog = (pos.stream_id, pos.streamlet_id, pos.entry)
                chunks = [self._serve_view(vlog, s) for s in stored_chunks]
            elif self.zero_copy_fetch:
                chunks = stored_chunks  # type: ignore[assignment]
            else:
                chunks = [s.to_wire_chunk() for s in stored_chunks]
            entries.append(
                FetchEntry(position=pos, chunks=chunks, next_position=next_position)
            )
        return FetchResponse(request_id=request.request_id, entries=entries)

    def _plan_fetch(
        self, request: FetchRequest
    ) -> list[tuple[FetchPosition, list[StoredChunk], FetchPosition]]:
        """Resolve each position to its durable chunk run (mutex held)."""
        plans: list[tuple[FetchPosition, list[StoredChunk], FetchPosition]] = []
        for pos in request.positions:
            stream = self.registry.get(pos.stream_id)
            streamlet = stream.streamlet(pos.streamlet_id)
            cursor = StreamletCursor(
                streamlet=streamlet,
                entry=pos.entry,
                group_pos=pos.group_pos,
                chunk_pos=pos.chunk_pos,
            )
            if pos.seek_record is not None:
                cursor.seek_record(pos.seek_record)
            stored_chunks = cursor.next_chunks(request.max_chunks_per_entry)
            # next_position never carries seek_record: the seek is one-shot
            # and the resolved cursor coordinates replace it.
            plans.append(
                (
                    pos,
                    stored_chunks,
                    FetchPosition(
                        stream_id=pos.stream_id,
                        streamlet_id=pos.streamlet_id,
                        entry=pos.entry,
                        group_pos=cursor.group_pos,
                        chunk_pos=cursor.chunk_pos,
                    ),
                )
            )
        return plans

    def _serve_view(self, vlog: tuple[int, int, int], stored: StoredChunk) -> ChunkView:
        """Decode-ready view of a stored chunk via the fan-out cache.

        The cache key's chunk component is the chunk's base record offset
        within its group — unique and stable in append order, and O(1) to
        derive from the stored-chunk reference. A miss admits the frame
        once: CRC re-validation at the serving boundary (the established
        discipline for bytes crossing out of the storage engine) plus one
        record pre-decode shared by every later consumer.
        """
        key = (vlog, stored.group_id, stored.base_record_offset)
        return self.fancache.get(key, stored.encoded_view)

    def retire_before(
        self, stream_id: int, streamlet_id: int, entry: int, record_offset: int
    ) -> int:
        """Retire the fully-durable group prefix of an entry below
        ``record_offset`` and drop its fan-out cache entries; return the
        number of groups retired. Consumers positioned below the new
        retention floor get :class:`OffsetOutOfRangeError` on their next
        fetch instead of stale (freed) frames."""
        with self._mutex:
            streamlet = self.registry.get(stream_id).streamlet(streamlet_id)
            retired = streamlet.retire_before(entry, record_offset)
        vlog = (stream_id, streamlet_id, entry)
        for group in retired:
            self.fancache.invalidate_group(vlog, group.group_id)
        return len(retired)

    # -- failure handling ----------------------------------------------------------

    def handle_backup_failure(self, failed_node: int) -> list[ReplicationBatch]:
        with self._mutex:
            return self.manager.handle_backup_failure(failed_node)

    # -- introspection ----------------------------------------------------------------

    def pending_requests(self) -> int:
        with self._mutex:
            return len(self._request_remaining)

    def pending_chunks(self) -> int:
        return self.manager.pending_chunks()
