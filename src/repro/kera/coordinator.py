"""The coordinator: cluster metadata and recovery orchestration.

``The coordinator manages storage nodes on which live broker and backup
processes`` (paper, Figure 1). It owns the stream catalog — which broker
leads which streamlet — hands clients their routing tables, and plans
crash recovery: the failed broker's streamlets are spread over the
survivors, which then re-ingest the lost data from the backups.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError, RecoveryError, StorageError


@dataclass
class StreamMetadata:
    """Catalog entry for one stream."""

    stream_id: int
    #: streamlet id -> leading broker node.
    leaders: dict[int, int] = field(default_factory=dict)

    @property
    def streamlet_ids(self) -> list[int]:
        return sorted(self.leaders)

    def streamlets_on(self, broker: int) -> list[int]:
        return sorted(sid for sid, b in self.leaders.items() if b == broker)


@dataclass
class RecoveryPlan:
    """Reassignment of a crashed broker's streamlets to survivors."""

    failed_broker: int
    #: (stream_id, streamlet_id) -> new leading broker.
    reassignments: dict[tuple[int, int], int]
    survivors: list[int]


class Coordinator:
    """Cluster catalog. Pure metadata — no time, no transport."""

    def __init__(self, broker_ids: list[int]) -> None:
        if not broker_ids:
            raise ConfigError("cluster needs at least one broker")
        self.broker_ids = sorted(broker_ids)
        self._streams: dict[int, StreamMetadata] = {}
        self._failed: set[int] = set()

    # -- catalog ------------------------------------------------------------

    @property
    def live_brokers(self) -> list[int]:
        return [b for b in self.broker_ids if b not in self._failed]

    def create_stream(self, stream_id: int, num_streamlets: int) -> StreamMetadata:
        """Create a stream of M streamlets, spread round-robin over the
        live brokers (M >= number of brokers gives every broker work; the
        paper also supports M below that for tiny streams)."""
        if stream_id in self._streams:
            raise StorageError(f"stream {stream_id} already exists")
        if num_streamlets < 1:
            raise ConfigError("a stream needs at least one streamlet")
        live = self.live_brokers
        meta = StreamMetadata(stream_id=stream_id)
        for sid in range(num_streamlets):
            # Offset by stream id so single-streamlet streams spread out.
            meta.leaders[sid] = live[(stream_id + sid) % len(live)]
        self._streams[stream_id] = meta
        return meta

    def stream(self, stream_id: int) -> StreamMetadata:
        try:
            return self._streams[stream_id]
        except KeyError:
            raise StorageError(f"unknown stream {stream_id}") from None

    @property
    def streams(self) -> list[StreamMetadata]:
        return [self._streams[k] for k in sorted(self._streams)]

    def partitions_on(self, broker: int) -> list[tuple[int, int]]:
        """All (stream, streamlet) pairs a broker leads."""
        out = []
        for meta in self.streams:
            for sid in meta.streamlets_on(broker):
                out.append((meta.stream_id, sid))
        return out

    # -- failure handling -------------------------------------------------------

    def plan_recovery(
        self, failed_broker: int, *, defer_routing: bool = False
    ) -> RecoveryPlan:
        """Mark a broker failed and reassign its streamlets round-robin
        over the survivors — ``each virtual log can be recovered in
        parallel over many brokers that become the primary leader of the
        partitions associated to recovered virtual logs``.

        With ``defer_routing`` the catalog keeps pointing at the failed
        (fenced) broker until :meth:`commit_recovery` runs. Live failover
        needs the gap: re-routing a producer's retries to the new leader
        *before* replay finishes would let a retried chunk_seq land ahead
        of the replayed acked prefix, and the broker's exactly-once dedup
        would then drop the replay as a stale duplicate — acked-record
        loss. Clients retrying against the fenced broker get a typed
        routing error until the commit.
        """
        if failed_broker not in self.broker_ids:
            raise RecoveryError(f"unknown broker {failed_broker}")
        if failed_broker in self._failed:
            raise RecoveryError(f"broker {failed_broker} already failed")
        self._failed.add(failed_broker)
        survivors = self.live_brokers
        if not survivors:
            raise RecoveryError("no survivors to recover onto")
        reassignments: dict[tuple[int, int], int] = {}
        i = 0
        for meta in self.streams:
            for sid in meta.streamlets_on(failed_broker):
                target = survivors[i % len(survivors)]
                reassignments[(meta.stream_id, sid)] = target
                if not defer_routing:
                    meta.leaders[sid] = target
                i += 1
        return RecoveryPlan(
            failed_broker=failed_broker,
            reassignments=reassignments,
            survivors=survivors,
        )

    def commit_recovery(self, plan: RecoveryPlan) -> None:
        """Apply a deferred plan's leader updates: replay finished, the
        new leaders own every re-ingested record, clients may re-route."""
        for (stream_id, sid), target in plan.reassignments.items():
            self.stream(stream_id).leaders[sid] = target
