"""Replication flow control: credit-based backpressure + adaptive batching.

Two small, independently-testable policies used by the pipelined shipper
(``repro.kera.shipper``):

* :class:`FlowController` — a byte-credit window over the replication
  plane. Each issued batch acquires credit for its payload; each ack (or
  failure) releases it. Producers therefore observe a bounded
  ``in_flight_bytes`` instead of blocking on one synchronous round-trip
  per batch — when the window is exhausted the *shipper* parks, appends
  keep accumulating, and the next batch consolidates them (the paper's
  group-commit effect, now self-clocked by credit instead of by a single
  outstanding RPC).
* :class:`AdaptiveBatcher` — a size- and linger-triggered consolidation
  window in the spirit of Kafka's ``batch.size``/``linger.ms``: the
  target batch size grows while batches arrive full (demand exceeds the
  window) and decays while they ship small; with less than the target
  accumulated the shipper may linger briefly to let appends consolidate.

Both are transport-agnostic: the shared-memory ring transport maps its
free ring bytes onto the same credit notion (``Transport.credit``).
"""

from __future__ import annotations

import threading

from repro.common.errors import ConfigError


class FlowController:
    """Bounded in-flight replication bytes (credit-based backpressure).

    ``window_bytes = 0`` disables the bound (every acquire succeeds).
    A single batch larger than the whole window is still admitted when
    nothing else is in flight — otherwise it could never ship.
    """

    def __init__(self, window_bytes: int = 0) -> None:
        if window_bytes < 0:
            raise ConfigError("flow window must be >= 0")
        self.window_bytes = window_bytes
        self._lock = threading.Lock()
        self._credit_free = threading.Condition(self._lock)
        self._in_flight_bytes = 0  # guarded-by: _lock

    @property
    def in_flight_bytes(self) -> int:
        with self._lock:
            return self._in_flight_bytes

    def credit(self) -> int:
        """Free window bytes (a large constant when unbounded)."""
        if self.window_bytes == 0:
            return 1 << 62
        with self._lock:
            return max(self.window_bytes - self._in_flight_bytes, 0)

    def _admissible(self, nbytes: int) -> bool:
        return (
            self.window_bytes == 0
            or self._in_flight_bytes + nbytes <= self.window_bytes
            or self._in_flight_bytes == 0
        )

    def try_acquire(self, nbytes: int) -> bool:
        with self._lock:
            if not self._admissible(nbytes):
                return False
            self._in_flight_bytes += nbytes
            return True

    def acquire(self, nbytes: int, timeout: float | None = None) -> bool:
        """Block until ``nbytes`` of credit is available (or timeout)."""
        # The condition shares self._lock, so holding the lock directly
        # keeps wait_for/notify legal while the guard stays explicit.
        with self._lock:
            if not self._credit_free.wait_for(
                lambda: self._admissible(nbytes), timeout=timeout
            ):
                return False
            self._in_flight_bytes += nbytes
            return True

    def release(self, nbytes: int) -> None:
        """An in-flight batch resolved (acked or failed): return credit."""
        with self._lock:
            self._in_flight_bytes = max(self._in_flight_bytes - nbytes, 0)
            self._credit_free.notify_all()


class AdaptiveBatcher:
    """Size/linger policy for the consolidation window.

    Pure decision logic (no threads, no clock reads — callers pass
    ``now``), so unit tests drive it deterministically.
    """

    def __init__(
        self,
        *,
        min_target_chunks: int = 1,
        max_target_chunks: int = 512,
        linger_s: float = 0.0,
    ) -> None:
        if min_target_chunks < 1 or max_target_chunks < min_target_chunks:
            raise ConfigError("batcher targets must satisfy 1 <= min <= max")
        if linger_s < 0:
            raise ConfigError("linger must be >= 0")
        self.min_target_chunks = min_target_chunks
        self.max_target_chunks = max_target_chunks
        self.linger_s = linger_s
        self.target_chunks = min_target_chunks
        self._last_ship = float("-inf")

    def linger_delay(self, pending_chunks: int, now: float) -> float:
        """Seconds the shipper should wait for more appends, or 0 to ship.

        Lingers only while there is *some* work but less than the current
        target, and only within ``linger_s`` of the previous ship — an
        idle log or a full batch always ships immediately.
        """
        if self.linger_s == 0 or pending_chunks == 0:
            return 0.0
        if pending_chunks >= self.target_chunks:
            return 0.0
        remaining = self._last_ship + self.linger_s - now
        return max(remaining, 0.0)

    def observe_ship(self, chunk_count: int, now: float) -> None:
        """Feedback from one shipped batch: batches arriving at or above
        target mean the window is limiting — grow it; batches shipping
        well under target mean demand fell — decay toward the floor."""
        self._last_ship = now
        if chunk_count >= self.target_chunks:
            self.target_chunks = min(self.target_chunks * 2, self.max_target_chunks)
        elif chunk_count * 2 < self.target_chunks:
            self.target_chunks = max(self.target_chunks // 2, self.min_target_chunks)

    def observe_backpressure(self) -> None:
        """The credit window refused a batch: consolidate harder (fewer,
        larger RPCs reduce per-RPC overhead while credit is scarce)."""
        self.target_chunks = min(self.target_chunks * 2, self.max_target_chunks)
