"""The broker's replication manager: virtual logs + routing + durability.

``Multiple streams' partitions are associated with multiple virtual logs``
(paper, Section III). The manager owns every virtual log of one broker,
routes each stored chunk to its log according to the policy, and fires a
durability callback once a chunk is replicated on all its backups — the
broker core uses that callback to acknowledge producer requests and make
data visible to consumers.

With replication factor 1 there are no backups: chunks are durable the
moment the broker holds them (the broker's copy is the only copy), so the
manager short-circuits.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.common.errors import ReplicationError
from repro.common.idgen import IdGenerator
from repro.replication.chunk_ref import ChunkRef
from repro.replication.config import ReplicationConfig
from repro.replication.policy import BackupSelector, ReplicationPolicy
from repro.replication.virtual_log import ReplicationBatch, VirtualLog
from repro.storage.segment import StoredChunk
from repro.wire.chunk import Chunk

DurabilityListener = Callable[[StoredChunk], None]


class ReplicationManager:
    """All virtual logs of one broker."""

    def __init__(
        self,
        *,
        broker_id: int,
        nodes: list[int],
        config: ReplicationConfig,
        on_durable: DurabilityListener | None = None,
    ) -> None:
        self.broker_id = broker_id
        self.nodes = list(nodes)
        self.config = config
        self.policy = ReplicationPolicy(config)
        self.on_durable = on_durable
        self._vlogs: dict[int, VirtualLog] = {}
        self._vseg_ids = IdGenerator()
        # Virtual logs with appends since the last batch collection.
        self._dirty: set[int] = set()

    # -- virtual log management ----------------------------------------------

    def _get_vlog(self, key: int) -> VirtualLog:
        vlog = self._vlogs.get(key)
        if vlog is None:
            selector = BackupSelector(
                primary=self.broker_id,
                nodes=self.nodes,
                copies=self.config.num_backup_copies,
            )
            # Stagger the rotation start so concurrent virtual logs spread
            # their backup sets instead of hammering the same node.
            for _ in range(key % max(len(self.nodes) - 1, 1)):
                selector.select()
            vlog = VirtualLog(
                vlog_id=key,
                config=self.config,
                selector=selector,
                vseg_ids=self._vseg_ids,
            )
            self._vlogs[key] = vlog
        return vlog

    @property
    def vlogs(self) -> list[VirtualLog]:
        return [self._vlogs[k] for k in sorted(self._vlogs)]

    @property
    def vlog_count(self) -> int:
        return len(self._vlogs)

    # -- write path ------------------------------------------------------------

    def replicate(self, stored: StoredChunk, entry: int) -> ChunkRef | None:
        """Register a freshly appended chunk for replication.

        Returns the chunk reference, or ``None`` when R = 1 (the chunk is
        then already durable and the listener has fired).
        """
        if self.config.num_backup_copies == 0:
            stored.segment.mark_chunk_durable(stored)
            if self.on_durable is not None:
                self.on_durable(stored)
            return None
        key = self.policy.vlog_key(stored.stream_id, stored.streamlet_id, entry)
        self._dirty.add(key)
        return self._get_vlog(key).append(stored)

    # -- batching (driver interface) ---------------------------------------------

    def vlog(self, key: int) -> VirtualLog | None:
        """Look up a virtual log by its policy key."""
        return self._vlogs.get(key)

    def collect_batches(self) -> list[ReplicationBatch]:
        """Batches ready to ship right now, from every dirty virtual log
        with in-flight credit. A log yields one batch per free pipeline
        slot (``pipeline_depth`` 1 keeps the classic one-at-a-time group
        commit); logs that still hold unshipped work stay dirty for the
        next collection."""
        batches = []
        still_dirty: set[int] = set()
        for key in sorted(self._dirty):
            vlog = self._vlogs.get(key)
            if vlog is None:
                continue
            while True:
                batch = vlog.next_batch()
                if batch is None:
                    break
                batches.append(batch)
            if vlog.has_unshipped():
                still_dirty.add(key)
        self._dirty = still_dirty
        return batches

    def unshipped_chunks(self) -> int:
        """References not yet placed in any batch, across dirty logs."""
        return sum(
            vlog.unshipped_chunks()
            for key in self._dirty
            if (vlog := self._vlogs.get(key)) is not None
        )

    def complete_batch(self, batch: ReplicationBatch) -> list[StoredChunk]:
        """All backups acked: advance watermarks, fire durability events."""
        vlog = self._vlogs.get(batch.vlog_id)
        if vlog is None:
            raise ReplicationError(f"ack for unknown virtual log {batch.vlog_id}")
        durable = vlog.complete_batch(batch)
        if vlog.has_unshipped():
            # Work accumulated while the batch was in flight (or beyond a
            # batch cap): keep the log collectible.
            self._dirty.add(batch.vlog_id)
        if self.on_durable is not None:
            for stored in durable:
                self.on_durable(stored)
        return durable

    def abort_batch(self, batch: ReplicationBatch) -> None:
        vlog = self._vlogs.get(batch.vlog_id)
        if vlog is None:
            raise ReplicationError(f"abort for unknown virtual log {batch.vlog_id}")
        vlog.abort_batch(batch)
        if vlog.has_unshipped():
            self._dirty.add(batch.vlog_id)

    def handle_backup_failure(self, failed_node: int) -> list[ReplicationBatch]:
        """Repair every virtual segment replicated on the failed node."""
        if failed_node in self.nodes:
            self.nodes.remove(failed_node)
        repairs: list[ReplicationBatch] = []
        for vlog in self.vlogs:
            repairs.extend(vlog.handle_backup_failure(failed_node))
        return repairs

    # -- accounting -----------------------------------------------------------

    def pending_chunks(self) -> int:
        """Chunks appended but not yet durable."""
        return sum(
            len(vseg.refs) - vseg.durable_index
            for vlog in self._vlogs.values()
            for vseg in vlog.vsegs
        )

    def total_batches(self) -> int:
        return sum(v.batches_shipped for v in self._vlogs.values())

    def total_chunks_shipped(self) -> int:
        return sum(v.chunks_shipped for v in self._vlogs.values())


def wire_chunks(batch: ReplicationBatch) -> Iterator[Chunk]:
    """Re-materialize the wire form of a batch's chunks.

    In materialized mode this re-decodes the encoded bytes straight out of
    the physical segments (placement tags included — exactly what backups
    must store for recovery); in metadata-only mode it synthesizes
    meta-chunks with identical accounting.
    """
    for ref in batch.refs:
        yield ref.stored.to_wire_chunk()
