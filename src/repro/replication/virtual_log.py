"""The virtual log: ordered virtual segments, group-commit batching.

``Each virtual log is composed of a set of virtual segments to be
replicated, always a single open virtual segment (the replication of the
virtual log resembles RAMCloud's log implementation)`` (paper,
Section IV-B).

Batching discipline: by default a virtual log keeps **one replication RPC
in flight** at a time. While that RPC travels, new chunk references
accumulate; the next batch ships everything that accumulated (bounded by
the optional config caps). This self-clocking group commit is what
consolidates many partitions' small appends into large backup I/Os — and,
inversely, what makes *too many* virtual logs degenerate into per-chunk
RPCs (Figures 14-16's 40-50% drop).

With ``pipeline_depth > 1`` the log keeps several RPCs in flight
(pipelined shipping): batches are issued in cursor order and acks may
return in any order, but durability is *applied* strictly in issue order
— an ack for a later batch is buffered until every earlier batch has
acked, so ``mark_chunk_durable``'s in-append-order invariant holds
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ReplicationError, SegmentFullError
from repro.common.idgen import IdGenerator
from repro.replication.chunk_ref import ChunkRef, CHUNK_REF_WIRE_SIZE
from repro.replication.config import ReplicationConfig
from repro.replication.policy import BackupSelector
from repro.replication.virtual_segment import VirtualSegment
from repro.storage.segment import StoredChunk


@dataclass
class ReplicationBatch:
    """One replication RPC's worth of chunks, bound to one virtual segment
    (batches never span virtual segments — backup sets differ)."""

    batch_id: int
    vlog_id: int
    vseg: VirtualSegment
    refs: list[ChunkRef]
    #: True when this batch re-ships already-durable refs after a backup
    #: loss (repair traffic does not advance durability watermarks).
    repair: bool = False
    #: Overridden backup set for repair batches (the replacement node).
    repair_backups: tuple[int, ...] = field(default=())
    #: Per-virtual-log issue sequence, stamped by ``VirtualLog.next_batch``
    #: and used to apply pipelined acks in issue order. -1 on batches built
    #: outside the shipping cursor (repairs), which never advance it.
    issue_seq: int = field(default=-1, compare=False)

    @property
    def backups(self) -> tuple[int, ...]:
        return self.repair_backups if self.repair else self.vseg.backups

    @property
    def chunk_count(self) -> int:
        return len(self.refs)

    @property
    def payload_bytes(self) -> int:
        """Wire payload: the chunks plus per-chunk reference metadata."""
        return sum(r.length + CHUNK_REF_WIRE_SIZE for r in self.refs)


class VirtualLog:
    """One shared replicated virtual log of a broker."""

    __slots__ = (
        "vlog_id",
        "config",
        "selector",
        "vsegs",
        "_vseg_ids",
        "_batch_ids",
        "in_flight",
        "_inflight",
        "_acked",
        "_issue_seq",
        "_apply_seq",
        "_ship_vseg_index",
        "_ship_ref_index",
        "_stats_batches",
        "_stats_chunks",
        "_stats_bytes",
    )

    def __init__(
        self,
        *,
        vlog_id: int,
        config: ReplicationConfig,
        selector: BackupSelector,
        vseg_ids: IdGenerator | None = None,
    ) -> None:
        self.vlog_id = vlog_id
        self.config = config
        self.selector = selector
        self.vsegs: list[VirtualSegment] = []
        self._vseg_ids = vseg_ids or IdGenerator()
        self._batch_ids = IdGenerator()
        #: Whether any replication RPC for this vlog is currently in flight.
        self.in_flight = False
        # In-flight batches by batch id, in issue order (pipelining keeps
        # up to config.pipeline_depth of them).
        self._inflight: dict[int, ReplicationBatch] = {}
        # Acked batches waiting for earlier issues to ack (out-of-order
        # completions buffer), keyed by issue sequence.
        self._acked: dict[int, ReplicationBatch] = {}
        self._issue_seq = 0
        self._apply_seq = 0
        # Shipping cursor: next (vseg index, ref index) to put in a batch.
        self._ship_vseg_index = 0
        self._ship_ref_index = 0
        self._stats_batches = 0
        self._stats_chunks = 0
        self._stats_bytes = 0

    # -- append path -------------------------------------------------------

    @property
    def open_vseg(self) -> VirtualSegment | None:
        if self.vsegs and not self.vsegs[-1].sealed:
            return self.vsegs[-1]
        return None

    def _roll_vseg(self) -> VirtualSegment:
        if self.vsegs:
            self.vsegs[-1].seal()
        vseg = VirtualSegment(
            vlog_id=self.vlog_id,
            vseg_id=self._vseg_ids.next(),
            capacity=self.config.virtual_segment_size,
            backups=self.selector.select(),
        )
        self.vsegs.append(vseg)
        return vseg

    def append(self, stored: StoredChunk) -> ChunkRef:
        """Reference a freshly stored chunk; rolls the virtual segment
        (choosing a fresh backup set) when virtual space runs out."""
        vseg = self.open_vseg
        if vseg is None:
            vseg = self._roll_vseg()
        try:
            return vseg.append_ref(stored)
        except SegmentFullError:
            vseg = self._roll_vseg()
            return vseg.append_ref(stored)

    # -- batching -----------------------------------------------------------

    def has_unshipped(self) -> bool:
        if self._ship_vseg_index >= len(self.vsegs):
            return False
        if self._ship_vseg_index < len(self.vsegs) - 1:
            return True
        return self._ship_ref_index < len(self.vsegs[-1].refs)

    def unshipped_chunks(self) -> int:
        """References appended but not yet put in any batch (the adaptive
        batcher's size trigger reads this to decide ship-now vs linger)."""
        total = 0
        for index in range(self._ship_vseg_index, len(self.vsegs)):
            total += len(self.vsegs[index].refs)
            if index == self._ship_vseg_index:
                total -= self._ship_ref_index
        return total

    def next_batch(self) -> ReplicationBatch | None:
        """Build the next batch if in-flight credit and work exist.

        Ships strictly in order; a batch covers references from a single
        virtual segment. The caller must invoke :meth:`complete_batch`
        (or :meth:`abort_batch`) exactly once per returned batch. With
        ``pipeline_depth`` 1 (default) at most one batch is out at a time;
        deeper pipelines issue more before the first ack returns.
        """
        depth = self.config.pipeline_depth
        if depth <= 1:
            if self.in_flight or not self.has_unshipped():
                return None
        elif len(self._inflight) >= depth or not self.has_unshipped():
            return None
        # Skip fully-shipped vsegs (all refs shipped, cursor at end).
        while (
            self._ship_vseg_index < len(self.vsegs) - 1
            and self._ship_ref_index >= len(self.vsegs[self._ship_vseg_index].refs)
        ):
            self._ship_vseg_index += 1
            self._ship_ref_index = 0
        vseg = self.vsegs[self._ship_vseg_index]
        refs = vseg.refs[self._ship_ref_index :]
        if not refs:
            return None
        if self.config.max_batch_chunks:
            refs = refs[: self.config.max_batch_chunks]
        if self.config.max_batch_bytes:
            capped: list[ChunkRef] = []
            total = 0
            for ref in refs:
                if capped and total + ref.length > self.config.max_batch_bytes:
                    break
                capped.append(ref)
                total += ref.length
            refs = capped
        batch = ReplicationBatch(
            batch_id=self._batch_ids.next(),
            vlog_id=self.vlog_id,
            vseg=vseg,
            refs=list(refs),
            issue_seq=self._issue_seq,
        )
        self._issue_seq += 1
        self._inflight[batch.batch_id] = batch
        self._ship_ref_index += len(refs)
        self.in_flight = True
        self._stats_batches += 1
        self._stats_chunks += len(refs)
        self._stats_bytes += batch.payload_bytes
        return batch

    def complete_batch(self, batch: ReplicationBatch) -> list[StoredChunk]:
        """All backups acked ``batch``: advance durability watermarks.

        Returns the stored chunks that became durable, in order. Also
        advances the *physical* segments' durable heads — ``after a chunk
        is replicated, the runtime updates the durable head of the
        physical segment so that consumers can pull records up to it``.

        Pipelined acks may arrive in any order among in-flight batches;
        completions are buffered and *applied* strictly in issue order, so
        an early ack for a later batch returns ``[]`` and its chunks
        surface once every earlier batch has acked.
        """
        if batch.issue_seq < 0:
            # A batch built outside the shipping cursor (repair traffic,
            # hand-assembled tests): the strict one-in-flight discipline.
            if not self.in_flight:
                raise ReplicationError("complete_batch without a batch in flight")
            self.in_flight = False
            if batch.repair:
                return []
            return self._apply_completion(batch)
        if self._inflight.pop(batch.batch_id, None) is None:
            raise ReplicationError("complete_batch without a batch in flight")
        self.in_flight = bool(self._inflight)
        self._acked[batch.issue_seq] = batch
        done: list[StoredChunk] = []
        while self._apply_seq in self._acked:
            done.extend(self._apply_completion(self._acked.pop(self._apply_seq)))
            self._apply_seq += 1
        return done

    def _apply_completion(self, batch: ReplicationBatch) -> list[StoredChunk]:
        """Advance watermarks for one fully-acked batch (in issue order)."""
        if batch.refs and batch.refs[0].ref_index != batch.vseg.durable_index:
            raise ReplicationError(
                f"batch acked out of order: starts at ref {batch.refs[0].ref_index}, "
                f"durable index is {batch.vseg.durable_index}"
            )
        done = batch.vseg.mark_replicated(len(batch.refs))
        stored_chunks = []
        for ref in done:
            ref.stored.segment.mark_chunk_durable(ref.stored)
            stored_chunks.append(ref.stored)
        return stored_chunks

    def abort_batch(self, batch: ReplicationBatch) -> None:
        """A backup failed mid-flight: rewind the cursor so the batch's
        references are re-shipped (to the repaired backup set).

        Under pipelining, aborting a batch also drops every in-flight or
        ack-buffered batch issued after it — their references sit at or
        beyond the rewound cursor and will be re-issued. (None of them can
        have applied: application is strictly in issue order.)
        """
        if batch.issue_seq < 0:
            if not self.in_flight:
                raise ReplicationError("abort_batch without a batch in flight")
            self.in_flight = False
            if batch.repair:
                return
            vseg_index = self.vsegs.index(batch.vseg)
            self._ship_vseg_index = vseg_index
            self._ship_ref_index = batch.refs[0].ref_index if batch.refs else 0
            return
        if batch.batch_id not in self._inflight:
            raise ReplicationError("abort_batch without a batch in flight")
        for later in [
            b for b in self._inflight.values() if b.issue_seq >= batch.issue_seq
        ]:
            del self._inflight[later.batch_id]
        for seq in [s for s in self._acked if s >= batch.issue_seq]:
            del self._acked[seq]
        self._issue_seq = batch.issue_seq
        self.in_flight = bool(self._inflight)
        # Rewind to the start of the aborted batch.
        vseg_index = self.vsegs.index(batch.vseg)
        self._ship_vseg_index = vseg_index
        self._ship_ref_index = batch.refs[0].ref_index if batch.refs else 0

    # -- failure handling ------------------------------------------------------

    def handle_backup_failure(self, failed_node: int) -> list[ReplicationBatch]:
        """Swap the failed backup out of every affected virtual segment and
        emit repair batches re-shipping the already-durable prefix to the
        replacement node. Durability watermarks are untouched — the data
        still exists on the broker and the surviving backups; repair
        restores the copy count."""
        self.selector.remove_candidate(failed_node)
        repairs: list[ReplicationBatch] = []
        for vseg in self.vsegs:
            if failed_node not in vseg.backups:
                continue
            new_backups = self.selector.replace(vseg.backups, failed_node)
            replacement = tuple(set(new_backups) - set(vseg.backups))
            vseg.backups = new_backups
            durable_prefix = vseg.refs[: vseg.durable_index]
            if durable_prefix:
                repairs.append(
                    ReplicationBatch(
                        batch_id=self._batch_ids.next(),
                        vlog_id=self.vlog_id,
                        vseg=vseg,
                        refs=list(durable_prefix),
                        repair=True,
                        repair_backups=replacement,
                    )
                )
        return repairs

    # -- stats -----------------------------------------------------------------

    @property
    def batches_shipped(self) -> int:
        return self._stats_batches

    @property
    def chunks_shipped(self) -> int:
        return self._stats_chunks

    @property
    def bytes_shipped(self) -> int:
        return self._stats_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VirtualLog(id={self.vlog_id}, vsegs={len(self.vsegs)}, "
            f"in_flight={self.in_flight}, shipped={self._stats_chunks} chunks)"
        )
