"""The backup service's sans-IO core.

``The virtual segment's chunks are replicated into a corresponding backup
in-memory segment. The backup asynchronously writes the segment on
storage to ensure durability. The backup's segments contain chunks from
possibly various groups of different streamlets of multiple streams``
(paper, Section IV-B).

The store keeps one replicated segment per (source broker, virtual log,
virtual segment); payload checksums are validated where bytes cross an
address-space boundary — frames that arrived over a copying transport
are batch-checked with the vectorized :func:`crc32c_many` engine, while
in-process views of already-validated broker memory (``verified=True``)
skip the re-hash, so the CRC is paid exactly once per hop. Flush work is
queued for the driver's asynchronous disk writer; and at recovery time
the store hands back every chunk (with its ``[group, segment]``
placement tags) for re-ingestion by the new brokers.
"""

from __future__ import annotations

import struct
from collections.abc import Iterator
from typing import Protocol

from repro.common.checksum import crc32c, crc32c_many
from repro.common.errors import ChecksumError, ReplicationError
from repro.wire.buffers import AppendBuffer
from repro.wire.chunk import (
    Chunk,
    CHUNK_HEADER_SIZE,
    CHUNK_MAGIC,
    decode_chunk,
    encode_chunk,
)

#: magic(u16) fmt(u8) flags(u8) — the header prefix checked on frame arrival.
_FRAME_PREFIX = struct.Struct("<HBB")
#: payload_len(u32) payload_crc(u32) at header offset 32.
_FRAME_TRAILER = struct.Struct("<II")
_FRAME_TRAILER_OFFSET = 32


def _checked_frame(frame: bytes | memoryview) -> tuple[memoryview, int]:
    """Structural validation of one encoded frame (magic, declared length);
    returns the frame view and its header-declared payload CRC."""
    view = memoryview(frame)
    if len(view) < CHUNK_HEADER_SIZE:
        raise ReplicationError(
            f"replicated frame of {len(view)} bytes is shorter than a header"
        )
    magic, _fmt, _flags = _FRAME_PREFIX.unpack_from(view, 0)
    if magic != CHUNK_MAGIC:
        raise ReplicationError(f"replicated frame has bad magic {magic:#06x}")
    payload_len, payload_crc = _FRAME_TRAILER.unpack_from(
        view, _FRAME_TRAILER_OFFSET
    )
    if len(view) != CHUNK_HEADER_SIZE + payload_len:
        raise ReplicationError(
            f"replicated frame is {len(view)} bytes; header declares "
            f"{CHUNK_HEADER_SIZE + payload_len}"
        )
    return view, payload_crc


class SpilledSegmentReader(Protocol):
    """What a spilled segment needs from its on-disk replacement.

    Satisfied structurally by :class:`repro.persist.SegmentFileReader`;
    declared here as a protocol so the replication layer stays
    importable from sim-reachable code without dragging in real file
    I/O (analysis rule A002).
    """

    @property
    def chunk_count(self) -> int: ...

    @property
    def frame_bytes(self) -> int: ...

    def chunks(self, *, verify: bool = True) -> list[Chunk]: ...


class ReplicatedSegment:
    """A backup's in-memory copy of one virtual segment's chunks.

    Chunks arrive either as already-encoded *frames* (materialized
    replication: the bytes are validated against the header CRC and
    appended verbatim — the backup never re-encodes) or as
    :class:`Chunk` objects (metadata fidelity and recovery migration).
    Frame entries are decoded lazily when :attr:`chunks` is read.

    A sealed, fully-flushed segment can :meth:`spill`: its in-memory
    buffer is released and reads transparently fall back to the on-disk
    :class:`SpilledSegmentReader` — the paper's memory/disk migration
    for cold virtual segments.
    """

    __slots__ = (
        "src_broker",
        "vlog_id",
        "vseg_id",
        "capacity",
        "materialize",
        "buffer",
        "flushed_bytes",
        "sealed",
        "_entries",
        "_spilled",
    )

    def __init__(
        self,
        src_broker: int,
        vlog_id: int,
        vseg_id: int,
        capacity: int,
        materialize: bool = True,
    ) -> None:
        self.src_broker = src_broker
        self.vlog_id = vlog_id
        self.vseg_id = vseg_id
        self.capacity = capacity
        self.materialize = materialize
        self.buffer = AppendBuffer(capacity, materialize=materialize)
        #: Bytes already written to secondary storage.
        self.flushed_bytes = 0
        self.sealed = False
        # Chunk objects, or (offset, length) spans of frames appended
        # verbatim to ``buffer``.
        self._entries: list[Chunk | tuple[int, int]] = []
        self._spilled: SpilledSegmentReader | None = None

    @property
    def spilled(self) -> bool:
        return self._spilled is not None

    @property
    def bytes_held(self) -> int:
        if self._spilled is not None:
            return self._spilled.frame_bytes
        return self.buffer.head

    @property
    def unflushed_bytes(self) -> int:
        if self._spilled is not None:
            return 0
        return self.buffer.head - self.flushed_bytes

    @property
    def chunks(self) -> list[Chunk]:
        """Every replicated chunk, in arrival order.

        Frame entries decode on demand (payloads were CRC-verified on
        arrival), so the replication hot path never materializes
        :class:`Chunk` objects it does not need. Spilled segments decode
        from disk instead — with CRC verification, because those bytes
        crossed an address-space boundary (the platter).
        """
        if self._spilled is not None:
            return self._spilled.chunks(verify=True)
        out = []
        for entry in self._entries:
            if isinstance(entry, Chunk):
                out.append(entry)
            else:
                offset, length = entry
                chunk, _ = decode_chunk(
                    self.buffer.view(offset, length), verify=False
                )
                out.append(chunk)
        return out

    @property
    def chunk_count(self) -> int:
        if self._spilled is not None:
            return self._spilled.chunk_count
        return len(self._entries)

    def spill(self, reader: SpilledSegmentReader) -> int:
        """Release the in-memory buffer; serve reads from ``reader``.

        Only a sealed segment whose bytes are all on disk may spill —
        anything less would make the disk copy lose acked data. Returns
        the bytes of buffer memory released.
        """
        if not self.sealed:
            raise ReplicationError("spill of an unsealed backup segment")
        if self.unflushed_bytes > 0:
            raise ReplicationError(
                f"spill with {self.unflushed_bytes} unflushed bytes would lose data"
            )
        if reader.frame_bytes != self.buffer.head:
            raise ReplicationError(
                f"spill reader holds {reader.frame_bytes} bytes; "
                f"segment holds {self.buffer.head}"
            )
        freed = self.buffer.head
        self._spilled = reader
        self.buffer = AppendBuffer(1, materialize=False)
        self._entries = []
        return freed

    def append(self, chunk: Chunk) -> None:
        if self._spilled is not None:
            raise ReplicationError("replication append on spilled backup segment")
        if chunk.payload is not None:
            chunk.verify_payload()
        if self.materialize:
            self.buffer.append(encode_chunk(chunk))
        else:
            self.buffer.reserve(chunk.size)
        self._entries.append(chunk)

    def append_frame(
        self, frame: bytes | memoryview, *, verified: bool = False
    ) -> None:
        """Append an already-encoded chunk frame verbatim.

        The frame's structure (magic, declared length) is always checked;
        its payload CRC is validated against the header unless the caller
        already proved it for these bytes (``verified=True`` — an
        in-process view of broker memory, or a frame the batch validator
        just checked). The bytes are then copied into the segment buffer
        untouched — placement stamps included.
        """
        if self._spilled is not None:
            raise ReplicationError("replication append on spilled backup segment")
        if not self.materialize:
            raise ReplicationError(
                "frame replication requires a materialized backup segment"
            )
        view, payload_crc = _checked_frame(frame)
        if not verified:
            actual = crc32c(view[CHUNK_HEADER_SIZE:])
            if actual != payload_crc:
                raise ChecksumError(payload_crc, actual, "replicated chunk frame")
        offset = self.buffer.append(view)
        self._entries.append((offset, len(view)))


class BackupStore:
    """All replicated segments held by one backup node.

    With ``seal_on_rollover`` (the durable tier's spill mode), creating
    a segment for a *newer* virtual segment of the same (source broker,
    virtual log) seals its predecessor — the broker has rolled over, no
    further appends can arrive for it — and records it so the driver can
    drain its tail to disk and spill the buffer. Repair traffic that
    back-fills an *older* virtual segment (recovery re-replication)
    never triggers a seal.
    """

    def __init__(
        self, node_id: int, *, materialize: bool = True, seal_on_rollover: bool = False
    ) -> None:
        self.node_id = node_id
        self.materialize = materialize
        self.seal_on_rollover = seal_on_rollover
        self._segments: dict[tuple[int, int, int], ReplicatedSegment] = {}
        self._latest: dict[tuple[int, int], ReplicatedSegment] = {}
        self._just_sealed: list[ReplicatedSegment] = []
        self._chunks_received = 0
        self._batches_received = 0

    # -- replication path ------------------------------------------------------

    def _writable_segment(
        self, src_broker: int, vlog_id: int, vseg_id: int, capacity: int
    ) -> ReplicatedSegment:
        key = (src_broker, vlog_id, vseg_id)
        segment = self._segments.get(key)
        if segment is None:
            segment = ReplicatedSegment(
                src_broker=src_broker,
                vlog_id=vlog_id,
                vseg_id=vseg_id,
                capacity=capacity,
                materialize=self.materialize,
            )
            self._segments[key] = segment
            if self.seal_on_rollover:
                vlog_key = (src_broker, vlog_id)
                latest = self._latest.get(vlog_key)
                if latest is None or vseg_id > latest.vseg_id:
                    if latest is not None and not latest.sealed:
                        latest.sealed = True
                        self._just_sealed.append(latest)
                    self._latest[vlog_key] = segment
        if segment.sealed:
            raise ReplicationError(
                f"replication append on sealed backup segment {key}"
            )
        return segment

    def take_just_sealed(self) -> list[ReplicatedSegment]:
        """Segments sealed by rollover since the last call (driver drains
        their unflushed tail and spills them)."""
        if not self._just_sealed:
            return []
        sealed, self._just_sealed = self._just_sealed, []
        return sealed

    def append_batch(
        self,
        *,
        src_broker: int,
        vlog_id: int,
        vseg_id: int,
        chunks: list[Chunk],
        segment_capacity: int,
    ) -> ReplicatedSegment:
        """Ingest one replication RPC's chunks; returns the segment so the
        driver can schedule an asynchronous flush."""
        segment = self._writable_segment(
            src_broker, vlog_id, vseg_id, segment_capacity
        )
        for chunk in chunks:
            segment.append(chunk)
        self._chunks_received += len(chunks)
        self._batches_received += 1
        return segment

    def append_frames(
        self,
        *,
        src_broker: int,
        vlog_id: int,
        vseg_id: int,
        frames: tuple[bytes | memoryview, ...] | list[bytes | memoryview],
        segment_capacity: int,
        verified: bool = False,
    ) -> ReplicatedSegment:
        """Ingest one replication RPC's already-encoded chunk frames.

        The zero-copy receive path. ``verified=False`` (bytes that crossed
        an address-space boundary) validates the whole batch in one
        vectorized :func:`crc32c_many` pass before any frame is appended;
        ``verified=True`` (in-process views of already-validated broker
        memory) appends verbatim after the structural checks only."""
        segment = self._writable_segment(
            src_broker, vlog_id, vseg_id, segment_capacity
        )
        if verified:
            for frame in frames:
                segment.append_frame(frame, verified=True)
        else:
            checked = [_checked_frame(frame) for frame in frames]
            actuals = crc32c_many(
                [view[CHUNK_HEADER_SIZE:] for view, _ in checked]
            )
            for (_, expected), actual in zip(checked, actuals):
                if actual != expected:
                    raise ChecksumError(expected, actual, "replicated chunk frame")
            for view, _ in checked:
                segment.append_frame(view, verified=True)
        self._chunks_received += len(frames)
        self._batches_received += 1
        return segment

    def seal(self, src_broker: int, vlog_id: int, vseg_id: int) -> None:
        key = (src_broker, vlog_id, vseg_id)
        if key in self._segments:
            self._segments[key].sealed = True

    # -- flush accounting ---------------------------------------------------------

    def take_flush_work(self, segment: ReplicatedSegment) -> int:
        """Mark the segment's unflushed bytes as being written; returns the
        byte count the disk writer should charge."""
        nbytes = segment.unflushed_bytes
        segment.flushed_bytes = segment.bytes_held
        return nbytes

    def total_unflushed(self) -> int:
        return sum(s.unflushed_bytes for s in self._segments.values())

    # -- recovery path ---------------------------------------------------------------

    def segments_for_broker(self, src_broker: int) -> list[ReplicatedSegment]:
        """The crashed broker's segments held here, in virtual-log order —
        ``backups read segments from disk and issue writes to the new
        brokers responsible for recovering a crashed broker's lost data``."""
        keys = sorted(k for k in self._segments if k[0] == src_broker)
        return [self._segments[k] for k in keys]

    def chunks_for_broker(self, src_broker: int) -> Iterator[Chunk]:
        for segment in self.segments_for_broker(src_broker):
            yield from segment.chunks

    def drop_broker(self, src_broker: int) -> int:
        """Discard a recovered broker's segments; returns bytes freed."""
        keys = [k for k in self._segments if k[0] == src_broker]
        freed = 0
        for key in keys:
            freed += self._segments.pop(key).bytes_held
        return freed

    # -- stats ---------------------------------------------------------------------------

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def chunks_received(self) -> int:
        return self._chunks_received

    @property
    def batches_received(self) -> int:
        return self._batches_received

    @property
    def bytes_held(self) -> int:
        return sum(s.bytes_held for s in self._segments.values())

    @property
    def spilled_segments(self) -> int:
        return sum(1 for s in self._segments.values() if s.spilled)

    @property
    def bytes_in_memory(self) -> int:
        """Bytes still held in RAM (spilled segments no longer count)."""
        return sum(s.bytes_held for s in self._segments.values() if not s.spilled)
