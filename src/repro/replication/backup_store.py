"""The backup service's sans-IO core.

``The virtual segment's chunks are replicated into a corresponding backup
in-memory segment. The backup asynchronously writes the segment on
storage to ensure durability. The backup's segments contain chunks from
possibly various groups of different streamlets of multiple streams``
(paper, Section IV-B).

The store keeps one replicated segment per (source broker, virtual log,
virtual segment); payload checksums are verified on arrival when bytes
are present; flush work is queued for the driver's asynchronous disk
writer; and at recovery time the store hands back every chunk (with its
``[group, segment]`` placement tags) for re-ingestion by the new brokers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator

from repro.common.errors import ReplicationError
from repro.wire.buffers import AppendBuffer
from repro.wire.chunk import Chunk, encode_chunk


@dataclass
class ReplicatedSegment:
    """A backup's in-memory copy of one virtual segment's chunks."""

    src_broker: int
    vlog_id: int
    vseg_id: int
    capacity: int
    materialize: bool = True
    buffer: AppendBuffer = field(init=False)
    chunks: list[Chunk] = field(default_factory=list)
    #: Bytes already written to secondary storage.
    flushed_bytes: int = 0
    sealed: bool = False

    def __post_init__(self) -> None:
        self.buffer = AppendBuffer(self.capacity, materialize=self.materialize)

    @property
    def bytes_held(self) -> int:
        return self.buffer.head

    @property
    def unflushed_bytes(self) -> int:
        return self.buffer.head - self.flushed_bytes

    def append(self, chunk: Chunk) -> None:
        if chunk.payload is not None:
            chunk.verify_payload()
        if self.materialize:
            self.buffer.append(encode_chunk(chunk))
        else:
            self.buffer.reserve(chunk.size)
        self.chunks.append(chunk)


class BackupStore:
    """All replicated segments held by one backup node."""

    def __init__(self, node_id: int, *, materialize: bool = True) -> None:
        self.node_id = node_id
        self.materialize = materialize
        self._segments: dict[tuple[int, int, int], ReplicatedSegment] = {}
        self._chunks_received = 0
        self._batches_received = 0

    # -- replication path ------------------------------------------------------

    def append_batch(
        self,
        *,
        src_broker: int,
        vlog_id: int,
        vseg_id: int,
        chunks: list[Chunk],
        segment_capacity: int,
    ) -> ReplicatedSegment:
        """Ingest one replication RPC's chunks; returns the segment so the
        driver can schedule an asynchronous flush."""
        key = (src_broker, vlog_id, vseg_id)
        segment = self._segments.get(key)
        if segment is None:
            segment = ReplicatedSegment(
                src_broker=src_broker,
                vlog_id=vlog_id,
                vseg_id=vseg_id,
                capacity=segment_capacity,
                materialize=self.materialize,
            )
            self._segments[key] = segment
        if segment.sealed:
            raise ReplicationError(
                f"replication append on sealed backup segment {key}"
            )
        for chunk in chunks:
            segment.append(chunk)
        self._chunks_received += len(chunks)
        self._batches_received += 1
        return segment

    def seal(self, src_broker: int, vlog_id: int, vseg_id: int) -> None:
        key = (src_broker, vlog_id, vseg_id)
        if key in self._segments:
            self._segments[key].sealed = True

    # -- flush accounting ---------------------------------------------------------

    def take_flush_work(self, segment: ReplicatedSegment) -> int:
        """Mark the segment's unflushed bytes as being written; returns the
        byte count the disk writer should charge."""
        nbytes = segment.unflushed_bytes
        segment.flushed_bytes = segment.bytes_held
        return nbytes

    def total_unflushed(self) -> int:
        return sum(s.unflushed_bytes for s in self._segments.values())

    # -- recovery path ---------------------------------------------------------------

    def segments_for_broker(self, src_broker: int) -> list[ReplicatedSegment]:
        """The crashed broker's segments held here, in virtual-log order —
        ``backups read segments from disk and issue writes to the new
        brokers responsible for recovering a crashed broker's lost data``."""
        keys = sorted(k for k in self._segments if k[0] == src_broker)
        return [self._segments[k] for k in keys]

    def chunks_for_broker(self, src_broker: int) -> Iterator[Chunk]:
        for segment in self.segments_for_broker(src_broker):
            yield from segment.chunks

    def drop_broker(self, src_broker: int) -> int:
        """Discard a recovered broker's segments; returns bytes freed."""
        keys = [k for k in self._segments if k[0] == src_broker]
        freed = 0
        for key in keys:
            freed += self._segments.pop(key).bytes_held
        return freed

    # -- stats ---------------------------------------------------------------------------

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def chunks_received(self) -> int:
        return self._chunks_received

    @property
    def batches_received(self) -> int:
        return self._batches_received

    @property
    def bytes_held(self) -> int:
        return sum(s.bytes_held for s in self._segments.values())
