"""Chunk references: what a virtual segment actually stores.

``the virtual segment (implemented as an append-only in-memory buffer)
holds the chunks' metadata it further uses to replicate the actual chunks
to backups`` (paper, Section III). A reference never copies record bytes
— replication reads them zero-copy out of the physical segment when the
batch is shipped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.segment import StoredChunk

#: Bytes of metadata a chunk reference occupies in a virtual segment
#: (physical segment pointer, offset, length, checksum, placement tags).
CHUNK_REF_WIRE_SIZE = 32


@dataclass(frozen=True)
class ChunkRef:
    """An ordered entry of a virtual segment pointing at a stored chunk."""

    #: Position of this reference within its virtual segment.
    ref_index: int
    #: Virtual offset: byte position within the virtual segment's space
    #: accounted from the accumulated chunk lengths.
    virtual_offset: int
    stored: StoredChunk

    @property
    def length(self) -> int:
        """Physical chunk length (header + payload) this reference covers."""
        return self.stored.length

    @property
    def virtual_end(self) -> int:
        return self.virtual_offset + self.length

    @property
    def payload_crc(self) -> int:
        return self.stored.payload_crc
