"""The virtual log: shared, replicated, log-structured (the contribution).

This package implements Section III/IV-B of the paper — the separation of
stream *partitioning* (ordering, handled by :mod:`repro.storage`) from
stream *replication* (durability, handled here):

* a :class:`~repro.replication.virtual_segment.VirtualSegment` is an
  append-only sequence of **chunk references** — ``the chunk metadata
  contains a reference to the physical segment and the chunk's offset into
  physical segment and length``. It keeps a header (next free virtual
  offset), a durable header (what has been replicated), and a checksum
  covering the referenced chunks' checksums;
* a :class:`~repro.replication.virtual_log.VirtualLog` is an ordered set
  of virtual segments with exactly one open to appends; when a new virtual
  segment opens, a fresh set of backups is chosen (scattering data for
  parallel recovery, after RAMCloud);
* a :class:`~repro.replication.manager.ReplicationManager` owns a broker's
  virtual logs and routes stored chunks to them according to the
  :class:`~repro.replication.policy.ReplicationPolicy` — the *replication
  capacity* knob the evaluation sweeps (1…32 virtual logs per broker,
  shared by all streams or dedicated per sub-partition);
* a :class:`~repro.replication.backup_store.BackupStore` is the backup
  service's sans-IO core: replicated in-memory segments, checksum
  verification, asynchronous flush accounting, recovery reads.

Consolidation is the point: one replication RPC carries the accumulated
chunks of *many* partitions that share a virtual log, ``replacing small
I/Os with larger ones on backups``.
"""

from repro.replication.config import ReplicationConfig, PolicyMode
from repro.replication.flow import FlowController, AdaptiveBatcher
from repro.replication.chunk_ref import ChunkRef
from repro.replication.virtual_segment import VirtualSegment
from repro.replication.virtual_log import VirtualLog, ReplicationBatch
from repro.replication.policy import ReplicationPolicy, BackupSelector
from repro.replication.manager import ReplicationManager, wire_chunks
from repro.replication.backup_store import BackupStore, ReplicatedSegment

__all__ = [
    "ReplicationConfig",
    "PolicyMode",
    "FlowController",
    "AdaptiveBatcher",
    "ChunkRef",
    "VirtualSegment",
    "VirtualLog",
    "ReplicationBatch",
    "ReplicationPolicy",
    "BackupSelector",
    "ReplicationManager",
    "wire_chunks",
    "BackupStore",
    "ReplicatedSegment",
]
