"""Replication configuration: factor, capacity, and sharing policy."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.units import MB


class PolicyMode(enum.Enum):
    """How streamlets are associated with virtual logs.

    * ``SHARED`` — the broker's virtual logs are shared by *all* streams;
      a streamlet maps to ``hash(stream, streamlet) % vlogs_per_broker``
      (the paper's latency-oriented configurations: "four virtual logs per
      broker shared by all streams").
    * ``PER_SUBPARTITION`` — one virtual log per (streamlet, active-group
      entry) pair (the throughput configurations: "one virtual log per
      sub-partition", 32 per broker in Figures 17-21).
    """

    SHARED = "shared"
    PER_SUBPARTITION = "per_subpartition"


@dataclass(frozen=True)
class ReplicationConfig:
    """Tunables for the virtual-log replication engine."""

    #: R: total copies including the broker's (paper: 1-3).
    replication_factor: int = 3
    #: Replication capacity: virtual logs per broker (SHARED mode).
    vlogs_per_broker: int = 4
    #: Virtual space per virtual segment.
    virtual_segment_size: int = 8 * MB
    #: Streamlet-to-virtual-log association mode.
    policy: PolicyMode = PolicyMode.SHARED
    #: Cap on chunks shipped per replication RPC (0 = unlimited): the
    #: group-commit batch is otherwise bounded only by what accumulated
    #: while the previous RPC was in flight.
    max_batch_chunks: int = 0
    #: Cap on payload bytes per replication RPC (0 = unlimited).
    max_batch_bytes: int = 0
    #: Replication RPCs one virtual log may keep in flight concurrently.
    #: 1 (default) is the paper's self-clocking group commit: the next
    #: batch waits for the previous ack. Higher values pipeline shipping —
    #: acks may return out of order; durability still applies strictly in
    #: issue order (see ``VirtualLog.complete_batch``).
    pipeline_depth: int = 1
    #: Credit window for the pipelined shipper: bound on unacked
    #: replication payload bytes per broker (0 = unlimited). Producers
    #: observe bounded ``in_flight_bytes`` instead of blocking on one
    #: synchronous round-trip per batch.
    ship_window_bytes: int = 0
    #: Linger ceiling for the adaptive batcher (seconds): with work below
    #: the current consolidation target, the shipper waits up to this long
    #: for more appends before shipping a small batch. 0 ships eagerly.
    ship_linger_s: float = 0.0
    #: Durable tier (live drivers with a persist dir): when backups
    #: ``fsync`` their segment files — ``never`` (OS decides), ``always``
    #: (every flush), ``interval:<ms>`` (time-batched), or ``bytes:<n>``
    #: (every n unsynced bytes). Parsed by
    #: :meth:`repro.persist.FlushPolicy.parse`; validated structurally
    #: here so the config layer stays free of file-I/O imports.
    fsync_policy: str = "never"
    #: Durable tier: migrate sealed, fully-flushed virtual segments out
    #: of backup memory; reads fall back to the on-disk segment file.
    spill_sealed: bool = False

    def __post_init__(self) -> None:
        if self.replication_factor < 1:
            raise ConfigError("replication_factor must be >= 1")
        if self.vlogs_per_broker < 1:
            raise ConfigError("vlogs_per_broker must be >= 1")
        if self.virtual_segment_size <= 0:
            raise ConfigError("virtual_segment_size must be positive")
        if self.max_batch_chunks < 0 or self.max_batch_bytes < 0:
            raise ConfigError("batch caps must be >= 0")
        if self.pipeline_depth < 1:
            raise ConfigError("pipeline_depth must be >= 1")
        if self.ship_window_bytes < 0 or self.ship_linger_s < 0:
            raise ConfigError("ship window and linger must be >= 0")
        head = self.fsync_policy.strip().partition(":")[0].lower()
        if head not in ("never", "always", "interval", "bytes", "every_n_bytes"):
            raise ConfigError(
                f"unknown fsync policy {self.fsync_policy!r} "
                "(expected never | always | interval:<ms> | bytes:<n>)"
            )

    @property
    def num_backup_copies(self) -> int:
        """Passive copies on backups (R minus the broker's active copy)."""
        return self.replication_factor - 1
