"""Streamlet→virtual-log association and backup selection.

Two policies from the evaluation:

* **SHARED** — ``KerA uses for replication four virtual logs per broker
  shared by all streams`` (Figure 8): deterministic hash of
  ``(stream, streamlet)`` over the broker's virtual logs;
* **PER_SUBPARTITION** — ``KerA configures one virtual log per
  sub-partition`` (Figure 11/17-21): the (streamlet, entry) pair gets its
  own virtual log, created on demand.

Backup selection follows RAMCloud: when a virtual segment opens, a set of
``R - 1`` distinct backups excluding the primary is chosen, rotating so
that consecutive virtual segments scatter over all nodes — ``distributing
data to all backups helps at recovery time since data can be read in
parallel from many backups``.
"""

from __future__ import annotations

from repro.common.errors import ConfigError, ReplicationError
from repro.replication.config import PolicyMode, ReplicationConfig


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: a full-avalanche integer hash.

    A plain multiplicative hash is not enough here: brokers receive
    streams whose ids share a residue class (the coordinator assigns
    leaders round-robin), and ``(stream_id * odd) % vlogs`` maps a whole
    residue class to one virtual log — silently serializing all
    replication through it.
    """
    x &= 0xFFFFFFFFFFFFFFFF
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    return x


class ReplicationPolicy:
    """Maps a (stream, streamlet, entry) append to a virtual-log key."""

    __slots__ = ("config", "_subpartition_keys")

    def __init__(self, config: ReplicationConfig) -> None:
        self.config = config
        self._subpartition_keys: dict[tuple[int, int, int], int] = {}

    def vlog_key(self, stream_id: int, streamlet_id: int, entry: int) -> int:
        """Deterministic virtual-log index for this append's target.

        SHARED hashes the full (stream, streamlet, entry) sub-partition so
        a single 32-sub-partition stream can still spread over many shared
        virtual logs (the paper's Figure 21 sweep).
        """
        if self.config.policy is PolicyMode.SHARED:
            return (
                _mix64(stream_id * 131_071 + streamlet_id * 257 + entry)
                % self.config.vlogs_per_broker
            )
        key = (stream_id, streamlet_id, entry)
        index = self._subpartition_keys.get(key)
        if index is None:
            index = len(self._subpartition_keys)
            self._subpartition_keys[key] = index
        return index

    @property
    def max_vlogs(self) -> int | None:
        """Upper bound on virtual logs (None when created on demand)."""
        if self.config.policy is PolicyMode.SHARED:
            return self.config.vlogs_per_broker
        return None


class BackupSelector:
    """Rotating distinct-backup choice for new virtual segments."""

    __slots__ = ("primary", "candidates", "copies", "_cursor")

    def __init__(self, *, primary: int, nodes: list[int], copies: int) -> None:
        self.primary = primary
        self.candidates = [n for n in nodes if n != primary]
        self.copies = copies
        self._cursor = primary  # stagger start per broker
        if copies < 0:
            raise ConfigError("backup copies must be >= 0")
        if copies > len(self.candidates):
            raise ReplicationError(
                f"replication needs {copies} backups but only "
                f"{len(self.candidates)} non-primary nodes exist"
            )

    def select(self) -> tuple[int, ...]:
        """Choose the next set of ``copies`` distinct backups."""
        if self.copies == 0:
            return ()
        chosen = []
        for i in range(self.copies):
            chosen.append(self.candidates[(self._cursor + i) % len(self.candidates)])
        self._cursor = (self._cursor + 1) % len(self.candidates)
        return tuple(chosen)

    def replace(self, backups: tuple[int, ...], failed: int) -> tuple[int, ...]:
        """Return ``backups`` with ``failed`` swapped for a healthy node."""
        if failed not in backups:
            raise ReplicationError(f"node {failed} is not among backups {backups}")
        pool = [n for n in self.candidates if n != failed and n not in backups]
        if not pool:
            raise ReplicationError(
                f"no replacement backup available for failed node {failed}"
            )
        replacement = pool[self._cursor % len(pool)]
        self._cursor = (self._cursor + 1) % max(len(self.candidates), 1)
        return tuple(replacement if b == failed else b for b in backups)

    def remove_candidate(self, node: int) -> None:
        """Permanently drop a crashed node from the candidate pool."""
        if node in self.candidates:
            self.candidates.remove(node)
        if self.copies > len(self.candidates):
            raise ReplicationError(
                f"cluster too small after losing node {node}: need "
                f"{self.copies} backups, have {len(self.candidates)}"
            )
