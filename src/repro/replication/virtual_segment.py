"""Virtual segments: ordered chunk references with replication watermarks.

Each virtual segment keeps (paper, Section IV-B):

* an ordered list of chunk references;
* the *header* — the next available/free virtual offset, computed from
  the accumulated chunk lengths;
* the *durable header* — pointing at the next chunk to be replicated
  (every chunk below it is on all of the segment's backups);
* a header checksum that covers the chunks' checksums, which backups use
  for recovery and data integrity;
* the set of backups chosen at open time.
"""

from __future__ import annotations

import struct

from repro.common.checksum import crc32c_update
from repro.common.errors import ReplicationError, SegmentFullError, SegmentSealedError
from repro.replication.chunk_ref import ChunkRef
from repro.storage.segment import StoredChunk

_CRC_PACK = struct.Struct("<I")


class VirtualSegment:
    """An append-only run of chunk references bound to one backup set."""

    __slots__ = (
        "vlog_id",
        "vseg_id",
        "capacity",
        "backups",
        "refs",
        "_header",
        "_durable_index",
        "_checksum",
        "_sealed",
    )

    def __init__(
        self, *, vlog_id: int, vseg_id: int, capacity: int, backups: tuple[int, ...]
    ) -> None:
        self.vlog_id = vlog_id
        self.vseg_id = vseg_id
        self.capacity = capacity
        self.backups = backups
        self.refs: list[ChunkRef] = []
        self._header = 0
        self._durable_index = 0
        self._checksum = 0
        self._sealed = False

    # -- append path -------------------------------------------------------

    @property
    def header(self) -> int:
        """Next free virtual offset (accumulated chunk lengths)."""
        return self._header

    @property
    def remaining(self) -> int:
        return self.capacity - self._header

    @property
    def sealed(self) -> bool:
        return self._sealed

    def append_ref(self, stored: StoredChunk) -> ChunkRef:
        """Reference ``stored``; raises :class:`SegmentFullError` when the
        virtual space is exhausted (the virtual log then rolls)."""
        if self._sealed:
            raise SegmentSealedError(
                f"append on sealed virtual segment {self.vseg_id}"
            )
        if stored.length > self.remaining:
            raise SegmentFullError(
                f"chunk of {stored.length} bytes exceeds virtual segment "
                f"{self.vseg_id} remaining space {self.remaining}"
            )
        ref = ChunkRef(
            ref_index=len(self.refs), virtual_offset=self._header, stored=stored
        )
        self.refs.append(ref)
        self._header += stored.length
        # The virtual segment header checksum covers the chunks' checksums.
        self._checksum = crc32c_update(
            self._checksum, _CRC_PACK.pack(stored.payload_crc)
        )
        return ref

    def seal(self) -> None:
        self._sealed = True

    @property
    def checksum(self) -> int:
        """CRC-32C over the referenced chunks' CRCs, in order."""
        return self._checksum

    # -- replication watermarks ------------------------------------------------

    @property
    def durable_index(self) -> int:
        """Index of the next reference awaiting replication."""
        return self._durable_index

    @property
    def durable_header(self) -> int:
        """Virtual offset of the next chunk to be replicated."""
        if self._durable_index == 0:
            return 0
        return self.refs[self._durable_index - 1].virtual_end

    @property
    def fully_replicated(self) -> bool:
        return self._durable_index == len(self.refs)

    def unreplicated(self) -> list[ChunkRef]:
        return self.refs[self._durable_index :]

    def mark_replicated(self, count: int) -> list[ChunkRef]:
        """Advance the durable header past the next ``count`` references
        (atomic per chunk: partial chunks are never durable)."""
        if count < 0 or self._durable_index + count > len(self.refs):
            raise ReplicationError(
                f"cannot mark {count} refs replicated "
                f"({self._durable_index}/{len(self.refs)} done)"
            )
        done = self.refs[self._durable_index : self._durable_index + count]
        self._durable_index += count
        return done

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VirtualSegment(vlog={self.vlog_id}, vseg={self.vseg_id}, "
            f"refs={len(self.refs)}, durable={self._durable_index}, "
            f"backups={self.backups}, sealed={self._sealed})"
        )
