"""Log-structured storage engine: segments, groups, streamlets, streams.

The paper's dynamic partitioning model (Section IV-A, Figures 3 and 4):

* a **stream** is an unbounded sequence of records, partitioned into up to
  M **streamlets**;
* a streamlet is divided into fixed-size sub-partitions called **groups of
  segments**, created dynamically as data arrives; up to Q groups are
  *active* (accepting appends) at a time, and a producer writes to the
  active group at entry ``producer_id % Q``;
* a **segment** is a fixed-size append-only in-memory buffer (e.g. 8 MB)
  with the same structure in memory and on disk;
* **lightweight offset indexing** maps logical record offsets to
  ``(group, segment, byte offset)`` for sequential record access.

Durability is *not* this package's job — consumers may only read a chunk
once its bytes fall below the owning segment's durable head, and that head
is advanced by the replication layer (:mod:`repro.replication`) or, for
replication factor 1, immediately by the broker.
"""

from repro.storage.config import StorageConfig
from repro.storage.segment import Segment, StoredChunk
from repro.storage.group import Group
from repro.storage.streamlet import Streamlet
from repro.storage.stream import Stream, StreamRegistry
from repro.storage.offsets import GroupOffsetIndex, StreamletCursor
from repro.storage.index import SegmentOffsetIndex
from repro.storage.fancache import FanoutCache, FanoutCacheStats
from repro.storage.memory import SegmentAllocator

__all__ = [
    "StorageConfig",
    "Segment",
    "StoredChunk",
    "Group",
    "Streamlet",
    "Stream",
    "StreamRegistry",
    "GroupOffsetIndex",
    "SegmentOffsetIndex",
    "FanoutCache",
    "FanoutCacheStats",
    "StreamletCursor",
    "SegmentAllocator",
]
