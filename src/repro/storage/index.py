"""Per-segment offset index: logical record offset → frame byte range.

The group-level :class:`~repro.storage.offsets.GroupOffsetIndex` locates
the *chunk* holding a logical offset; this module adds the segment-local
mirror the positioned-read path needs: for each frame appended to a
segment it records ``(cumulative record count, byte offset, byte
length)``, so a seek resolves to an exact frame byte range in O(log n)
bisects and a range read comes back as **one** :class:`memoryview` of the
segment buffer (frames are laid out back to back, so any frame run is
contiguous).

The index is built incrementally at append time (three integer appends
per chunk — the "lightweight offset indexing" discipline, paper Section
IV) and rebuilt from raw bytes on disk recovery with a header-only scan:
record counts and payload lengths live in the fixed 40-byte chunk header,
so rebuilding never touches payload bytes.

``frames_touched`` counts how many frames each lookup resolved — test
instrumentation that pins the O(1)-frames property of seek + read
(a positioned read must not scan).
"""

from __future__ import annotations

from bisect import bisect_right

from repro.common.errors import StorageError, WireFormatError
from repro.wire.chunk import CHUNK_HEADER_SIZE, CHUNK_MAGIC, CHUNK_FMT_VERSION, _HEADER


class SegmentOffsetIndex:
    """Maps record offsets within one segment to encoded frame ranges."""

    __slots__ = ("_cumulative", "_offsets", "_lengths", "frames_touched")

    def __init__(self) -> None:
        # _cumulative[i] = records in frames [0, i] inclusive.
        self._cumulative: list[int] = []
        # Byte offset / length of frame i within the segment buffer.
        self._offsets: list[int] = []
        self._lengths: list[int] = []
        #: Frames resolved by lookups since construction (instrumentation:
        #: positioned reads must touch O(1) frames, never scan).
        self.frames_touched = 0

    # -- build ---------------------------------------------------------------

    def add(self, record_count: int, offset: int, length: int) -> None:
        """Index one appended frame (called from ``Segment.append``)."""
        total = (self._cumulative[-1] if self._cumulative else 0) + record_count
        self._cumulative.append(total)
        self._offsets.append(offset)
        self._lengths.append(length)

    @classmethod
    def rebuild(cls, buf: bytes | bytearray | memoryview) -> "SegmentOffsetIndex":
        """Reconstruct the index from raw segment bytes (recovery path).

        Header-only scan: each frame's record count and payload length are
        read from its fixed header and the cursor jumps over the payload —
        no record decode, no checksum work.
        """
        view = memoryview(buf)
        index = cls()
        offset = 0
        end = len(view)
        while offset < end:
            if offset + CHUNK_HEADER_SIZE > end:
                raise WireFormatError(
                    f"truncated chunk header at offset {offset} during index rebuild"
                )
            fields = _HEADER.unpack_from(view, offset)
            if fields[0] != CHUNK_MAGIC:
                raise WireFormatError(
                    f"bad chunk magic {fields[0]:#06x} at offset {offset} "
                    "during index rebuild"
                )
            if fields[1] != CHUNK_FMT_VERSION:
                raise WireFormatError(
                    f"unsupported chunk format version {fields[1]} at offset {offset}"
                )
            length = CHUNK_HEADER_SIZE + fields[10]
            if offset + length > end:
                raise WireFormatError(
                    f"truncated chunk payload at offset {offset} during index rebuild"
                )
            index.add(fields[9], offset, length)
            offset += length
        return index

    # -- introspection -------------------------------------------------------

    @property
    def frame_count(self) -> int:
        return len(self._offsets)

    @property
    def record_count(self) -> int:
        return self._cumulative[-1] if self._cumulative else 0

    def frame_record_base(self, index: int) -> int:
        """Record offset (segment-local) of frame ``index``'s first record."""
        return self._cumulative[index - 1] if index > 0 else 0

    # -- lookup --------------------------------------------------------------

    def locate(self, record_offset: int) -> int:
        """Index of the frame containing the segment-local ``record_offset``.

        One bisect; counts exactly one frame touched.
        """
        if record_offset < 0 or record_offset >= self.record_count:
            raise StorageError(
                f"record offset {record_offset} outside [0, {self.record_count})"
            )
        self.frames_touched += 1
        return bisect_right(self._cumulative, record_offset)

    def frame_range(self, index: int) -> tuple[int, int]:
        """Byte range ``(start, end)`` of frame ``index``."""
        start = self._offsets[index]
        return start, start + self._lengths[index]

    def byte_range(self, start_record: int, end_record: int) -> tuple[int, int]:
        """Byte range covering records ``[start_record, end_record)``.

        Two bisects regardless of how many frames the range spans; the
        returned range is frame-aligned (it starts at the frame containing
        ``start_record`` and ends after the frame containing
        ``end_record - 1``) because frames are the unit of wire framing.
        """
        if start_record >= end_record:
            raise StorageError(
                f"empty record range [{start_record}, {end_record})"
            )
        first = self.locate(start_record)
        last = self.locate(end_record - 1)
        # The two locates counted 2; the span actually covers
        # ``last - first + 1`` frames.
        self.frames_touched += last - first - 1
        return self._offsets[first], self._offsets[last] + self._lengths[last]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SegmentOffsetIndex(frames={self.frame_count}, "
            f"records={self.record_count})"
        )
