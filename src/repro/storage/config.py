"""Storage engine configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.units import MB


@dataclass(frozen=True)
class StorageConfig:
    """Sizing of the log-structured storage engine.

    ``materialize=False`` switches segments to metadata-only accounting
    (no payload bytes stored) — the fidelity used by the discrete-event
    benchmarks; all offset arithmetic is identical in both modes.
    """

    #: Fixed segment size (paper example: 8 MB).
    segment_size: int = 8 * MB
    #: Segments per group — the group is the "fixed-size sub-partition".
    segments_per_group: int = 2
    #: Q: number of active groups per streamlet (parallel append slots).
    q_active_groups: int = 1
    #: Whether segments store real bytes.
    materialize: bool = True

    def __post_init__(self) -> None:
        if self.segment_size <= 0:
            raise ConfigError("segment_size must be positive")
        if self.segments_per_group <= 0:
            raise ConfigError("segments_per_group must be positive")
        if self.q_active_groups <= 0:
            raise ConfigError("q_active_groups must be positive")

    @property
    def group_capacity(self) -> int:
        """Total byte capacity of one group."""
        return self.segment_size * self.segments_per_group
