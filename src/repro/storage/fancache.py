"""Shared hot-chunk cache for consumer fan-out.

When N consumer groups read the same stream, the seed-era fetch path did
the expensive part — CRC re-validation at the serving boundary plus
record decode — once *per consumer*, so aggregate read cost grew linearly
with fan-out. This module gives the broker one shared LRU cache of
decode-ready :class:`~repro.wire.views.ChunkView` entries keyed by the
chunk's virtual address ``(vlog, vseg, chunk)``:

* **vlog** — the virtual log the chunk's group replicates through,
  identified by ``(stream_id, streamlet_id, entry)``;
* **vseg** — the virtual segment, i.e. the group id;
* **chunk** — the chunk's position within the group, in append order.

Admission does the per-chunk work exactly once, *outside* the cache lock:
the owning fetcher validates the frame CRC (earning the view's
``verified`` bit for every later reader in this address space) and
pre-decodes the record list onto the shared view, so a hit is a dict
probe plus an LRU touch — a few microseconds against the ~1 ms a cold
decode costs. Concurrent fetchers of the same missing chunk coordinate
through a per-key :class:`threading.Event`: one builds, the rest wait,
nobody decodes twice (asserted by the fan-out concurrency tests).

Eviction is byte-budgeted LRU. Retirement invalidates: when a group's
segments are reclaimed the broker drops the group's entries so no
consumer can be served frames whose backing memory was freed.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass

from repro.common.errors import StorageError
from repro.common.metrics import Gauge
from repro.wire.views import ChunkView

#: ``(vlog, vseg, chunk)``: ((stream_id, streamlet_id, entry), group_id,
#: chunk position within the group).
CacheKey = tuple[tuple[int, int, int], int, int]


@dataclass(frozen=True, slots=True)
class FanoutCacheStats:
    """Point-in-time snapshot of the cache gauges."""

    hits: int
    misses: int
    evictions: int
    entries: int
    bytes_cached: int


class FanoutCache:
    """Byte-budgeted LRU of decode-ready chunk views, safe for fan-out.

    ``get`` is the only hot-path entry point; everything else is control
    plane (retirement invalidation, tests, stats).
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise StorageError("fan-out cache capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._lock = threading.Lock()
        #: Cached views in LRU order (oldest first).
        self._entries: OrderedDict[CacheKey, ChunkView] = OrderedDict()  # guarded-by: _lock  # borrows: segment-buffers -- invalidate_group drops entries before their backing segment memory is retired
        #: In-flight admissions: key -> event set once the build resolves.
        self._building: dict[CacheKey, threading.Event] = {}  # guarded-by: _lock
        self._bytes = 0  # guarded-by: _lock
        #: Observability gauges (each thread-safe on its own; updated once
        #: per get/eviction, so the hot path pays one extra lock).
        self.hits = Gauge()
        self.misses = Gauge()
        self.evictions = Gauge()
        self.bytes_cached = Gauge()
        #: Frames decoded by admissions — the fan-out tests compare this
        #: against the number of distinct hot chunks to pin single-decode.
        self.decodes = Gauge()

    # -- hot path ------------------------------------------------------------

    def get(self, key: CacheKey, load_frame: Callable[[], memoryview | bytes]) -> ChunkView:
        """Return the decode-ready view for ``key``, admitting it if absent.

        ``load_frame`` resolves the encoded frame bytes (typically a
        zero-copy view of the segment buffer); it runs at most once per
        cached lifetime of the key, outside the cache lock, on the thread
        that lost the race to find the entry. Concurrent callers for the
        same key block on the owner's build instead of decoding again.
        """
        event: threading.Event | None = None
        while True:
            pending: threading.Event | None = None
            with self._lock:
                view = self._entries.get(key)
                if view is not None:
                    self._entries.move_to_end(key)
                    self.hits.add(1)
                    return view
                pending = self._building.get(key)
                if pending is None:
                    event = threading.Event()
                    self._building[key] = event
            if pending is not None:
                # Someone else is admitting this chunk: wait, then re-probe.
                # A failed build clears the in-flight marker, so the retry
                # can become the owner rather than spinning.
                pending.wait()
                continue
            assert event is not None  # we registered as the build owner
            try:
                view = self._admit(key, load_frame)
            except BaseException:
                with self._lock:
                    del self._building[key]
                event.set()
                raise
            with self._lock:
                del self._building[key]
                size = view.size
                if size <= self.capacity_bytes:
                    self._entries[key] = view
                    self._bytes += size
                    while self._bytes > self.capacity_bytes:
                        _, evicted = self._entries.popitem(last=False)
                        self._bytes -= evicted.size
                        self.evictions.add(1)
                    self.bytes_cached.set(self._bytes)
                # An over-capacity chunk is served but never cached.
                self.misses.add(1)
            event.set()
            return view

    def _admit(self, key: CacheKey, load_frame: Callable[[], memoryview | bytes]) -> ChunkView:
        """The once-per-chunk work: frame CRC at the serving boundary, then
        one record decode memoized on the shared view."""
        view = ChunkView(load_frame())
        view.verify_payload()
        view.records()
        self.decodes.add(1)
        return view

    # -- control plane -------------------------------------------------------

    def peek(self, key: CacheKey) -> ChunkView | None:
        """Non-admitting, non-LRU-touching probe (tests)."""
        with self._lock:
            return self._entries.get(key)

    def invalidate_group(self, vlog: tuple[int, int, int], vseg: int) -> int:
        """Drop every cached chunk of one virtual segment (its group was
        retired and the backing segment memory freed); return the count."""
        with self._lock:
            stale = [k for k in self._entries if k[0] == vlog and k[1] == vseg]
            for k in stale:
                self._bytes -= self._entries.pop(k).size
            self.bytes_cached.set(self._bytes)
            return len(stale)

    def clear(self) -> None:
        """Empty the cache (tests and cold-start benchmarking)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self.bytes_cached.set(0)

    @property
    def entry_count(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> FanoutCacheStats:
        with self._lock:
            entries = len(self._entries)
            cached = self._bytes
        return FanoutCacheStats(
            hits=self.hits.value,
            misses=self.misses.value,
            evictions=self.evictions.value,
            entries=entries,
            bytes_cached=cached,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"FanoutCache(entries={s.entries}, bytes={s.bytes_cached}/"
            f"{self.capacity_bytes}, hits={s.hits}, misses={s.misses})"
        )
