"""Streamlets: the stream's logical partitions.

``A stream is composed of logical partitions called streamlets ... To
increase write and read parallelism, a streamlet is further divided into
fixed-size sub-partitions (groups of segments), with each group created
dynamically as data arrives`` (paper, Section IV-A, Figure 4). Up to Q
groups are active at a time; a producer appends to the active group at
entry ``producer_id % Q``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.common.errors import GroupFullError
from repro.common.idgen import IdGenerator
from repro.storage.config import StorageConfig
from repro.storage.group import Group
from repro.storage.memory import SegmentAllocator
from repro.storage.offsets import StreamletCursor
from repro.storage.segment import StoredChunk
from repro.wire.chunk import Chunk

#: Callback invoked when a fresh group is opened: ``(streamlet, group)``.
GroupListener = Callable[["Streamlet", Group], None]


class Streamlet:
    """One logical partition of a stream, on one broker."""

    __slots__ = (
        "stream_id",
        "streamlet_id",
        "config",
        "allocator",
        "_active",
        "_groups",
        "_groups_by_entry",
        "_group_ids",
        "_on_group_open",
        "_retained_floor",
    )

    def __init__(
        self,
        *,
        stream_id: int,
        streamlet_id: int,
        config: StorageConfig,
        allocator: SegmentAllocator,
        on_group_open: GroupListener | None = None,
    ) -> None:
        self.stream_id = stream_id
        self.streamlet_id = streamlet_id
        self.config = config
        self.allocator = allocator
        #: Active group per entry (None until first append hits the entry).
        self._active: list[Group | None] = [None] * config.q_active_groups
        #: Every group ever created, in creation order.
        self._groups: list[Group] = []
        #: Creation-ordered groups per entry (consumer hot path).
        self._groups_by_entry: list[list[Group]] = [
            [] for _ in range(config.q_active_groups)
        ]
        self._group_ids = IdGenerator()
        self._on_group_open = on_group_open
        #: Per entry: record offset of the earliest retained record (the
        #: retention floor). Groups below it are retired prefixes.
        self._retained_floor: list[int] = [0] * config.q_active_groups

    # -- partitioning ------------------------------------------------------

    @property
    def q(self) -> int:
        return self.config.q_active_groups

    def entry_for_producer(self, producer_id: int) -> int:
        """``producer identifier modulo Q`` (paper, Figure 3)."""
        return producer_id % self.q

    def _open_group(self, entry: int) -> Group:
        group = Group(
            stream_id=self.stream_id,
            streamlet_id=self.streamlet_id,
            group_id=self._group_ids.next(),
            entry=entry,
            config=self.config,
            allocator=self.allocator,
        )
        self._active[entry] = group
        self._groups.append(group)
        self._groups_by_entry[entry].append(group)
        if self._on_group_open is not None:
            self._on_group_open(self, group)
        return group

    # -- write path -----------------------------------------------------------

    def append(self, chunk: Chunk, producer_id: int | None = None) -> StoredChunk:
        """Append a chunk to the producer's active group.

        Creates the group (and its first segment) lazily; when the group's
        quota is exhausted it is closed and a fresh group opened in the
        same entry — ``each append operation can lead to creating a new
        segment or a new group`` (paper, Section IV-B).
        """
        pid = chunk.producer_id if producer_id is None else producer_id
        entry = self.entry_for_producer(pid)
        group = self._active[entry]
        if group is None:
            group = self._open_group(entry)
        try:
            return group.append(chunk)
        except GroupFullError:
            group.close()
            group = self._open_group(entry)
            return group.append(chunk)

    # -- read path ------------------------------------------------------------

    @property
    def groups(self) -> list[Group]:
        return list(self._groups)

    def groups_for_entry(self, entry: int) -> list[Group]:
        return self._groups_by_entry[entry]

    def active_group(self, entry: int) -> Group | None:
        return self._active[entry]

    def cursor(self, entry: int = 0) -> StreamletCursor:
        return StreamletCursor(streamlet=self, entry=entry)

    # -- retention ----------------------------------------------------------

    def retained_floor(self, entry: int) -> int:
        """Record offset of the earliest retained record in ``entry``."""
        return self._retained_floor[entry]

    def entry_record_count(self, entry: int) -> int:
        """Total records ever appended to ``entry`` (including retired)."""
        return sum(g.record_count for g in self._groups_by_entry[entry])

    def retire_before(self, entry: int, record_offset: int) -> list[Group]:
        """Retire the closed, fully-durable group prefix of ``entry`` whose
        records all fall below ``record_offset``; return the retired groups.

        Retirement is group-granular (the paper's unit of eviction to
        secondary storage): a group containing ``record_offset`` stays. The
        per-entry retention floor advances past every retired group, so
        subsequent seeks below it raise
        :class:`~repro.common.errors.OffsetOutOfRangeError`. Group objects
        stay in place — consumer ``group_pos`` indices remain stable — but
        their segment memory is freed.
        """
        retired: list[Group] = []
        base = 0
        for group in self._groups_by_entry[entry]:
            end = base + group.record_count
            if end > record_offset or not group.closed:
                break
            if not group.retired:
                group.retire()
                retired.append(group)
            base = end
        if base > self._retained_floor[entry]:
            self._retained_floor[entry] = base
        return retired

    def chunks(self) -> Iterator[StoredChunk]:
        for group in self._groups:
            yield from group.chunks()

    @property
    def record_count(self) -> int:
        return sum(g.record_count for g in self._groups)

    def durable_record_count(self) -> int:
        return sum(g.durable_record_count() for g in self._groups)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Streamlet(s{self.stream_id}/l{self.streamlet_id}, Q={self.q}, "
            f"groups={len(self._groups)}, records={self.record_count})"
        )
