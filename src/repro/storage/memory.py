"""Segment memory management.

``A broker manages the main memory of a server`` (paper, Section II-A).
The allocator is the single place segments are created: it enforces an
optional memory budget and tracks usage statistics, which the evaluation
uses to show the virtual log's *replication capacity / memory* trade-off.
"""

from __future__ import annotations

from repro.common.errors import StorageError
from repro.storage.config import StorageConfig
from repro.storage.segment import Segment


class SegmentAllocator:
    """Creates segments against a byte budget and keeps usage stats."""

    __slots__ = ("config", "budget_bytes", "_allocated", "_live_bytes", "_peak_bytes")

    def __init__(self, config: StorageConfig, budget_bytes: int | None = None) -> None:
        self.config = config
        self.budget_bytes = budget_bytes
        self._allocated = 0
        self._live_bytes = 0
        self._peak_bytes = 0

    @property
    def segments_allocated(self) -> int:
        return self._allocated

    @property
    def live_bytes(self) -> int:
        return self._live_bytes

    @property
    def peak_bytes(self) -> int:
        return self._peak_bytes

    def allocate(
        self, *, stream_id: int, streamlet_id: int, group_id: int, segment_id: int
    ) -> Segment:
        size = self.config.segment_size
        if self.budget_bytes is not None and self._live_bytes + size > self.budget_bytes:
            raise StorageError(
                f"segment allocation of {size} bytes exceeds memory budget "
                f"({self._live_bytes}/{self.budget_bytes} in use)"
            )
        self._allocated += 1
        self._live_bytes += size
        self._peak_bytes = max(self._peak_bytes, self._live_bytes)
        return Segment(
            stream_id=stream_id,
            streamlet_id=streamlet_id,
            group_id=group_id,
            segment_id=segment_id,
            capacity=size,
            materialize=self.config.materialize,
        )

    def free(self, segment: Segment) -> None:
        """Return a segment's memory (data evicted to secondary storage)."""
        if self._live_bytes < segment.buffer.capacity:
            raise StorageError("freeing more segment memory than allocated")
        self._live_bytes -= segment.buffer.capacity
