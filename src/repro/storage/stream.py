"""Streams: named collections of streamlets on one broker.

A stream has up to M streamlets spread over N <= M brokers; a broker
instance of :class:`Stream` holds only the streamlets it leads. An
*object* in KerA's unified model is simply a bounded stream.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.common.errors import StorageError, UnknownStreamError
from repro.storage.config import StorageConfig
from repro.storage.memory import SegmentAllocator
from repro.storage.segment import StoredChunk
from repro.storage.streamlet import GroupListener, Streamlet
from repro.wire.chunk import Chunk


class Stream:
    """The broker-local portion of a stream."""

    __slots__ = ("stream_id", "config", "allocator", "_streamlets", "_on_group_open")

    def __init__(
        self,
        *,
        stream_id: int,
        streamlet_ids: Iterable[int],
        config: StorageConfig,
        allocator: SegmentAllocator,
        on_group_open: GroupListener | None = None,
    ) -> None:
        self.stream_id = stream_id
        self.config = config
        self.allocator = allocator
        self._on_group_open = on_group_open
        self._streamlets: dict[int, Streamlet] = {}
        for sid in streamlet_ids:
            self.add_streamlet(sid)

    def add_streamlet(self, streamlet_id: int) -> Streamlet:
        """Register a streamlet led by this broker (also used when a
        recovered streamlet migrates here)."""
        if streamlet_id in self._streamlets:
            raise StorageError(
                f"streamlet {streamlet_id} already exists on stream {self.stream_id}"
            )
        streamlet = Streamlet(
            stream_id=self.stream_id,
            streamlet_id=streamlet_id,
            config=self.config,
            allocator=self.allocator,
            on_group_open=self._on_group_open,
        )
        self._streamlets[streamlet_id] = streamlet
        return streamlet

    def streamlet(self, streamlet_id: int) -> Streamlet:
        try:
            return self._streamlets[streamlet_id]
        except KeyError:
            raise StorageError(
                f"stream {self.stream_id} has no local streamlet {streamlet_id}"
            ) from None

    @property
    def streamlet_ids(self) -> list[int]:
        return sorted(self._streamlets)

    @property
    def streamlets(self) -> list[Streamlet]:
        return [self._streamlets[k] for k in sorted(self._streamlets)]

    def append(self, chunk: Chunk) -> StoredChunk:
        """Route a chunk to its streamlet and append."""
        return self.streamlet(chunk.streamlet_id).append(chunk)

    def chunks(self) -> Iterator[StoredChunk]:
        for streamlet in self.streamlets:
            yield from streamlet.chunks()

    @property
    def record_count(self) -> int:
        return sum(s.record_count for s in self.streamlets)

    def durable_record_count(self) -> int:
        return sum(s.durable_record_count() for s in self.streamlets)


class StreamRegistry:
    """All broker-local streams, keyed by stream id."""

    __slots__ = ("_streams",)

    def __init__(self) -> None:
        self._streams: dict[int, Stream] = {}

    def add(self, stream: Stream) -> None:
        if stream.stream_id in self._streams:
            raise StorageError(f"stream {stream.stream_id} already registered")
        self._streams[stream.stream_id] = stream

    def get(self, stream_id: int) -> Stream:
        try:
            return self._streams[stream_id]
        except KeyError:
            raise UnknownStreamError(stream_id) from None

    def __contains__(self, stream_id: int) -> bool:
        return stream_id in self._streams

    def __iter__(self) -> Iterator[Stream]:
        return iter(self._streams.values())

    def __len__(self) -> int:
        return len(self._streams)
