"""Physical segments and stored-chunk placements.

``Each chunk acquired by the storage system is appended into a segment
represented by an in-memory buffer managed by the broker`` (paper,
Section IV-A). The segment stores the *encoded* chunk (header + records)
so a backup or a recovery scan can reconstruct placement from the bytes
alone; each segment is additionally tagged with the stream and streamlet
identifiers (used at recovery time).

A segment keeps the paper's two offsets: the *head* (next free byte) and
the *durable head* (bytes already replicated). Chunks become durable
strictly in append order — the replication layer acks them in virtual-log
order, and all chunks of one group flow through one virtual log.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from repro.common.errors import SegmentFullError, StorageError
from repro.storage.index import SegmentOffsetIndex
from repro.wire.buffers import AppendBuffer
from repro.wire.chunk import (
    Chunk,
    CHUNK_HEADER_SIZE,
    CHUNK_PLACEMENT_OFFSET,
    placement_bytes,
)
from repro.wire.framing import iter_chunk_views


@dataclass(frozen=True)
class StoredChunk:
    """The placement of an ingested chunk: which segment, where, how big.

    This is exactly the metadata a virtual-segment *chunk reference*
    carries: ``a reference to the physical segment and the chunk's offset
    into physical segment and length`` (paper, Section IV-B).
    """

    segment: "Segment"
    offset: int
    length: int
    record_count: int
    payload_len: int
    payload_crc: int
    producer_id: int
    chunk_seq: int
    #: Logical record offset of this chunk's first record within its group.
    base_record_offset: int

    @property
    def stream_id(self) -> int:
        return self.segment.stream_id

    @property
    def streamlet_id(self) -> int:
        return self.segment.streamlet_id

    @property
    def group_id(self) -> int:
        return self.segment.group_id

    @property
    def segment_id(self) -> int:
        return self.segment.segment_id

    @property
    def end_offset(self) -> int:
        return self.offset + self.length

    @property
    def size(self) -> int:
        """Wire size alias so responses can account stored chunks and wire
        chunks uniformly (zero-copy fetch path)."""
        return self.length

    @property
    def is_durable(self) -> bool:
        """Whether every byte of this chunk is below the durable head."""
        return self.end_offset <= self.segment.durable_head

    def encoded_view(self) -> memoryview:
        """Zero-copy view of the encoded chunk (materialized mode only)."""
        return self.segment.buffer.view(self.offset, self.length)

    def to_chunk(self, *, verify: bool = False) -> Chunk:
        """Re-decode the stored chunk (materialized mode only)."""
        from repro.wire.chunk import decode_chunk

        chunk, _ = decode_chunk(self.encoded_view(), verify=verify)
        return chunk

    def to_wire_chunk(self) -> Chunk:
        """Wire form of this chunk for replication/fetch responses.

        Real bytes when the segment is materialized; an accounting-
        equivalent metadata chunk otherwise. Placement tags are carried
        either way.
        """
        if self.segment.buffer.materialized:
            return self.to_chunk()
        meta = Chunk.meta(
            stream_id=self.stream_id,
            streamlet_id=self.streamlet_id,
            producer_id=self.producer_id,
            chunk_seq=self.chunk_seq,
            record_count=self.record_count,
            payload_len=self.payload_len,
        )
        return meta.assigned(group_id=self.group_id, segment_id=self.segment_id)


class Segment:
    """A fixed-size append-only chunk container."""

    __slots__ = (
        "stream_id",
        "streamlet_id",
        "group_id",
        "segment_id",
        "buffer",
        "entries",
        "index",
        "_record_count",
    )

    def __init__(
        self,
        *,
        stream_id: int,
        streamlet_id: int,
        group_id: int,
        segment_id: int,
        capacity: int,
        materialize: bool = True,
    ) -> None:
        self.stream_id = stream_id
        self.streamlet_id = streamlet_id
        self.group_id = group_id
        self.segment_id = segment_id
        self.buffer = AppendBuffer(capacity, materialize=materialize)
        self.entries: list[StoredChunk] = []
        #: Record offset → frame byte range, built as frames land.
        self.index = SegmentOffsetIndex()
        self._record_count = 0

    # -- write path ---------------------------------------------------------

    def append(self, chunk: Chunk, base_record_offset: int) -> StoredChunk:
        """Append an encoded chunk; raise :class:`SegmentFullError` if it
        does not fit. The broker-assigned ``[group, segment]`` attributes
        are stamped into the encoded header here (paper: "updated at
        append time") — by patching the 8 placement bytes in the segment
        buffer after the frame lands, not by cloning and re-encoding the
        chunk."""
        length = CHUNK_HEADER_SIZE + chunk.payload_len
        if not self.buffer.fits(length):
            raise SegmentFullError(
                f"chunk of {length} bytes does not fit segment "
                f"{self.segment_id} (remaining {self.buffer.remaining()})"
            )
        if self.buffer.materialized:
            offset = self.buffer.append(chunk.encoded_frame())
            if (
                chunk.group_id != self.group_id
                or chunk.segment_id != self.segment_id
            ):
                self.buffer.patch(
                    offset + CHUNK_PLACEMENT_OFFSET,
                    placement_bytes(self.group_id, self.segment_id),
                )
        else:
            offset = self.buffer.reserve(length)
        stored = StoredChunk(
            segment=self,
            offset=offset,
            length=length,
            record_count=chunk.record_count,
            payload_len=chunk.payload_len,
            payload_crc=chunk.payload_crc,
            producer_id=chunk.producer_id,
            chunk_seq=chunk.chunk_seq,
            base_record_offset=base_record_offset,
        )
        self.entries.append(stored)
        self.index.add(chunk.record_count, offset, length)
        self._record_count += chunk.record_count
        return stored

    def seal(self) -> None:
        self.buffer.seal()

    # -- durability ------------------------------------------------------------

    @property
    def head(self) -> int:
        return self.buffer.head

    @property
    def durable_head(self) -> int:
        return self.buffer.durable_head

    def mark_chunk_durable(self, stored: StoredChunk) -> None:
        """Advance the durable head past ``stored``.

        Chunks must become durable in append order; a gap means the
        replication layer violated virtual-log ordering.
        """
        if stored.segment is not self:
            raise StorageError("chunk belongs to a different segment")
        if stored.offset != self.buffer.durable_head:
            raise StorageError(
                f"out-of-order durability: chunk at {stored.offset}, "
                f"durable head at {self.buffer.durable_head}"
            )
        self.buffer.advance_durable(stored.end_offset)

    # -- read path ------------------------------------------------------------

    @property
    def record_count(self) -> int:
        return self._record_count

    @property
    def chunk_count(self) -> int:
        return len(self.entries)

    @property
    def sealed(self) -> bool:
        return self.buffer.sealed

    def durable_entries(self) -> list[StoredChunk]:
        """The prefix of chunks that consumers may see."""
        durable = self.buffer.durable_head
        out = []
        for stored in self.entries:
            if stored.end_offset > durable:
                break
            out.append(stored)
        return out

    def read_at(self, record_offset: int) -> memoryview:
        """Zero-copy view of the encoded frame containing the segment-local
        ``record_offset`` — one bisect through the offset index, no scan."""
        if not self.buffer.materialized:
            raise StorageError("cannot read a metadata-only segment")
        start, end = self.index.frame_range(self.index.locate(record_offset))
        return self.buffer.view(start, end - start)

    def read_range(self, start_record: int, end_record: int) -> memoryview:
        """Zero-copy view spanning the frames that hold records
        ``[start_record, end_record)``.

        Frames are laid out back to back in the segment buffer, so any
        frame run is one contiguous byte range; the result is a single
        view regardless of how many frames the range covers. The range is
        frame-aligned (frames are the wire framing unit).
        """
        if not self.buffer.materialized:
            raise StorageError("cannot read a metadata-only segment")
        start, end = self.index.byte_range(start_record, end_record)
        return self.buffer.view(start, end - start)

    def rebuild_index(self) -> None:
        """Reconstruct the offset index from raw bytes (disk recovery:
        loaded segments arrive as frames without append-time metadata)."""
        if not self.buffer.materialized:
            raise StorageError("cannot rebuild the index of a metadata-only segment")
        self.index = SegmentOffsetIndex.rebuild(self.buffer.view(0, self.buffer.head))

    def scan(self, *, verify: bool = True) -> Iterator[Chunk]:
        """Decode all appended chunks from the raw bytes (recovery path)."""
        if not self.buffer.materialized:
            raise StorageError("cannot scan a metadata-only segment")
        return iter_chunk_views(self.buffer.view(0, self.buffer.head), verify=verify)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Segment(s{self.stream_id}/l{self.streamlet_id}/g{self.group_id}/"
            f"seg{self.segment_id}, chunks={len(self.entries)}, head={self.head})"
        )
