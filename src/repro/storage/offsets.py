"""Lightweight offset indexing.

KerA's second core idea is ``lightweight offset indexing (i.e., reduced
stream offset management overhead) optimized for sequential record
access`` (paper, Section IV). Instead of a dense per-record index (Kafka
keeps index files per log segment), each group maintains only the
cumulative record count per stored chunk; locating a logical record
offset is a binary search over that array, and sequential consumption is
a cursor walk that never touches the index at all.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.common.errors import OffsetOutOfRangeError, StorageError

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.storage.segment import StoredChunk
    from repro.storage.streamlet import Streamlet


class GroupOffsetIndex:
    """Maps logical record offsets within a group to stored chunks."""

    __slots__ = ("_cumulative", "_chunks", "frames_touched")

    def __init__(self) -> None:
        # _cumulative[i] = records in chunks [0, i] inclusive.
        self._cumulative: list[int] = []
        self._chunks: list["StoredChunk"] = []
        #: Chunks resolved by offset lookups (instrumentation: positioned
        #: reads must touch O(1) frames, never scan).
        self.frames_touched = 0

    def add(self, stored: "StoredChunk") -> None:
        total = (self._cumulative[-1] if self._cumulative else 0) + stored.record_count
        self._cumulative.append(total)
        self._chunks.append(stored)

    @property
    def record_count(self) -> int:
        return self._cumulative[-1] if self._cumulative else 0

    @property
    def chunk_count(self) -> int:
        return len(self._chunks)

    def locate_index(self, record_offset: int) -> int:
        """Position (in append order) of the chunk containing
        ``record_offset`` — one bisect, one frame touched."""
        if record_offset < 0 or record_offset >= self.record_count:
            raise StorageError(
                f"record offset {record_offset} outside [0, {self.record_count})"
            )
        self.frames_touched += 1
        return bisect_right(self._cumulative, record_offset)

    def locate(self, record_offset: int) -> "StoredChunk":
        """Return the chunk containing the record at ``record_offset``."""
        return self._chunks[self.locate_index(record_offset)]

    def chunks_from(self, record_offset: int) -> Iterator["StoredChunk"]:
        """Iterate chunks starting with the one containing ``record_offset``."""
        if record_offset >= self.record_count:
            return iter(())
        idx = bisect_right(self._cumulative, record_offset) if record_offset > 0 else 0
        return iter(self._chunks[idx:])


@dataclass
class StreamletCursor:
    """A consumer's position within one streamlet.

    Consumers read groups in creation order within their assigned active
    entry, chunks in append order within a group, and only below the
    durable head — ``consumers only pull durably replicated data``
    (paper, Section V-A). POSIX-style seeks are supported by resetting
    ``group_pos``/``chunk_pos`` via :meth:`seek_record`.
    """

    streamlet: "Streamlet"
    entry: int
    group_pos: int = 0
    chunk_pos: int = 0
    records_read: int = field(default=0)

    def _entry_groups(self) -> list:
        return self.streamlet.groups_for_entry(self.entry)

    def next_chunks(self, max_chunks: int) -> list["StoredChunk"]:
        """Pull up to ``max_chunks`` durable chunks, advancing the cursor.

        O(1) per chunk returned: chunks are addressed by index through the
        group's offset index and checked against the durable head, never
        by materializing the group's durable prefix.
        """
        if max_chunks <= 0:
            return []
        out: list["StoredChunk"] = []
        groups = self._entry_groups()
        while len(out) < max_chunks and self.group_pos < len(groups):
            group = groups[self.group_pos]
            if group.retired:
                # The cursor sits below the retention floor: the bytes it
                # points at are gone. Surface a typed error instead of
                # serving stale frames or silently skipping ahead.
                raise OffsetOutOfRangeError(
                    self.records_read,
                    self.streamlet.retained_floor(self.entry),
                    self.streamlet.entry_record_count(self.entry),
                    f"stream {self.streamlet.stream_id} streamlet "
                    f"{self.streamlet.streamlet_id} entry {self.entry}",
                )
            total = group.index.chunk_count
            while self.chunk_pos < total and len(out) < max_chunks:
                stored = group.chunk_at(self.chunk_pos)
                if not stored.is_durable:
                    return out
                out.append(stored)
                self.chunk_pos += 1
                self.records_read += stored.record_count
            if group.closed and self.chunk_pos >= total:
                # Fully consumed a closed group: move on.
                self.group_pos += 1
                self.chunk_pos = 0
            else:
                break
        return out

    def seek_record(self, record_offset: int) -> None:
        """Position the cursor at the chunk containing ``record_offset``
        (offset counted across this entry's groups in order).

        Resolution is index-only: one group walk (groups are few and
        bounded by retention) plus one bisect inside the owning group —
        the cursor never inspects individual frames. Seeking below the
        retention floor or beyond the entry's contents raises
        :class:`OffsetOutOfRangeError` with the valid range.
        """
        groups = self._entry_groups()
        floor = self.streamlet.retained_floor(self.entry)
        context = (
            f"stream {self.streamlet.stream_id} streamlet "
            f"{self.streamlet.streamlet_id} entry {self.entry}"
        )
        if record_offset < floor:
            raise OffsetOutOfRangeError(
                record_offset,
                floor,
                self.streamlet.entry_record_count(self.entry),
                context,
            )
        base = 0
        for gi, group in enumerate(groups):
            count = group.record_count
            if record_offset < base + count:
                if group.retired:
                    raise OffsetOutOfRangeError(
                        record_offset,
                        floor,
                        self.streamlet.entry_record_count(self.entry),
                        context,
                    )
                idx = group.index.locate_index(record_offset - base)
                stored = group.chunk_at(idx)
                self.group_pos = gi
                self.chunk_pos = idx
                self.records_read = base + stored.base_record_offset
                return
            base += count
        raise OffsetOutOfRangeError(record_offset, floor, base, context)
