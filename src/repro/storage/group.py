"""Groups of segments: the fixed-size sub-partition.

``To reduce the metadata necessary to describe the unbounded set of
segments of a stream, we further logically assemble a configurable number
of segments into a group`` (paper, Section IV-A). A group owns a bounded
number of segments; when the quota is exhausted the group is *closed*
(suffers no appends) and the streamlet opens a fresh group in the same
active entry.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.common.errors import GroupFullError, SegmentFullError, StorageError
from repro.storage.config import StorageConfig
from repro.storage.memory import SegmentAllocator
from repro.storage.offsets import GroupOffsetIndex
from repro.storage.segment import Segment, StoredChunk
from repro.wire.chunk import Chunk, CHUNK_HEADER_SIZE


class Group:
    """A bounded, ordered set of segments within a streamlet."""

    __slots__ = (
        "stream_id",
        "streamlet_id",
        "group_id",
        "entry",
        "config",
        "allocator",
        "segments",
        "index",
        "_closed",
        "_retired",
        "_record_count",
    )

    def __init__(
        self,
        *,
        stream_id: int,
        streamlet_id: int,
        group_id: int,
        entry: int,
        config: StorageConfig,
        allocator: SegmentAllocator,
    ) -> None:
        self.stream_id = stream_id
        self.streamlet_id = streamlet_id
        self.group_id = group_id
        #: Which of the streamlet's Q active entries this group serves.
        self.entry = entry
        self.config = config
        self.allocator = allocator
        self.segments: list[Segment] = []
        self.index = GroupOffsetIndex()
        self._closed = False
        self._retired = False
        self._record_count = 0

    # -- write path -----------------------------------------------------------

    @property
    def open_segment(self) -> Segment | None:
        return self.segments[-1] if self.segments else None

    def _roll_segment(self) -> Segment:
        if len(self.segments) >= self.config.segments_per_group:
            raise GroupFullError(
                f"group {self.group_id} exhausted its "
                f"{self.config.segments_per_group}-segment quota"
            )
        if self.segments:
            self.segments[-1].seal()
        segment = self.allocator.allocate(
            stream_id=self.stream_id,
            streamlet_id=self.streamlet_id,
            group_id=self.group_id,
            segment_id=len(self.segments),
        )
        self.segments.append(segment)
        return segment

    def append(self, chunk: Chunk) -> StoredChunk:
        """Append a chunk, rolling to a new segment when the open one is
        full. Raises :class:`GroupFullError` once the quota is spent."""
        if self._closed:
            raise GroupFullError(f"group {self.group_id} is closed")
        length = CHUNK_HEADER_SIZE + chunk.payload_len
        if length > self.config.segment_size:
            raise StorageError(
                f"chunk of {length} bytes can never fit a "
                f"{self.config.segment_size}-byte segment"
            )
        segment = self.open_segment
        if segment is None:
            segment = self._roll_segment()
        try:
            stored = segment.append(chunk, self._record_count)
        except SegmentFullError:
            segment = self._roll_segment()
            stored = segment.append(chunk, self._record_count)
        self._record_count += chunk.record_count
        self.index.add(stored)
        return stored

    def close(self) -> None:
        """Seal every segment; the group accepts no further appends."""
        self._closed = True
        for segment in self.segments:
            if not segment.sealed:
                segment.seal()

    @property
    def closed(self) -> bool:
        return self._closed

    def retire(self) -> None:
        """Release the group's segment memory (retention kicked in).

        Only closed, fully-durable groups may retire — an open group is
        still the producers' append target and non-durable bytes are the
        replication layer's working set. The group object itself stays in
        the streamlet's per-entry list so consumer ``group_pos`` indices
        remain stable; its record count keeps contributing to offset math,
        but its bytes are gone and any attempt to read them is a typed
        error at the cursor layer.
        """
        if self._retired:
            return
        if not self._closed:
            raise StorageError(f"cannot retire open group {self.group_id}")
        for segment in self.segments:
            if segment.durable_head < segment.head:
                raise StorageError(
                    f"cannot retire group {self.group_id}: segment "
                    f"{segment.segment_id} has non-durable bytes"
                )
        self._retired = True
        for segment in self.segments:
            self.allocator.free(segment)
        # Drop the frame references so the buffers can actually be
        # reclaimed; stale StoredChunk handles held elsewhere keep their
        # own segment alive but the group no longer serves them.
        self.segments = []
        self.index = GroupOffsetIndex()

    @property
    def retired(self) -> bool:
        return self._retired

    # -- read path ------------------------------------------------------------

    @property
    def record_count(self) -> int:
        return self._record_count

    @property
    def chunk_count(self) -> int:
        return sum(len(s.entries) for s in self.segments)

    def chunks(self) -> Iterator[StoredChunk]:
        """All stored chunks in append order (durable or not)."""
        for segment in self.segments:
            yield from segment.entries

    def chunk_at(self, index: int) -> StoredChunk:
        """O(1) access to the group's ``index``-th chunk in append order
        (backed by the offset index — this is the consumer hot path)."""
        return self.index._chunks[index]

    def durable_chunks(self) -> Iterator[StoredChunk]:
        """Stored chunks consumers may read, in append order."""
        for segment in self.segments:
            yield from segment.durable_entries()
            if segment.durable_head < segment.head:
                break

    def durable_record_count(self) -> int:
        count = 0
        for stored in self.durable_chunks():
            count += stored.record_count
        return count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Group(s{self.stream_id}/l{self.streamlet_id}/g{self.group_id}, "
            f"entry={self.entry}, segments={len(self.segments)}, "
            f"records={self._record_count}, closed={self._closed})"
        )
