"""Derived registry of the zero-copy surface shared by rules A006-A008.

The ownership rules need to know which calls hand out *borrowed* views,
which names are shared-memory rings, and which fields are documented to
hold borrowed bytes. None of that is configured: it is derived from the
analyzed tree itself, so the rules follow the code as it grows.

* A function or method whose return annotation mentions ``memoryview``
  or a ``*View`` type is a **borrow source** — the annotation is the
  documentation that its result aliases someone else's bytes.
* A class whose name ends in ``View`` constructs borrowed windows
  (``ChunkView(frame)`` wraps, it does not copy).
* A name assigned from a ``*Ring(...)`` call is **ring-typed**: its
  ``try_read``/``read`` results alias ring memory until ``consume``.
* A field declared with a trailing ``# borrows: <owner>`` comment at its
  ``__init__`` assignment (mirroring A001's ``# guarded-by:``) is the
  sanctioned place to store a borrowed view — the owner names whose
  lifetime the field is coupled to.
"""

from __future__ import annotations

import ast

from repro.analysis.core import ModuleSet, SourceModule, decorator_name

BORROW_MARK = "# borrows:"

#: Method names too generic to use for by-name borrow-source resolution:
#: they collide with dict/file/stdlib methods (``d.get``, ``fh.read``)
#: and would taint unrelated code. Ring reads are recognized separately,
#: gated on a ring-typed receiver.
GENERIC_NAMES = frozenset({"get", "read", "open", "pop", "copy", "next", "close"})

#: ``memoryview`` methods that return another window onto the same bytes.
VIEW_PROPAGATORS = frozenset({"cast", "toreadonly"})


def terminal_name(node: ast.expr) -> str | None:
    """``x`` for ``Name(x)``; ``y`` for ``a.b.y`` — by-name resolution."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` rendered as a dotted string (receiver identity)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _annotation_names(node: ast.expr | None) -> list[str]:
    """Every type name mentioned in an annotation, string forms included."""
    if node is None:
        return []
    names: list[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.append(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # String annotation: split on non-identifier characters.
            token = ""
            for ch in sub.value + " ":
                if ch.isalnum() or ch == "_":
                    token += ch
                else:
                    if token:
                        names.append(token)
                    token = ""
    return names


def annotation_is_viewlike(node: ast.expr | None) -> bool:
    """Does the annotation document a borrowed view (``memoryview``/``*View``)?"""
    return any(
        name == "memoryview" or name.endswith("View")
        for name in _annotation_names(node)
    )


def collect_view_functions(modules: ModuleSet) -> set[str]:
    """Names of in-tree functions whose return annotation is view-like.

    Resolution is by name (A005-style over-approximation): a call
    ``x.encoded_view()`` matches any in-tree def of that name. Names in
    :data:`GENERIC_NAMES` are excluded to avoid stdlib collisions.
    """
    names: set[str] = set()
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name in GENERIC_NAMES:
                    continue
                if annotation_is_viewlike(node.returns):
                    names.add(node.name)
    return names


def collect_view_properties(modules: ModuleSet) -> set[str]:
    """Subset of view functions that are ``@property`` (plain attribute
    access like ``chunk.payload_view`` yields a borrowed view)."""
    names: set[str] = set()
    for module in modules:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name not in GENERIC_NAMES
                and annotation_is_viewlike(node.returns)
                and any(decorator_name(d) == "property" for d in node.decorator_list)
            ):
                names.add(node.name)
    return names


def collect_view_classes(modules: ModuleSet) -> set[str]:
    """In-tree ``*View`` classes — constructing one borrows its argument."""
    return {
        node.name
        for module in modules
        for node in ast.walk(module.tree)
        if isinstance(node, ast.ClassDef) and node.name.endswith("View")
    }


def collect_ring_names(modules: ModuleSet) -> set[str]:
    """Terminal names ever assigned from a ``*Ring(...)`` call.

    ``self.requests = SpscRing(...)`` registers ``requests``; a local
    ``ring = SpscRing(buf)`` registers ``ring``. Receivers whose terminal
    name is registered are treated as rings by A007/A008.
    """
    names: set[str] = set()
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            callee = terminal_name(value.func)
            if callee is None or not callee.endswith("Ring"):
                continue
            for target in node.targets:
                name = terminal_name(target)
                if name is not None:
                    names.add(name)
    return names


def collect_sanitizer_functions(modules: ModuleSet) -> set[str]:
    """In-tree functions that re-validate bytes (CRC summaries, A008).

    A function counts as a sanitizer when its body computes or checks a
    CRC (``crc32c``/``crc32c_many``), calls ``verify_payload``/``verify``,
    decodes with ``verify=True``, or raises ``ChecksumError`` itself.
    One level deep only — enough for the in-tree helpers
    (``SegmentFileMeta.unpack``, ``recover_segment_file``, ...).
    """
    sanitizing_calls = {"crc32c", "crc32c_many", "crc32c_lanes", "verify_payload", "verify"}
    names: set[str] = set()
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    callee = terminal_name(sub.func)
                    if callee in sanitizing_calls:
                        names.add(node.name)
                        break
                    if callee is not None and any(
                        kw.arg == "verify"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                        for kw in sub.keywords
                    ):
                        names.add(node.name)
                        break
                if isinstance(sub, ast.Raise) and sub.exc is not None:
                    exc = sub.exc
                    if isinstance(exc, ast.Call):
                        exc = exc.func
                    if terminal_name(exc) == "ChecksumError":
                        names.add(node.name)
                        break
    return names


def borrow_fields(module: SourceModule, cls: ast.ClassDef) -> dict[str, tuple[str, int]]:
    """``# borrows:`` declarations in this class's ``__init__``.

    Returns attr -> (owner, declaration line). The owner is the first
    token after the mark; trailing prose is welcome documentation.
    An empty owner is recorded as ``""`` so A006 can flag the grammar.
    """
    declared: dict[str, tuple[str, int]] = {}
    init = next(
        (
            n
            for n in cls.body
            if isinstance(n, ast.FunctionDef) and n.name == "__init__"
        ),
        None,
    )
    if init is None:
        return declared
    for node in ast.walk(init):
        target: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
        elif isinstance(node, ast.AnnAssign):
            target = node.target
        if target is None:
            continue
        attr: str | None = None
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            attr = target.attr
        if attr is None:
            continue
        text = module.line_text(node.lineno)
        mark = text.find(BORROW_MARK)
        if mark >= 0:
            rest = text[mark + len(BORROW_MARK) :].strip()
            owner = rest.split()[0] if rest else ""
            declared[attr] = (owner, node.lineno)
    return declared


def line_has_borrow_mark(module: SourceModule, lineno: int) -> bool:
    """Line-level escape: an explicit ``# borrows: <owner>`` on the
    flagged statement documents the lifetime coupling in place."""
    text = module.line_text(lineno)
    mark = text.find(BORROW_MARK)
    if mark < 0:
        return False
    return bool(text[mark + len(BORROW_MARK) :].strip())
