"""Project-specific static analysis: concurrency & determinism invariants.

The repository holds two worlds with opposite failure modes: the
discrete-event simulation must stay deterministic and non-blocking (the
paper figures replay bit-for-bit from a seed), while the threaded live
mode must guard every piece of shared state — and the zero-copy data
path in between depends on manual ownership discipline (borrowed views,
pooled buffers, CRC'd boundary crossings) that only a whole-program
pass can check. ``python -m repro.analysis`` enforces all of it with
eight AST rules, run as a blocking CI job:

========  ==============================================================
A001      unguarded-shared-mutation — writes to ``# guarded-by:``
          declared attributes outside their ``with self.<lock>:`` block
A002      sim-purity — no ``threading`` / wall-clock ``time`` /
          process-global ``random`` reachable from the sim roots
A003      transport-conformance — Transport/SystemAdapter/LiveService
          implementations structurally match the protocol signatures
A004      message-immutability — wire-facing dataclasses are
          ``frozen=True, slots=True`` with no shared mutable defaults
A005      lock-order — the static lock-acquisition graph is acyclic and
          never re-acquires a non-reentrant lock
A006      view-escape — borrowed ``memoryview``/``*View`` objects must
          not be stored, returned, or captured beyond the owner's
          lifetime without a ``# borrows: <owner>`` contract
A007      pool/resource-balance — every ``rent``/``open``/shm attach /
          ring peek reaches its release/close/consume on all CFG paths,
          exception edges included (leaks and double-releases traced)
A008      boundary-revalidation — bytes from a ring, ``.seg`` file, or
          raw read must pass CRC re-validation before any unverified
          chunk/record decode touches them
========  ==============================================================

Findings are machine-readable (``path:line:col: RULE message``, or
``--format json``); suppression needs ``# noqa: A00x -- <justification>``
(rule A000 flags justification-less suppressions). See DESIGN.md,
"Static analysis & invariants".
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from pathlib import Path

from repro.analysis import (
    balance,
    boundary,
    conformance,
    guards,
    immutability,
    lockorder,
    ownership,
    purity,
)
from repro.analysis.core import (
    Finding,
    ModuleSet,
    apply_suppressions,
    load_paths,
)

RuleCheck = Callable[[ModuleSet], Iterator[Finding]]

#: Rule id -> (one-line summary, check function).
ALL_RULES: dict[str, tuple[str, RuleCheck]] = {
    guards.RULE_ID: ("unguarded-shared-mutation", guards.check),
    purity.RULE_ID: ("sim-purity", purity.check),
    conformance.RULE_ID: ("transport-conformance", conformance.check),
    immutability.RULE_ID: ("message-immutability", immutability.check),
    lockorder.RULE_ID: ("lock-order", lockorder.check),
    ownership.RULE_ID: ("view-escape", ownership.check),
    balance.RULE_ID: ("pool-resource-balance", balance.check),
    boundary.RULE_ID: ("boundary-revalidation", boundary.check),
}


def run_analysis(
    paths: list[str | Path], rule_ids: list[str] | None = None
) -> list[Finding]:
    """Run the selected rules (default: all) over ``paths``.

    Returns the surviving findings, suppression already applied, sorted
    by location. Unparseable files surface as A000 findings.
    """
    selected = rule_ids or list(ALL_RULES)
    unknown = [r for r in selected if r not in ALL_RULES]
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
    modules = load_paths(paths)
    findings: list[Finding] = list(modules.errors)
    for rule_id in selected:
        _, checker = ALL_RULES[rule_id]
        findings.extend(checker(modules))
    return apply_suppressions(findings, modules)


__all__ = [
    "ALL_RULES",
    "Finding",
    "ModuleSet",
    "load_paths",
    "run_analysis",
]
