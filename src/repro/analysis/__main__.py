"""CLI: ``python -m repro.analysis [paths...]``.

Exit status: 0 clean, 1 findings, 2 usage error. Output is one finding
per line (``path:line:col: RULE message``) or a JSON array with
``--format json`` — both stable, for CI and editor integration.

``--changed-only`` keeps the pass whole-program (the ownership graph,
lock registry, and import reachability always see the full tree) but
reports only findings anchored in files changed since the merge-base
with ``--diff-base`` (default: ``origin/main``, falling back to
``main``) plus untracked files — the pre-commit shape; see
``scripts/precommit-analysis.sh``.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.analysis import ALL_RULES, run_analysis


def _git(*args: str) -> str | None:
    try:
        proc = subprocess.run(
            ["git", *args], capture_output=True, text=True, check=False
        )
    except OSError:
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout


def changed_files(diff_base: str | None) -> set[Path] | None:
    """Files changed vs. the merge-base, plus untracked ones (resolved).

    Returns None when git is unavailable or no base ref resolves — the
    caller falls back to reporting everything rather than hiding
    findings behind a broken diff.
    """
    bases = [diff_base] if diff_base else ["origin/main", "main"]
    merge_base = None
    for base in bases:
        out = _git("merge-base", "HEAD", base)
        if out is not None and out.strip():
            merge_base = out.strip()
            break
    if merge_base is None:
        return None
    changed = _git("diff", "--name-only", merge_base)
    untracked = _git("ls-files", "--others", "--exclude-standard")
    if changed is None:
        return None
    names = changed.splitlines() + (untracked or "").splitlines()
    return {Path(n).resolve() for n in names if n.strip()}


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Concurrency & determinism linter for this repository.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all), e.g. A001,A005",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="fmt",
        help="findings output format",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "analyze the whole program but report only findings in files "
            "changed since the merge-base (plus untracked files)"
        ),
    )
    parser.add_argument(
        "--diff-base",
        help="base ref for --changed-only (default: origin/main, then main)",
    )
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule_id, (summary, _) in ALL_RULES.items():
            print(f"{rule_id}  {summary}")
        return 0

    rule_ids = (
        [r.strip() for r in options.rules.split(",") if r.strip()]
        if options.rules
        else None
    )
    try:
        findings = run_analysis(list(options.paths), rule_ids)
    except ValueError as exc:
        parser.error(str(exc))

    if options.changed_only:
        changed = changed_files(options.diff_base)
        if changed is None:
            print(
                "warning: --changed-only could not resolve a merge-base; "
                "reporting all findings",
                file=sys.stderr,
            )
        else:
            findings = [f for f in findings if Path(f.path).resolve() in changed]

    if options.fmt == "json":
        print(json.dumps([f.to_json() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.render())
        if findings:
            print(f"\n{len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
