"""CLI: ``python -m repro.analysis [paths...]``.

Exit status: 0 clean, 1 findings, 2 usage error. Output is one finding
per line (``path:line:col: RULE message``) or a JSON array with
``--format json`` — both stable, for CI and editor integration.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.analysis import ALL_RULES, run_analysis


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Concurrency & determinism linter for this repository.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all), e.g. A001,A005",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="fmt",
        help="findings output format",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule_id, (summary, _) in ALL_RULES.items():
            print(f"{rule_id}  {summary}")
        return 0

    rule_ids = (
        [r.strip() for r in options.rules.split(",") if r.strip()]
        if options.rules
        else None
    )
    try:
        findings = run_analysis(list(options.paths), rule_ids)
    except ValueError as exc:
        parser.error(str(exc))

    if options.fmt == "json":
        print(json.dumps([f.to_json() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.render())
        if findings:
            print(f"\n{len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
