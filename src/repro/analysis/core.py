"""Shared infrastructure for the project linter: sources, findings, noqa.

The pass is deliberately whole-program: every rule receives the full
:class:`ModuleSet` so graph rules (import reachability, lock order) see
the same tree the point rules do. Modules are parsed once, here.

Suppression follows the ruff convention with one extra requirement: a
finding is only silenced by ``# noqa: A00x -- <justification>`` on the
flagged line; the justification text is mandatory. A bare
``# noqa: A00x`` does not suppress — it *adds* an :data:`META_RULE`
finding, so silencing an invariant always leaves a reviewed reason in
the diff.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path

#: Rule id reserved for the pass itself (syntax errors, bad suppressions).
META_RULE = "A000"

_NOQA_RE = re.compile(
    r"#\s*noqa:\s*(?P<codes>[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*)"
    r"(?:\s*(?:--|-)\s*(?P<why>.*))?"
)


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation, anchored to a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass(slots=True)
class SourceModule:
    """One parsed source file plus its dotted module name."""

    path: Path
    name: str
    tree: ast.Module
    lines: list[str] = field(repr=False)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class ModuleSet:
    """The analyzed tree: modules indexed by dotted name."""

    def __init__(self, modules: list[SourceModule], errors: list[Finding]) -> None:
        self.modules = modules
        self.errors = errors
        self.by_name: dict[str, SourceModule] = {m.name: m for m in modules}

    def __iter__(self) -> Iterator[SourceModule]:
        return iter(self.modules)


def module_name_for(path: Path) -> str:
    """Dotted name derived by walking up while ``__init__.py`` exists.

    ``src/repro/sim/engine.py`` -> ``repro.sim.engine`` (``src`` is not a
    package), and a fixture tree rooted at a non-package directory names
    its modules relative to that root.
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    if not parts:  # a lone __init__.py outside any package chain
        parts = [path.parent.name]
    return ".".join(parts)


def load_paths(paths: list[str | Path]) -> ModuleSet:
    """Parse every ``*.py`` under ``paths`` (files or directories)."""
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    modules: list[SourceModule] = []
    errors: list[Finding] = []
    seen: set[Path] = set()
    for file in files:
        file = file.resolve()
        if file in seen:
            continue
        seen.add(file)
        text = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(text, filename=str(file))
        except SyntaxError as exc:
            errors.append(
                Finding(
                    path=str(file),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    rule=META_RULE,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        modules.append(
            SourceModule(
                path=file,
                name=module_name_for(file),
                tree=tree,
                lines=text.splitlines(),
            )
        )
    return ModuleSet(modules, errors)


def apply_suppressions(
    findings: list[Finding], modules: ModuleSet
) -> list[Finding]:
    """Drop findings suppressed by a justified noqa; flag unjustified ones.

    Returns the surviving findings sorted by location. An unjustified
    ``# noqa: A00x`` produces one :data:`META_RULE` finding per line, on
    top of the finding it failed to suppress.
    """
    by_path = {str(m.path): m for m in modules}
    kept: list[Finding] = []
    bad_noqa: set[tuple[str, int]] = set()
    for finding in findings:
        module = by_path.get(finding.path)
        match = _NOQA_RE.search(module.line_text(finding.line)) if module else None
        if match is not None:
            codes = {c.strip() for c in match.group("codes").split(",")}
            why = (match.group("why") or "").strip()
            if finding.rule in codes:
                if why:
                    continue  # justified suppression
                bad_noqa.add((finding.path, finding.line))
        kept.append(finding)
    for path, line in bad_noqa:
        kept.append(
            Finding(
                path=path,
                line=line,
                col=0,
                rule=META_RULE,
                message=(
                    "suppression requires a justification: "
                    "write `# noqa: A00x -- <why this is safe>`"
                ),
            )
        )
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept


# -- small AST helpers shared by the rules --------------------------------------


def is_self_attr(node: ast.expr, attr: str | None = None) -> bool:
    """``self.<attr>`` (any attribute when ``attr`` is None)."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


def self_attr_name(node: ast.expr) -> str | None:
    """The ``X`` of ``self.X``, else None."""
    if is_self_attr(node):
        return node.attr  # type: ignore[union-attr]
    return None


def is_type_checking_block(node: ast.stmt) -> bool:
    """``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:`` guard."""
    if not isinstance(node, ast.If):
        return False
    test = node.test
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    return isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"


def decorator_name(node: ast.expr) -> str | None:
    """Bare name of a decorator: ``dataclass`` for ``@dataclass(...)`` or
    ``@dataclasses.dataclass``."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None
