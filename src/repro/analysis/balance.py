"""A007: every acquire reaches a release on all paths (pool/resource balance).

Path-sensitive dataflow over the statement CFG (:mod:`cfg`), with
exception edges. Tracked acquisitions:

* ``x = <pool>.rent()`` — released by ``<pool>.release(x)``;
* ``x = open(...)`` as a builtin call (``with open(...)`` is
  auto-balanced and never tracked) — released by ``x.close()``;
* ``x = SharedMemory(...)`` or a call to an in-tree function annotated
  ``-> SharedMemory`` — released by ``x.close()`` or any
  ``*close*``-named helper taking ``x`` (``_close_shm(x)``);
* a **ring peek**: ``item = <ring>.try_read()`` / ``.read()`` on a
  ring-typed receiver must reach ``<ring>.consume()`` before the
  function exits — an unconsumed slot wedges the SPSC ring forever.
  ``try_read`` may return None; ``if item is None`` branch tests refine
  the maybe-peeked state, so the idle path is not flagged.

Ownership transfers end tracking: assigning the resource to a field or
subscript, returning/yielding it, or passing it (as a bare name) to a
non-release call hands the balance obligation to the new owner.

Flagged: a held resource reaching function exit — normal or via an
exception edge — (**leak**, with the offending line path in the
finding), releasing twice (**double-release**), overwriting a held
resource, and ``consume()`` with no record peeked. Exception edges
propagate the *pre*-statement state (the acquire didn't complete),
except for releasing statements, whose own hypothetical raise must not
resurrect the resource they just released.

The walk is a worklist over (node, state) pairs with a global cap
(:data:`STATE_CAP`); pathological functions bail out silently rather
than hang — the property tests in ``tests/analysis`` pin this bound.
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Iterator
from dataclasses import dataclass

from repro.analysis.core import Finding, ModuleSet, SourceModule
from repro.analysis.surface import collect_ring_names, dotted_name, terminal_name
from repro.analysis.cfg import CFG, BENIGN_CALLS, build_cfg

RULE_ID = "A007"

#: Bail-out bound on visited (node, state) pairs per function.
STATE_CAP = 20000

# Resource status
_HELD = "held"
_RELEASED = "released"

# Ring slot status
_R_IDLE = "idle"
_R_MAYBE = "maybe"  # try_read result not yet None-tested
_R_PEEKED = "peeked"


@dataclass(frozen=True, slots=True)
class _Res:
    var: str
    kind: str
    line: int
    status: str


@dataclass(frozen=True, slots=True)
class _RingSlot:
    ring: str  # dotted receiver, e.g. "requests" / "self._ring"
    status: str
    var: str  # the peeked name (refinement key; "" when idle/peeked-by-read)
    line: int


# State = (resources, rings), both sorted tuples => hashable, canonical.
_State = tuple[tuple[_Res, ...], tuple[_RingSlot, ...]]

_EMPTY: _State = ((), ())


def _with_res(state: _State, res: tuple[_Res, ...]) -> _State:
    return (tuple(sorted(res, key=lambda r: r.var)), state[1])


def _with_rings(state: _State, rings: tuple[_RingSlot, ...]) -> _State:
    return (state[0], tuple(sorted(rings, key=lambda r: r.ring)))


@dataclass(slots=True)
class _Effect:
    """One state transition extracted from a statement."""

    op: str  # acquire | release | transfer | peek | consume
    var: str = ""
    kind: str = ""
    ring: str = ""
    maybe_none: bool = False


class _FunctionAnalysis:
    def __init__(
        self,
        module: SourceModule,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        ring_names: frozenset[str],
        shm_fns: frozenset[str],
    ) -> None:
        self.module = module
        self.fn = fn
        self.ring_names = ring_names
        self.shm_fns = shm_fns
        self.findings: list[Finding] = []
        self._flagged: set[tuple[int, str]] = set()
        self.visited = 0
        self.bailed = False

    def flag(self, line: int, col: int, message: str, dedup: str) -> None:
        key = (line, dedup)
        if key in self._flagged:
            return
        self._flagged.add(key)
        self.findings.append(
            Finding(
                path=str(self.module.path),
                line=line,
                col=col,
                rule=RULE_ID,
                message=message,
            )
        )

    # -- effect extraction ---------------------------------------------------

    def _acquire_kind(self, call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "rent":
            return "pool buffer"
        if isinstance(func, ast.Name) and func.id == "open":
            return "file handle"
        callee = terminal_name(func)
        if callee == "SharedMemory" or callee in self.shm_fns:
            return "shared-memory segment"
        return None

    def _ring_receiver(self, func: ast.expr) -> str | None:
        if not isinstance(func, ast.Attribute):
            return None
        receiver = func.value
        name = terminal_name(receiver)
        if name is None or name not in self.ring_names:
            return None
        return dotted_name(receiver) or name

    def _release_target(self, call: ast.Call) -> str | None:
        """The variable a call releases, if it is a releasing call."""
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr == "release" and call.args:
                arg = call.args[0]
                if isinstance(arg, ast.Name):
                    return arg.id
            if func.attr == "close" and isinstance(func.value, ast.Name):
                return func.value.id
        callee = terminal_name(func)
        if callee is not None and callee != "close" and "close" in callee:
            for arg in call.args:
                if isinstance(arg, ast.Name):
                    return arg.id
        return None

    def _value_effects(self, value: ast.expr, effects: list[_Effect]) -> tuple[
        str | None, tuple[str, bool] | None
    ]:
        """Effects of evaluating ``value``; returns (acquire kind, ring peek)."""
        if not isinstance(value, ast.Call):
            return None, None
        kind = self._acquire_kind(value)
        if kind is not None:
            self._arg_transfers(value, effects)
            return kind, None
        if isinstance(value.func, ast.Attribute) and value.func.attr in (
            "try_read",
            "read",
        ):
            ring = self._ring_receiver(value.func)
            if ring is not None:
                # Both forms can return None (timeout / empty), so both
                # start maybe-peeked until a None test refines them.
                return None, (ring, True)
        released = self._release_target(value)
        if released is not None:
            effects.append(_Effect("release", var=released))
        else:
            self._arg_transfers(value, effects)
        return None, None

    def _arg_transfers(self, call: ast.Call, effects: list[_Effect]) -> None:
        callee = terminal_name(call.func)
        if isinstance(call.func, ast.Name) and call.func.id in BENIGN_CALLS:
            return
        for arg in [*call.args, *[kw.value for kw in call.keywords]]:
            if isinstance(arg, ast.Name):
                effects.append(_Effect("transfer", var=arg.id))
            elif isinstance(arg, ast.Starred) and isinstance(arg.value, ast.Name):
                effects.append(_Effect("transfer", var=arg.value.id))
        del callee

    def effects(self, stmt: ast.stmt) -> tuple[list[_Effect], bool]:
        """(effects, is_releasing) for one CFG statement node."""
        effects: list[_Effect] = []
        releasing = False
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = stmt.value
            if value is None:
                return effects, releasing
            kind, peek = self._value_effects(value, effects)
            targets: list[ast.expr]
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            else:
                targets = [stmt.target]
            if kind is not None:
                tracked = False
                for target in targets:
                    if isinstance(target, ast.Name):
                        effects.append(_Effect("acquire", var=target.id, kind=kind))
                        tracked = True
                if not tracked:
                    pass  # field/subscript target: transfer at birth
            elif peek is not None:
                ring, maybe = peek
                var = ""
                for target in targets:
                    if isinstance(target, ast.Name):
                        var = target.id
                effects.append(
                    _Effect("peek", ring=ring, var=var, maybe_none=maybe)
                )
            else:
                # Plain assignment: a Name value moving into a field /
                # subscript transfers ownership.
                if isinstance(value, ast.Name):
                    for target in targets:
                        if isinstance(target, (ast.Attribute, ast.Subscript)):
                            effects.append(_Effect("transfer", var=value.id))
            releasing = any(e.op == "release" for e in effects)
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            released = self._release_target(call)
            if released is not None:
                effects.append(_Effect("release", var=released))
                releasing = True
            elif isinstance(call.func, ast.Attribute) and call.func.attr == "consume":
                ring = self._ring_receiver(call.func)
                if ring is not None:
                    effects.append(_Effect("consume", ring=ring))
                    releasing = True
                else:
                    self._arg_transfers(call, effects)
            else:
                self._arg_transfers(call, effects)
        elif isinstance(stmt, (ast.Return,)):
            if stmt.value is not None:
                for sub in ast.walk(stmt.value):
                    if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                        effects.append(_Effect("transfer", var=sub.id))
        elif isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, (ast.Yield, ast.YieldFrom)
        ):
            value = stmt.value.value
            if value is not None:
                for sub in ast.walk(value):
                    if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                        effects.append(_Effect("transfer", var=sub.id))
        return effects, releasing

    # -- state transition ----------------------------------------------------

    def apply(self, stmt: ast.stmt, state: _State) -> tuple[_State, bool]:
        effects, releasing = self.effects(stmt)
        res = list(state[0])
        rings = list(state[1])
        line = stmt.lineno
        col = stmt.col_offset
        for eff in effects:
            if eff.op == "acquire":
                prior = next((r for r in res if r.var == eff.var), None)
                if prior is not None:
                    if prior.status == _HELD:
                        self.flag(
                            line,
                            col,
                            (
                                f"`{eff.var}` reassigned while still holding the "
                                f"{prior.kind} acquired at line {prior.line} — "
                                f"the old {prior.kind} leaks"
                            ),
                            f"overwrite:{eff.var}",
                        )
                    res.remove(prior)
                res.append(_Res(eff.var, eff.kind, line, _HELD))
            elif eff.op == "release":
                prior = next((r for r in res if r.var == eff.var), None)
                if prior is None:
                    continue  # caller-owned: release of an untracked name
                if prior.status == _RELEASED:
                    self.flag(
                        line,
                        col,
                        (
                            f"double release of `{eff.var}` ({prior.kind} "
                            f"acquired at line {prior.line}, already released)"
                        ),
                        f"double:{eff.var}",
                    )
                else:
                    res.remove(prior)
                    res.append(_Res(prior.var, prior.kind, prior.line, _RELEASED))
            elif eff.op == "transfer":
                prior = next((r for r in res if r.var == eff.var), None)
                if prior is not None and prior.status == _HELD:
                    res.remove(prior)
            elif eff.op == "peek":
                prior = next((r for r in rings if r.ring == eff.ring), None)
                if prior is not None:
                    rings.remove(prior)
                status = _R_MAYBE if eff.maybe_none else _R_PEEKED
                rings.append(_RingSlot(eff.ring, status, eff.var, line))
            elif eff.op == "consume":
                prior = next((r for r in rings if r.ring == eff.ring), None)
                if prior is None or prior.status == _R_IDLE:
                    self.flag(
                        line,
                        col,
                        (
                            f"`{eff.ring}.consume()` with no record peeked on "
                            f"this path (double consume or consume-before-read)"
                        ),
                        f"consume:{eff.ring}",
                    )
                else:
                    if prior is not None:
                        rings.remove(prior)
                    rings.append(_RingSlot(eff.ring, _R_IDLE, "", line))
        new_state = _with_rings(_with_res(state, tuple(res)), tuple(rings))
        return new_state, releasing

    @staticmethod
    def refine(state: _State, var: str, is_none: bool) -> _State | None:
        """Apply an ``if x is None`` branch edge to maybe-peeked rings.

        Returns None when the branch is infeasible for this state (the
        slot is definitely peeked but the edge asserts the peek variable
        is None — impossible, prune the path).
        """
        rings = list(state[1])
        changed = False
        for slot in list(rings):
            if slot.status == _R_PEEKED and slot.var == var and is_none:
                return None  # peeked record known non-None: branch infeasible
            if slot.status == _R_MAYBE and slot.var == var:
                rings.remove(slot)
                if is_none:
                    rings.append(_RingSlot(slot.ring, _R_IDLE, "", slot.line))
                else:
                    rings.append(_RingSlot(slot.ring, _R_PEEKED, slot.var, slot.line))
                changed = True
        if not changed:
            return state
        return _with_rings(state, tuple(rings))

    # -- worklist ------------------------------------------------------------

    def run(self) -> None:
        cfg = build_cfg(self.fn)
        seen: set[tuple[int, _State]] = set()
        preds: dict[tuple[int, _State], tuple[int, _State] | None] = {}
        work: deque[tuple[int, _State]] = deque()
        start = (cfg.entry, _EMPTY)
        work.append(start)
        seen.add(start)
        preds[start] = None
        while work:
            if self.visited >= STATE_CAP:
                self.bailed = True
                return
            node, state = work.popleft()
            self.visited += 1
            if node == cfg.exit or node == cfg.exc_exit:
                self._check_exit(cfg, node, state, preds)
                continue
            stmt = cfg.stmts[node]
            if stmt is None:
                post, releasing = state, False
            else:
                post, releasing = self.apply(stmt, state)
            for edge in cfg.succ[node]:
                nxt_state = state if (edge.exc and not releasing) else post
                if edge.refine is not None:
                    refined = self.refine(nxt_state, *edge.refine)
                    if refined is None:
                        continue
                    nxt_state = refined
                key = (edge.target, nxt_state)
                if key not in seen:
                    seen.add(key)
                    preds[key] = (node, state)
                    work.append(key)

    def _trace(
        self,
        cfg: CFG,
        key: tuple[int, _State],
        preds: dict[tuple[int, _State], tuple[int, _State] | None],
    ) -> str:
        lines: list[int] = []
        cur: tuple[int, _State] | None = key
        while cur is not None:
            node = cur[0]
            if cfg.stmts[node] is not None:
                line = cfg.lines[node]
                if not lines or lines[-1] != line:
                    lines.append(line)
            cur = preds.get(cur)
        lines.reverse()
        if len(lines) > 8:
            lines = lines[:3] + lines[-5:]
        return " -> ".join(str(line) for line in lines) if lines else "entry"

    def _check_exit(
        self,
        cfg: CFG,
        node: int,
        state: _State,
        preds: dict[tuple[int, _State], tuple[int, _State] | None],
    ) -> None:
        how = "an exception path" if node == cfg.exc_exit else "a return path"
        for res in state[0]:
            if res.status != _HELD:
                continue
            trace = self._trace(cfg, (node, state), preds)
            self.flag(
                res.line,
                0,
                (
                    f"{res.kind} `{res.var}` acquired here leaks on {how} "
                    f"out of `{self.fn.name}` (path: lines {trace})"
                ),
                f"leak:{res.var}:{how}",
            )
        for slot in state[1]:
            if slot.status == _R_IDLE:
                continue
            maybe = " (and its None case is never even tested)" if (
                slot.status == _R_MAYBE
            ) else ""
            trace = self._trace(cfg, (node, state), preds)
            self.flag(
                slot.line,
                0,
                (
                    f"record peeked from `{slot.ring}` here is never consumed "
                    f"on {how} out of `{self.fn.name}`{maybe} — the ring slot "
                    f"wedges (path: lines {trace})"
                ),
                f"unconsumed:{slot.ring}:{how}",
            )


def _collect_shm_functions(modules: ModuleSet) -> set[str]:
    """In-tree functions annotated ``-> SharedMemory`` (acquire wrappers)."""
    names: set[str] = set()
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                returns = node.returns
                if returns is None:
                    continue
                for sub in ast.walk(returns):
                    if (
                        isinstance(sub, (ast.Name, ast.Attribute))
                        and terminal_name(sub) == "SharedMemory"
                    ):
                        names.add(node.name)
                        break
    return names


def analyze_function(
    module: SourceModule,
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ring_names: frozenset[str],
    shm_fns: frozenset[str],
) -> tuple[list[Finding], int, bool]:
    """Run A007 on one function; returns (findings, states visited, bailed).

    Exposed for the termination/bound property tests.
    """
    analysis = _FunctionAnalysis(module, fn, ring_names, shm_fns)
    analysis.run()
    if analysis.bailed:
        return [], analysis.visited, True
    return analysis.findings, analysis.visited, False


def check(modules: ModuleSet) -> Iterator[Finding]:
    ring_names = frozenset(collect_ring_names(modules))
    shm_fns = frozenset(_collect_shm_functions(modules))
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings, _, _ = analyze_function(module, node, ring_names, shm_fns)
                yield from findings
