"""A004 message-immutability.

RPC messages cross thread boundaries by reference in the live drivers
(the in-process transports hand the *same* object to the handler), so a
mutable message is a data race waiting for its second thread — and in
the sim it silently breaks replayability when a handler "fixes up" a
request in place. Every dataclass in a wire-facing module (``messages``
modules and the ``wire`` package) must therefore be declared
``@dataclass(frozen=True, slots=True)`` — slots both catch stray
attribute writes and keep the hot-path objects small — and no field may
default to a shared mutable object (use ``field(default_factory=...)``).

The one deliberate exception in this tree, :class:`repro.wire.chunk
.Chunk`, carries a justified ``# noqa: A004`` at its declaration; see
DESIGN.md for the suppression contract.

The zero-copy decode views (:mod:`repro.wire.views`) are plain classes,
not dataclasses — laziness needs memoizing attributes — but they share
the same hot-path contract: a ``*View`` class in the ``wire`` package
must declare ``__slots__``, so a typo'd attribute write fails loudly
instead of silently growing a ``__dict__`` on millions of per-chunk
objects.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import Finding, ModuleSet, decorator_name

RULE_ID = "A004"


def applies_to(name: str) -> bool:
    parts = name.split(".")
    return parts[-1] == "messages" or "wire" in parts


def _dataclass_decorator(cls: ast.ClassDef) -> ast.expr | None:
    for dec in cls.decorator_list:
        if decorator_name(dec) == "dataclass":
            return dec
    return None


def _keyword_true(call: ast.expr | None, name: str) -> bool:
    if not isinstance(call, ast.Call):
        return False
    for kw in call.keywords:
        if kw.arg == name:
            return isinstance(kw.value, ast.Constant) and kw.value.value is True
    return False


_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "deque"})


def _mutable_default(value: ast.expr | None) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else None
        # `field(default_factory=list)` is the sanctioned spelling; a
        # direct `list()` default would be shared across instances.
        return name in _MUTABLE_CALLS
    return False


def _declares_slots(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


def check(modules: ModuleSet) -> Iterator[Finding]:
    for module in modules:
        if not applies_to(module.name):
            continue
        in_wire = "wire" in module.name.split(".")
        for cls in [
            n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)
        ]:
            dec = _dataclass_decorator(cls)
            if dec is None:
                if (
                    in_wire
                    and cls.name.endswith("View")
                    and not _declares_slots(cls)
                ):
                    yield Finding(
                        path=str(module.path),
                        line=cls.lineno,
                        col=cls.col_offset,
                        rule=RULE_ID,
                        message=(
                            f"wire view class {cls.name} must declare "
                            f"__slots__ — per-chunk hot-path objects must "
                            f"not grow a __dict__"
                        ),
                    )
                continue
            missing = [
                flag
                for flag in ("frozen", "slots")
                if not _keyword_true(dec, flag)
            ]
            if missing:
                yield Finding(
                    path=str(module.path),
                    line=cls.lineno,
                    col=cls.col_offset,
                    rule=RULE_ID,
                    message=(
                        f"wire-facing dataclass {cls.name} must be declared "
                        f"@dataclass({', '.join(f'{m}=True' for m in missing)}"
                        f"{' ...' if len(missing) < 2 else ''}) — messages "
                        f"cross threads by reference"
                    ),
                )
            for stmt in cls.body:
                if isinstance(stmt, ast.AnnAssign) and _mutable_default(
                    stmt.value
                ):
                    yield Finding(
                        path=str(module.path),
                        line=stmt.lineno,
                        col=stmt.col_offset,
                        rule=RULE_ID,
                        message=(
                            f"field of {cls.name} has a shared mutable "
                            f"default; use field(default_factory=...)"
                        ),
                    )
