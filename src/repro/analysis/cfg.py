"""Statement-level control-flow graphs with exception edges (rule A007).

One node per statement plus three pseudo-nodes: ``entry``, ``exit``
(normal return / fall-off) and ``exc_exit`` (an exception escapes the
function). Edges carry two annotations:

* ``exc`` — the edge is taken when the statement raises. A statement can
  raise when it contains a call (benign builtins like ``len`` excluded),
  or is ``raise``/``assert``. Exception edges propagate the state *before*
  the statement (the acquire/release it performs did not complete).
* ``refine`` — ``(var, is_none)``: the branch edge of an ``if x is None``
  style test, used to split a maybe-peeked ring state.

``try/finally`` is modeled by duplicating the ``finally`` body once per
continuation kind that reaches it (normal, exception, break, continue,
return) — the classic lowering; bodies are small and the duplication
keeps the dataflow a plain edge walk. ``except`` clauses that catch
``Exception``/``BaseException`` (or everything) terminate the exception
edge; narrower handlers keep an escape edge for the types they miss.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace

#: Builtin calls that cannot meaningfully raise on the paths we model.
BENIGN_CALLS = frozenset(
    {
        "len",
        "isinstance",
        "issubclass",
        "bool",
        "int",
        "float",
        "str",
        "bytes",
        "bytearray",
        "repr",
        "format",
        "min",
        "max",
        "abs",
        "round",
        "getattr",
        "hasattr",
        "setattr",
        "callable",
        "range",
        "sorted",
        "reversed",
        "list",
        "tuple",
        "dict",
        "set",
        "frozenset",
        "sum",
        "any",
        "all",
        "enumerate",
        "zip",
        "id",
        "type",
        "print",
        "divmod",
        "ord",
        "chr",
        "hash",
        "iter",
        "vars",
    }
)

#: Exception types whose handler is treated as catching everything.
CATCH_ALL_TYPES = frozenset({"Exception", "BaseException"})


@dataclass(frozen=True, slots=True)
class Edge:
    target: int
    exc: bool = False
    #: ``(variable, is_none)``: taking this edge means ``variable`` is
    #: (or is not) None — branch refinement for peeked-record checks.
    refine: tuple[str, bool] | None = None


@dataclass(slots=True)
class CFG:
    """The graph: ``stmts[i]`` is the AST statement at node ``i`` (None
    for pseudo-nodes), ``succ[i]`` its out-edges."""

    stmts: list[ast.stmt | None] = field(default_factory=list)
    labels: list[str] = field(default_factory=list)
    lines: list[int] = field(default_factory=list)
    succ: list[list[Edge]] = field(default_factory=list)
    entry: int = 0
    exit: int = 0
    exc_exit: int = 0


@dataclass(frozen=True, slots=True)
class _Ctx:
    nxt: int
    exc: int
    ret: int
    brk: int | None = None
    cont: int | None = None


def _contains_call(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            callee = sub.func
            if isinstance(callee, ast.Name) and callee.id in BENIGN_CALLS:
                continue
            return True
    return False


def may_raise(stmt: ast.stmt) -> bool:
    """Can executing this one statement raise (shallow: not its body)?"""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return False
    headers: list[ast.AST]
    if isinstance(stmt, ast.If):
        headers = [stmt.test]
    elif isinstance(stmt, ast.While):
        headers = [stmt.test]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        headers = [stmt.iter]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        headers = [item.context_expr for item in stmt.items]
    else:
        headers = [stmt]
    return any(_contains_call(h) for h in headers)


def _refinement(test: ast.expr) -> tuple[str, bool, bool] | None:
    """``(var, none_on_true, none_on_false)`` encoded as (var, true_is_none)
    pairs; returns ``(var, none_when_true)`` with the false edge negated.

    Recognized shapes: ``x is None``, ``x is not None``, ``not x``, ``x``.
    """
    if (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Name)
        and len(test.ops) == 1
        and isinstance(test.ops[0], (ast.Is, ast.IsNot))
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        return (test.left.id, isinstance(test.ops[0], ast.Is), True)
    if (
        isinstance(test, ast.UnaryOp)
        and isinstance(test.op, ast.Not)
        and isinstance(test.operand, ast.Name)
    ):
        return (test.operand.id, True, True)
    if isinstance(test, ast.Name):
        return (test.id, False, True)
    return None


def _is_const_true(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value) is True


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()

    def node(self, stmt: ast.stmt | None, label: str, line: int) -> int:
        idx = len(self.cfg.stmts)
        self.cfg.stmts.append(stmt)
        self.cfg.labels.append(label)
        self.cfg.lines.append(line)
        self.cfg.succ.append([])
        return idx

    def edge(self, src: int, edge: Edge) -> None:
        self.cfg.succ[src].append(edge)

    # -- statement lowering --------------------------------------------------

    def chain(self, stmts: list[ast.stmt], ctx: _Ctx) -> int:
        entry = ctx.nxt
        for stmt in reversed(stmts):
            entry = self.stmt(stmt, replace(ctx, nxt=entry))
        return entry

    def stmt(self, stmt: ast.stmt, ctx: _Ctx) -> int:
        if isinstance(stmt, ast.If):
            return self._if(stmt, ctx)
        if isinstance(stmt, ast.While):
            return self._while(stmt, ctx)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, ctx)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, ctx)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, ctx)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, ctx)

        n = self.node(stmt, type(stmt).__name__, stmt.lineno)
        if isinstance(stmt, ast.Raise):
            self.edge(n, Edge(ctx.exc, exc=True))
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None and _contains_call(stmt.value):
                self.edge(n, Edge(ctx.exc, exc=True))
            self.edge(n, Edge(ctx.ret))
        elif isinstance(stmt, ast.Break):
            self.edge(n, Edge(ctx.brk if ctx.brk is not None else ctx.nxt))
        elif isinstance(stmt, ast.Continue):
            self.edge(n, Edge(ctx.cont if ctx.cont is not None else ctx.nxt))
        else:
            if may_raise(stmt):
                self.edge(n, Edge(ctx.exc, exc=True))
            self.edge(n, Edge(ctx.nxt))
        return n

    def _if(self, stmt: ast.If, ctx: _Ctx) -> int:
        n = self.node(stmt, "If", stmt.lineno)
        if may_raise(stmt):
            self.edge(n, Edge(ctx.exc, exc=True))
        true_entry = self.chain(stmt.body, ctx)
        false_entry = self.chain(stmt.orelse, ctx)
        ref = _refinement(stmt.test)
        if ref is not None:
            var, none_when_true, _ = ref
            self.edge(n, Edge(true_entry, refine=(var, none_when_true)))
            self.edge(n, Edge(false_entry, refine=(var, not none_when_true)))
        else:
            self.edge(n, Edge(true_entry))
            self.edge(n, Edge(false_entry))
        return n

    def _while(self, stmt: ast.While, ctx: _Ctx) -> int:
        header = self.node(stmt, "While", stmt.lineno)
        if may_raise(stmt):
            self.edge(header, Edge(ctx.exc, exc=True))
        after = self.chain(stmt.orelse, ctx)
        body_entry = self.chain(
            stmt.body, replace(ctx, nxt=header, brk=ctx.nxt, cont=header)
        )
        ref = _refinement(stmt.test)
        if ref is not None:
            var, none_when_true, _ = ref
            self.edge(header, Edge(body_entry, refine=(var, none_when_true)))
            self.edge(header, Edge(after, refine=(var, not none_when_true)))
        else:
            self.edge(header, Edge(body_entry))
            if not _is_const_true(stmt.test):
                self.edge(header, Edge(after))
        return header

    def _for(self, stmt: ast.For | ast.AsyncFor, ctx: _Ctx) -> int:
        header = self.node(stmt, "For", stmt.lineno)
        if may_raise(stmt):
            self.edge(header, Edge(ctx.exc, exc=True))
        after = self.chain(stmt.orelse, ctx)
        body_entry = self.chain(
            stmt.body, replace(ctx, nxt=header, brk=ctx.nxt, cont=header)
        )
        self.edge(header, Edge(body_entry))
        self.edge(header, Edge(after))
        return header

    def _with(self, stmt: ast.With | ast.AsyncWith, ctx: _Ctx) -> int:
        n = self.node(stmt, "With", stmt.lineno)
        if may_raise(stmt):
            self.edge(n, Edge(ctx.exc, exc=True))
        body_entry = self.chain(stmt.body, ctx)
        self.edge(n, Edge(body_entry))
        return n

    def _match(self, stmt: ast.Match, ctx: _Ctx) -> int:
        n = self.node(stmt, "Match", stmt.lineno)
        if may_raise(stmt):
            self.edge(n, Edge(ctx.exc, exc=True))
        for case in stmt.cases:
            self.edge(n, Edge(self.chain(case.body, ctx)))
        self.edge(n, Edge(ctx.nxt))
        return n

    def _try(self, stmt: ast.Try, ctx: _Ctx) -> int:
        fin = stmt.finalbody

        def via_fin(target: int | None) -> int | None:
            # Each continuation kind gets its own copy of the finally
            # body; exceptions raised inside a finally escape outward.
            if target is None:
                return None
            if not fin:
                return target
            return self.chain(fin, replace(ctx, nxt=target))

        nxt_f = via_fin(ctx.nxt)
        exc_f = via_fin(ctx.exc)
        ret_f = via_fin(ctx.ret)
        brk_f = via_fin(ctx.brk)
        cont_f = via_fin(ctx.cont)
        assert nxt_f is not None and exc_f is not None and ret_f is not None
        inner = _Ctx(nxt=nxt_f, exc=exc_f, ret=ret_f, brk=brk_f, cont=cont_f)

        catch_all = False
        handler_entries: list[int] = []
        for handler in stmt.handlers:
            h = self.node(None, "except", handler.lineno)
            body_entry = self.chain(handler.body, inner)
            self.edge(h, Edge(body_entry))
            handler_entries.append(h)
            names = (
                [t for e in handler.type.elts if (t := _type_name(e)) is not None]
                if isinstance(handler.type, ast.Tuple)
                else [_type_name(handler.type)]
                if handler.type is not None
                else [None]
            )
            if any(n is None or n in CATCH_ALL_TYPES for n in names):
                catch_all = True

        if handler_entries:
            dispatch = self.node(None, "except-dispatch", stmt.lineno)
            for h in handler_entries:
                self.edge(dispatch, Edge(h))
            if not catch_all:
                self.edge(dispatch, Edge(exc_f, exc=True))
            body_exc = dispatch
        else:
            body_exc = exc_f

        orelse_entry = self.chain(stmt.orelse, inner)
        body_ctx = _Ctx(
            nxt=orelse_entry, exc=body_exc, ret=ret_f, brk=brk_f, cont=cont_f
        )
        return self.chain(stmt.body, body_ctx)


def _type_name(node: ast.expr | None) -> str | None:
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Lower one function body to a CFG (nested defs are opaque nodes)."""
    b = _Builder()
    cfg = b.cfg
    cfg.entry = b.node(None, "entry", fn.lineno)
    cfg.exit = b.node(None, "exit", getattr(fn.body[-1], "end_lineno", fn.lineno) or fn.lineno)
    cfg.exc_exit = b.node(None, "exc-exit", fn.lineno)
    ctx = _Ctx(nxt=cfg.exit, exc=cfg.exc_exit, ret=cfg.exit)
    first = b.chain(fn.body, ctx)
    b.edge(cfg.entry, Edge(first))
    return cfg
