"""A002 sim-purity.

The discrete-event figures (fig13 and friends) are only worth keeping if
they replay bit-for-bit from a seed. That dies the day wall-clock time,
thread scheduling, or the process-global RNG leaks into the simulated
world. This rule bans, in every module statically reachable from the sim
roots:

* any import or use of ``threading``;
* wall-clock / sleeping ``time`` functions (``time``, ``sleep``,
  ``monotonic``, ``perf_counter`` and their ``_ns`` variants);
* the module-level ``random`` functions (process-global, unseeded
  state). Constructing a seeded ``random.Random(seed)`` instance stays
  legal — that is exactly how deterministic workloads should draw
  randomness;
* real file I/O — the builtin ``open``, the ``os`` module (file
  descriptors, fsync, process state), and the ``pathlib``-style
  read/write attribute calls (``write_bytes``, ``read_text``, ...). The
  simulated world has a :class:`repro.sim.disk.DiskModel`; bytes that
  touch the real platter come back at wall-clock speed and in
  platform-dependent order, which is the same determinism leak as
  wall-clock time. The durable tier (:mod:`repro.persist`) is live-mode
  only and must never become import-reachable from a sim root;
* real networking — ``socket``, ``asyncio``, and ``selectors``. The
  simulated world has :class:`repro.sim.network.NetworkModel`; bytes that
  cross a real kernel socket arrive at wall-clock speed, in
  kernel-scheduler order, which is the same leak again. The socket
  transport (:mod:`repro.runtime.socket_transport`) and the asyncio
  gateway (:mod:`repro.gateway`) are live-mode only and must never
  become import-reachable from a sim root.

Roots are the sim tree and the sim/inproc transports: every module with
a ``sim`` path component (``repro.sim.*``, ``repro.runtime.sim``) plus
``repro.runtime.inproc``. Reachability follows the static import graph
restricted to the analyzed tree; imports under ``if TYPE_CHECKING:`` are
ignored (they never execute), while lazy function-level imports count —
they *do* execute, on the hot path no less.
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Iterator

from repro.analysis.core import (
    Finding,
    ModuleSet,
    SourceModule,
    is_type_checking_block,
)

RULE_ID = "A002"

#: Exact dotted names that are roots besides any module with a ``sim``
#: path component.
ROOT_MODULES = frozenset({"repro.runtime.inproc"})

BANNED_TIME = frozenset(
    {
        "time",
        "time_ns",
        "sleep",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
    }
)

#: ``random.Random`` (and the SystemRandom class) are fine; everything
#: else on the module is process-global state.
ALLOWED_RANDOM = frozenset({"Random", "SystemRandom"})

#: Pathlib-style file I/O attribute calls: distinctive enough to flag by
#: name on any receiver (``.open`` is deliberately absent — too generic).
PATH_IO_ATTRS = frozenset({"write_bytes", "write_text", "read_bytes", "read_text"})

#: Real-networking modules: kernel sockets and the event loops that wrap
#: them. Any import (top-level or lazy) or attribute use from sim-reachable
#: code is a determinism leak.
BANNED_NET_MODULES = frozenset({"socket", "asyncio", "selectors"})


def is_root(name: str) -> bool:
    return "sim" in name.split(".") or name in ROOT_MODULES


def _import_edges(module: SourceModule, modules: ModuleSet) -> set[str]:
    """Dotted names of analyzed modules this module imports at runtime.

    Edges go to the exact module named (``from repro.sim.engine import
    Event`` -> ``repro.sim.engine``; ``from repro.runtime import X`` ->
    ``repro.runtime`` and, when ``X`` is a submodule in the set,
    ``repro.runtime.X``). TYPE_CHECKING blocks are skipped.
    """
    type_checking_lines: set[int] = set()
    for node in ast.walk(module.tree):
        if is_type_checking_block(node):
            for sub in ast.walk(node):
                if hasattr(sub, "lineno"):
                    type_checking_lines.add(sub.lineno)
    edges: set[str] = set()

    def add(name: str) -> None:
        if name in modules.by_name:
            edges.add(name)

    for node in ast.walk(module.tree):
        if getattr(node, "lineno", None) in type_checking_lines:
            continue
        if isinstance(node, ast.Import):
            for alias in node.names:
                add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = module.name.split(".")
                # level 1 from a module = its package; each extra level
                # climbs one package higher.
                base = ".".join(base_parts[: -node.level])
                target = f"{base}.{node.module}" if node.module else base
            else:
                target = node.module or ""
            add(target)
            for alias in node.names:
                add(f"{target}.{alias.name}")
    return edges


def _banned_usages(module: SourceModule) -> list[tuple[int, int, str]]:
    """(line, col, description) for every banned construct in a module."""
    found: list[tuple[int, int, str]] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "threading" or alias.name.startswith("threading."):
                    found.append(
                        (node.lineno, node.col_offset, "import of `threading`")
                    )
                elif alias.name == "os" or alias.name.startswith("os."):
                    found.append(
                        (
                            node.lineno,
                            node.col_offset,
                            f"import of `{alias.name}` (real file I/O)",
                        )
                    )
                elif alias.name.split(".")[0] in BANNED_NET_MODULES:
                    found.append(
                        (
                            node.lineno,
                            node.col_offset,
                            f"import of `{alias.name}` (real networking)",
                        )
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "threading":
                found.append(
                    (node.lineno, node.col_offset, "import from `threading`")
                )
            elif (node.module or "").split(".")[0] in BANNED_NET_MODULES:
                for alias in node.names:
                    found.append(
                        (
                            node.lineno,
                            node.col_offset,
                            f"import of `{node.module}.{alias.name}`"
                            " (real networking)",
                        )
                    )
            elif node.module == "os" or (node.module or "").startswith("os."):
                for alias in node.names:
                    found.append(
                        (
                            node.lineno,
                            node.col_offset,
                            f"import of `{node.module}.{alias.name}` (real file I/O)",
                        )
                    )
            elif node.module == "time":
                for alias in node.names:
                    if alias.name in BANNED_TIME:
                        found.append(
                            (
                                node.lineno,
                                node.col_offset,
                                f"import of wall-clock `time.{alias.name}`",
                            )
                        )
            elif node.module == "random":
                for alias in node.names:
                    if alias.name not in ALLOWED_RANDOM:
                        found.append(
                            (
                                node.lineno,
                                node.col_offset,
                                f"import of process-global `random.{alias.name}`",
                            )
                        )
        elif isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            owner = node.value.id
            if owner == "time" and node.attr in BANNED_TIME:
                found.append(
                    (
                        node.lineno,
                        node.col_offset,
                        f"use of wall-clock `time.{node.attr}`",
                    )
                )
            elif owner == "random" and node.attr not in ALLOWED_RANDOM:
                found.append(
                    (
                        node.lineno,
                        node.col_offset,
                        f"use of process-global `random.{node.attr}`",
                    )
                )
            elif owner == "threading":
                found.append(
                    (
                        node.lineno,
                        node.col_offset,
                        f"use of `threading.{node.attr}`",
                    )
                )
            elif owner == "os":
                found.append(
                    (
                        node.lineno,
                        node.col_offset,
                        f"use of `os.{node.attr}` (real file I/O)",
                    )
                )
            elif owner in BANNED_NET_MODULES:
                found.append(
                    (
                        node.lineno,
                        node.col_offset,
                        f"use of `{owner}.{node.attr}` (real networking)",
                    )
                )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "open"
        ):
            found.append(
                (node.lineno, node.col_offset, "call of builtin `open` (real file I/O)")
            )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in PATH_IO_ATTRS
        ):
            found.append(
                (
                    node.lineno,
                    node.col_offset,
                    f"path-style file I/O `.{node.func.attr}(...)`",
                )
            )
    return found


def check(modules: ModuleSet) -> Iterator[Finding]:
    graph = {m.name: _import_edges(m, modules) for m in modules}
    roots = [m.name for m in modules if is_root(m.name)]

    # BFS from all roots at once, remembering one witness path per module.
    via: dict[str, str | None] = {}
    queue: deque[str] = deque()
    for root in roots:
        if root not in via:
            via[root] = None
            queue.append(root)
    while queue:
        name = queue.popleft()
        for dep in sorted(graph.get(name, ())):
            if dep not in via:
                via[dep] = name
                queue.append(dep)

    for name in sorted(via):
        module = modules.by_name[name]
        usages = _banned_usages(module)
        if not usages:
            continue
        chain: list[str] = [name]
        while (prev := via[chain[-1]]) is not None:
            chain.append(prev)
        origin = (
            "a sim root itself"
            if len(chain) == 1
            else "reachable from sim root via " + " <- ".join(chain)
        )
        for line, col, description in usages:
            yield Finding(
                path=str(module.path),
                line=line,
                col=col,
                rule=RULE_ID,
                message=f"{description} in deterministic sim code ({origin})",
            )
