"""A008: frames crossing a boundary must re-validate CRC before decode.

Bytes that arrive from another address space or from disk — a ring
``try_read``/``read``, a ``.seg`` file read, a raw file handle — may
have been torn, truncated, or corrupted in flight. DESIGN.md's boundary
discipline says the CRC is re-earned after *every* crossing; this rule
makes that mechanical: boundary reads taint their results, taint
propagates through slicing/wrapping, and a decode that skips
verification on tainted bytes is a finding.

Boundary sources (per function, lexical):

* ``<ring>.try_read()`` / ``<ring>.read()`` on a ring-typed receiver;
* ``path.read_bytes()``;
* ``fh.read(...)`` on a handle from a builtin ``open(...)``;
* ``*Reader.open(...)`` — re-reads the file, a fresh crossing.

Sinks on tainted data:

* ``.records()`` / ``.record_views()`` — decodes record headers with no
  verification of its own;
* ``to_chunk`` / ``chunks`` / ``chunk_at`` / ``iter_chunks`` /
  ``decode_chunk`` called with a **literal** ``verify=False``. The
  default is ``verify=True`` and ``verify=verify`` forwarding keeps the
  caller's contract, so only the explicit opt-out is flagged.

Sanitizers clear taint: calling an in-tree CRC-checking function (see
:func:`surface.collect_sanitizer_functions`) on the tainted name, or
``.verify_payload()`` / ``.verify()`` on the tainted object. Decoding
with the (default) ``verify=True`` *is* the sanctioned sanitizer — this
rule only bites when the fast path skips it.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

from repro.analysis.core import Finding, ModuleSet, SourceModule
from repro.analysis.surface import (
    VIEW_PROPAGATORS,
    collect_ring_names,
    collect_sanitizer_functions,
    collect_view_classes,
    terminal_name,
)

RULE_ID = "A008"

#: Decode entry points whose ``verify=False`` opt-out is a taint sink.
_DECODE_CALLS = frozenset(
    {"to_chunk", "chunks", "chunk_at", "iter_chunks", "decode_chunk"}
)

#: Always-unverified decoders: flagged on any tainted receiver.
_UNVERIFIED_DECODERS = frozenset({"records", "record_views"})

#: Method-style sanitizers on the tainted object itself.
_SANITIZER_METHODS = frozenset({"verify_payload", "verify"})


@dataclass(slots=True)
class _Taint:
    line: int
    source: str


class _FunctionChecker:
    def __init__(
        self,
        module: SourceModule,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        ring_names: frozenset[str],
        sanitizers: frozenset[str],
        view_classes: frozenset[str],
    ) -> None:
        self.module = module
        self.fn = fn
        self.ring_names = ring_names
        self.sanitizers = sanitizers
        self.view_classes = view_classes
        self.taint: dict[str, _Taint] = {}
        self.handles: set[str] = set()  # names bound to builtin open(...)
        self.findings: list[Finding] = []

    def flag(self, node: ast.AST, taint: _Taint, what: str) -> None:
        self.findings.append(
            Finding(
                path=str(self.module.path),
                line=node.lineno,
                col=node.col_offset,
                rule=RULE_ID,
                message=(
                    f"{what} on bytes that crossed a boundary ({taint.source}, "
                    f"line {taint.line}) without CRC re-validation — verify "
                    f"before decoding (verify_payload() / verify=True)"
                ),
            )
        )

    # -- classification ------------------------------------------------------

    def _boundary_source(self, call: ast.Call) -> str | None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        receiver = func.value
        if attr in ("try_read", "read") and terminal_name(receiver) in self.ring_names:
            return f"ring read `{terminal_name(receiver)}.{attr}()`"
        if attr == "read_bytes":
            return "file read `.read_bytes()`"
        if (
            attr == "read"
            and isinstance(receiver, ast.Name)
            and receiver.id in self.handles
        ):
            return f"file read `{receiver.id}.read()`"
        if attr == "open":
            name = terminal_name(receiver)
            if name is not None and name.endswith("Reader"):
                return f"segment file re-read `{name}.open(...)`"
        return None

    def taint_of(self, expr: ast.expr) -> _Taint | None:
        if isinstance(expr, ast.Name):
            return self.taint.get(expr.id)
        if isinstance(expr, ast.Subscript):
            return self.taint_of(expr.value)
        if isinstance(expr, ast.Starred):
            return self.taint_of(expr.value)
        if isinstance(expr, ast.IfExp):
            return self.taint_of(expr.body) or self.taint_of(expr.orelse)
        if isinstance(expr, ast.Attribute):
            # `x.frame`, `x.buf`: a window into a tainted object.
            return self.taint_of(expr.value)
        if isinstance(expr, ast.Call):
            source = self._boundary_source(expr)
            if source is not None:
                return _Taint(expr.lineno, source)
            callee = terminal_name(expr.func)
            if callee in ("memoryview", "bytes", "bytearray"):
                return next(
                    (t for a in expr.args if (t := self.taint_of(a)) is not None),
                    None,
                )
            if callee in self.view_classes:
                return next(
                    (t for a in expr.args if (t := self.taint_of(a)) is not None),
                    None,
                )
            if callee in VIEW_PROPAGATORS and isinstance(expr.func, ast.Attribute):
                return self.taint_of(expr.func.value)
            return None
        return None

    # -- call handling (sinks & sanitizers) ----------------------------------

    def _literal_verify_false(self, call: ast.Call) -> bool:
        return any(
            kw.arg == "verify"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is False
            for kw in call.keywords
        )

    def _clear(self, expr: ast.expr) -> None:
        """Sanitization clears the terminal name's taint."""
        if isinstance(expr, ast.Name):
            self.taint.pop(expr.id, None)
        elif isinstance(expr, (ast.Subscript, ast.Attribute, ast.Starred)):
            self._clear(expr.value)

    def visit_call(self, call: ast.Call) -> None:
        func = call.func
        callee = terminal_name(func)
        # The explicit opt-out sink wins over everything: a decoder that
        # *could* sanitize does not when called with verify=False.
        if callee in _DECODE_CALLS and self._literal_verify_false(call):
            taint = next(
                (
                    t
                    for e in [
                        *([func.value] if isinstance(func, ast.Attribute) else []),
                        *call.args,
                        *[kw.value for kw in call.keywords],
                    ]
                    if (t := self.taint_of(e)) is not None
                ),
                None,
            )
            if taint is not None:
                self.flag(call, taint, f"`{callee}(verify=False)` decode")
            return
        # Sanitizer function over a tainted argument: the call validates it.
        if callee in self.sanitizers:
            for arg in [*call.args, *[kw.value for kw in call.keywords]]:
                if self.taint_of(arg) is not None:
                    self._clear(arg)
            if isinstance(func, ast.Attribute):
                self._clear(func.value)
            return
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if func.attr in _SANITIZER_METHODS:
                self._clear(receiver)
                return
            if func.attr in _UNVERIFIED_DECODERS:
                taint = self.taint_of(receiver)
                if taint is not None:
                    self.flag(call, taint, f"`.{func.attr}()` decode")
                return

    # -- statement walk ------------------------------------------------------

    def _visit_calls(self, node: ast.AST) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self.visit_call(sub)

    def _bind(self, target: ast.expr, taint: _Taint | None) -> None:
        if isinstance(target, ast.Name):
            if taint is not None:
                self.taint[target.id] = taint
            else:
                self.taint.pop(target.id, None)
                self.handles.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, taint)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taint)

    def _bind_value(self, target: ast.expr, value: ast.expr) -> None:
        # Track builtin open() handles so `fh.read()` taints.
        if (
            isinstance(target, ast.Name)
            and isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "open"
        ):
            self.handles.add(target.id)
            self.taint.pop(target.id, None)
            return
        self._bind(target, self.taint_of(value))

    def walk(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self.stmt(stmt)

    def stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._visit_calls(stmt.value)
            for target in stmt.targets:
                self._bind_value(target, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._visit_calls(stmt.value)
            self._bind_value(stmt.target, stmt.value)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs get their own checker
        elif isinstance(stmt, ast.If):
            self._visit_calls(stmt.test)
            self.walk(stmt.body)
            self.walk(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._visit_calls(stmt.test)
            self.walk(stmt.body)
            self.walk(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_calls(stmt.iter)
            self._bind(stmt.target, self.taint_of(stmt.iter))
            self.walk(stmt.body)
            self.walk(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._visit_calls(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_value(item.optional_vars, item.context_expr)
            self.walk(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.walk(stmt.body)
            for handler in stmt.handlers:
                self.walk(handler.body)
            self.walk(stmt.orelse)
            self.walk(stmt.finalbody)
        elif isinstance(stmt, ast.Match):
            self._visit_calls(stmt.subject)
            for case in stmt.cases:
                self.walk(case.body)
        else:
            self._visit_calls(stmt)


def check(modules: ModuleSet) -> Iterator[Finding]:
    ring_names = frozenset(collect_ring_names(modules))
    sanitizers = frozenset(collect_sanitizer_functions(modules))
    view_classes = frozenset(collect_view_classes(modules))
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                checker = _FunctionChecker(
                    module, node, ring_names, sanitizers, view_classes
                )
                checker.walk(node.body)
                yield from checker.findings
