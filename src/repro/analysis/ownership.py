"""A006: borrowed views must not outlive their owner (view-escape).

A ``memoryview`` / ``*View`` object borrowed from a pooled buffer, ring
slot, segment positioned read, or fan-out cache entry aliases bytes it
does not own. Storing it somewhere that outlives the borrowing scope —
an instance field, a return value, a closure — silently decouples the
view from the owner's lifetime: the pool re-rents the buffer, the ring
overwrites the slot, the cache evicts the frame, and the view now reads
someone else's bytes.

Borrow sources are derived, not configured (see :mod:`surface`): calls
to functions annotated ``-> memoryview`` / ``-> *View``, ``*View`` class
construction, ``memoryview(...)``, view-typed ``@property`` access, and
reads of fields declared ``# borrows:``. Borrowing propagates through
slicing, ``cast``/``toreadonly``, tuple unpacking, and conditionals.

Three escape shapes are flagged:

* **field** — ``self.x = view`` (also ``self.x[k] = view`` and
  ``self.x.append(view)``) where ``x`` has no ``# borrows: <owner>``
  declaration at its ``__init__`` assignment;
* **return** — ``return view`` / ``yield view`` from a function whose
  return annotation is *not* view-like (an annotated view return is the
  documented hand-off of the borrow to the caller);
* **closure** — a nested ``def`` / ``lambda`` capturing a borrowed name
  (the closure can run after the owner reclaimed the bytes).

An escape on a specific line is sanctioned in place with a trailing
``# borrows: <owner>`` comment naming whose lifetime covers it, or by
materializing a copy (``bytes(view)``).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

from repro.analysis.core import Finding, ModuleSet, SourceModule, is_self_attr
from repro.analysis.surface import (
    VIEW_PROPAGATORS,
    borrow_fields,
    collect_view_classes,
    collect_view_functions,
    collect_view_properties,
    line_has_borrow_mark,
    terminal_name,
)

RULE_ID = "A006"

#: Container methods that store their argument (escape into the receiver).
_STORE_METHODS = frozenset({"append", "add", "insert", "extend", "setdefault", "put"})


@dataclass(frozen=True, slots=True)
class _Registry:
    view_functions: frozenset[str]
    view_properties: frozenset[str]
    view_classes: frozenset[str]


@dataclass(slots=True)
class _Borrow:
    line: int
    source: str


class _FunctionChecker:
    """Lexical borrow-tracking walk of one function body."""

    def __init__(
        self,
        module: SourceModule,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        declared: dict[str, tuple[str, int]],
        registry: _Registry,
    ) -> None:
        self.module = module
        self.fn = fn
        self.declared = declared
        self.registry = registry
        self.env: dict[str, _Borrow] = {}
        self.findings: list[Finding] = []
        self.returns_view = _fn_returns_view(fn)

    # -- borrow-source classification ---------------------------------------

    def borrow_of(self, expr: ast.expr) -> _Borrow | None:
        """Is this expression a borrowed view? (None = owned/unknown.)"""
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id)
        if isinstance(expr, ast.Subscript):
            return self.borrow_of(expr.value)
        if isinstance(expr, ast.Starred):
            return self.borrow_of(expr.value)
        if isinstance(expr, ast.IfExp):
            return self.borrow_of(expr.body) or self.borrow_of(expr.orelse)
        if isinstance(expr, ast.Attribute):
            attr = expr.attr
            if attr in self.registry.view_properties:
                return _Borrow(expr.lineno, f"view property `{attr}`")
            if is_self_attr(expr) and attr in self.declared:
                return _Borrow(expr.lineno, f"borrows-declared field `self.{attr}`")
            return None
        if isinstance(expr, ast.Call):
            callee = terminal_name(expr.func)
            if callee == "memoryview":
                return _Borrow(expr.lineno, "memoryview()")
            if callee in self.registry.view_classes:
                return _Borrow(expr.lineno, f"{callee}(...) construction")
            if callee in VIEW_PROPAGATORS and isinstance(expr.func, ast.Attribute):
                inner = self.borrow_of(expr.func.value)
                if inner is not None:
                    return inner
                return None
            if callee in self.registry.view_functions:
                return _Borrow(expr.lineno, f"call to view function `{callee}`")
            return None
        return None

    # -- escapes -------------------------------------------------------------

    def _marked(self, lineno: int) -> bool:
        return line_has_borrow_mark(self.module, lineno)

    def flag(self, lineno: int, col: int, message: str) -> None:
        self.findings.append(
            Finding(
                path=str(self.module.path),
                line=lineno,
                col=col,
                rule=RULE_ID,
                message=message,
            )
        )

    def _escape_field(self, target: ast.expr, borrow: _Borrow, lineno: int) -> None:
        attr = target.attr if isinstance(target, ast.Attribute) else "?"
        if attr in self.declared or self._marked(lineno):
            return
        self.flag(
            lineno,
            target.col_offset,
            (
                f"borrowed view (from {borrow.source}, line {borrow.line}) stored "
                f"into field `self.{attr}` with no lifetime contract — declare "
                f"`# borrows: <owner>` at the field's __init__ assignment or "
                f"copy with bytes()"
            ),
        )

    def _bind_targets(self, target: ast.expr, borrow: _Borrow | None, lineno: int) -> None:
        if isinstance(target, ast.Name):
            if borrow is not None:
                self.env[target.id] = borrow
            else:
                self.env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_targets(elt, borrow, lineno)
        elif isinstance(target, ast.Starred):
            self._bind_targets(target.value, borrow, lineno)
        elif isinstance(target, ast.Attribute):
            if borrow is not None and is_self_attr(target):
                self._escape_field(target, borrow, lineno)
        elif isinstance(target, ast.Subscript):
            # `self._data[a:b] = view` copies the *bytes* into the slice —
            # no reference survives. Only keyed stores (`self._entries[k]
            # = view`) keep the view object alive.
            if isinstance(target.slice, ast.Slice):
                return
            base = target.value
            if borrow is not None and is_self_attr(base):
                self._escape_field(base, borrow, lineno)

    # -- statement walk ------------------------------------------------------

    def walk(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self.stmt(stmt)

    def stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            borrow = self.borrow_of(stmt.value)
            for target in stmt.targets:
                self._bind_targets(target, borrow, stmt.lineno)
            self._check_closures(stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind_targets(stmt.target, self.borrow_of(stmt.value), stmt.lineno)
            self._check_closures(stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            pass  # += on a view is a TypeError long before a lifetime bug
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._check_return(stmt.value, stmt.lineno, "returned")
        elif isinstance(stmt, ast.Expr):
            value = stmt.value
            if isinstance(value, (ast.Yield, ast.YieldFrom)) and value.value is not None:
                self._check_return(value.value, stmt.lineno, "yielded")
            elif isinstance(value, ast.Call):
                self._check_store_call(value, stmt.lineno)
                self._check_closures(value)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._check_nested(stmt)
        elif isinstance(stmt, ast.If):
            self.walk(stmt.body)
            self.walk(stmt.orelse)
        elif isinstance(stmt, (ast.While,)):
            self.walk(stmt.body)
            self.walk(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_borrow = self.borrow_of(stmt.iter)
            self._bind_targets(stmt.target, iter_borrow, stmt.lineno)
            self.walk(stmt.body)
            self.walk(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._bind_targets(
                        item.optional_vars,
                        self.borrow_of(item.context_expr),
                        stmt.lineno,
                    )
            self.walk(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.walk(stmt.body)
            for handler in stmt.handlers:
                self.walk(handler.body)
            self.walk(stmt.orelse)
            self.walk(stmt.finalbody)
        elif isinstance(stmt, ast.Match):
            for case in stmt.cases:
                self.walk(case.body)

    def _check_return(self, value: ast.expr, lineno: int, verb: str) -> None:
        borrow = self.borrow_of(value)
        if isinstance(value, (ast.Tuple, ast.List)) and borrow is None:
            for elt in value.elts:
                borrow = self.borrow_of(elt)
                if borrow is not None:
                    break
        if borrow is None:
            return
        if self.returns_view or self._marked(lineno):
            return
        self.flag(
            lineno,
            value.col_offset,
            (
                f"borrowed view (from {borrow.source}, line {borrow.line}) "
                f"{verb} from `{self.fn.name}` whose return annotation does not "
                f"document a view — annotate the return type as the view type "
                f"or copy with bytes()"
            ),
        )

    def _check_store_call(self, call: ast.Call, lineno: int) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr not in _STORE_METHODS:
            return
        receiver = func.value
        borrow = next(
            (b for arg in call.args if (b := self.borrow_of(arg)) is not None), None
        )
        if borrow is None:
            return
        if is_self_attr(receiver):
            self._escape_field(receiver, borrow, lineno)
        elif isinstance(receiver, ast.Subscript) and is_self_attr(receiver.value):
            self._escape_field(receiver.value, borrow, lineno)

    def _check_closures(self, expr: ast.expr) -> None:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Lambda):
                self._check_capture(sub, sub.body, sub.args, sub.lineno)

    def _check_nested(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._check_capture(fn, fn, fn.args, fn.lineno)

    def _check_capture(
        self,
        scope: ast.AST,
        body: ast.AST,
        args: ast.arguments,
        lineno: int,
    ) -> None:
        if not self.env or self._marked(lineno):
            return
        bound = {
            a.arg
            for a in [
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else []),
            ]
        }
        for sub in ast.walk(body):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, (ast.Store,)):
                bound.add(sub.id)
        for sub in ast.walk(body):
            if (
                isinstance(sub, ast.Name)
                and isinstance(sub.ctx, ast.Load)
                and sub.id not in bound
                and sub.id in self.env
            ):
                borrow = self.env[sub.id]
                self.flag(
                    lineno,
                    getattr(scope, "col_offset", 0),
                    (
                        f"borrowed view `{sub.id}` (from {borrow.source}, line "
                        f"{borrow.line}) captured by a closure that can outlive "
                        f"the owner — pass a bytes() copy or mark the line "
                        f"`# borrows: <owner>`"
                    ),
                )
                break


def _fn_returns_view(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    from repro.analysis.surface import annotation_is_viewlike

    return annotation_is_viewlike(fn.returns)


def _iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.ClassDef | None, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """(enclosing class, function) pairs; nested defs are visited by the
    enclosing function's closure check, not re-analyzed with its env."""

    def visit(node: ast.AST, cls: ast.ClassDef | None) -> Iterator[
        tuple[ast.ClassDef | None, ast.FunctionDef | ast.AsyncFunctionDef]
    ]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from visit(child, child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield cls, child
                yield from visit(child, None)

    yield from visit(tree, None)


def check(modules: ModuleSet) -> Iterator[Finding]:
    registry = _Registry(
        view_functions=frozenset(collect_view_functions(modules)),
        view_properties=frozenset(collect_view_properties(modules)),
        view_classes=frozenset(collect_view_classes(modules)),
    )
    for module in modules:
        declared_by_class: dict[str, dict[str, tuple[str, int]]] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                declared_by_class[node.name] = borrow_fields(module, node)
        # Malformed declarations: `# borrows:` with no owner token.
        for fields in declared_by_class.values():
            for attr, (owner, lineno) in fields.items():
                if not owner:
                    yield Finding(
                        path=str(module.path),
                        line=lineno,
                        col=0,
                        rule=RULE_ID,
                        message=(
                            f"`# borrows:` on field `{attr}` names no owner — "
                            f"write `# borrows: <owner>`"
                        ),
                    )
        for cls, fn in _iter_functions(module.tree):
            declared = declared_by_class.get(cls.name, {}) if cls else {}
            checker = _FunctionChecker(module, fn, declared, registry)
            checker.walk(fn.body)
            yield from checker.findings
