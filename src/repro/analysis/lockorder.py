"""A005 lock-order.

Builds the static lock-acquisition graph over the whole analyzed tree
and flags cycles — the classic two-thread deadlock shape — plus
re-acquisition of a non-reentrant lock.

A lock is any ``self.<attr>`` used as a ``with`` context manager; the
node is class-qualified (``LiveBackupService._lock``), so identical
attribute names on different classes stay distinct. Edges come from

* lexical nesting: ``with self.a:`` containing ``with self.b:``;
* one level of interprocedural reasoning: a call made while holding a
  lock contributes every lock the callee's transitive summary can
  acquire. ``self.m(...)`` resolves within the class (and its in-tree
  ancestors); ``anything.m(...)`` resolves by method name to every class
  in the tree that defines ``m`` — a deliberate over-approximation: a
  false edge costs a review, a missed edge costs a deadlock. The one
  carve-out is :data:`UNRESOLVED_NAMES`: container/queue/event verbs
  (``append``, ``get``, ``put``, ...) are resolved only on ``self`` —
  by-name resolution would bind ``self._samples.append(...)`` to every
  project class that happens to define ``append``, and the resulting
  phantom cycles would drown the real ones.

Raw ``.acquire()``/``.release()`` pairs on *dynamic* lock tables (the
per-sub-partition locks in the threaded broker) are out of scope; those
must be ordered by sorted key, which A005 cannot prove but the threaded
broker documents and tests.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.analysis.core import Finding, ModuleSet, self_attr_name

RULE_ID = "A005"

LockNode = tuple[str, str]  # (class name, lock attribute)

#: Method names shadowed by the builtin containers / queues / events /
#: file objects: never resolved by bare name across classes (still
#: resolved on self). ``flush`` joined the list with the durable tier:
#: ``self._fh.flush()`` on a file handle would otherwise bind to every
#: project class with a ``flush`` method (e.g. the producer client),
#: manufacturing lock chains through the disk writers. ``open`` joined
#: with the gateway: ``SegmentFileReader.open(...)`` in the spill path
#: would otherwise bind to the async producer/consumer ``open``
#: constructors, manufacturing a chain from the backup flush path into
#: the gateway client.
UNRESOLVED_NAMES = frozenset(
    {
        "acquire",
        "add",
        "append",
        "appendleft",
        "clear",
        "close",
        "copy",
        "count",
        "discard",
        "extend",
        "flush",
        "get",
        "get_nowait",
        "index",
        "insert",
        "is_set",
        "items",
        "join",
        "keys",
        "notify",
        "notify_all",
        "open",
        "pop",
        "popitem",
        "popleft",
        "put",
        "put_nowait",
        "release",
        "remove",
        "reverse",
        "set",
        "setdefault",
        "sort",
        "start",
        "update",
        "values",
        "wait",
    }
)


@dataclass(slots=True)
class _MethodInfo:
    cls: str
    name: str
    path: str
    line: int
    #: Locks taken via ``with self.<attr>`` anywhere in the method.
    direct_locks: set[LockNode] = field(default_factory=set)
    #: (held lock, nested lock) pairs from lexical nesting.
    nested: set[tuple[LockNode, LockNode]] = field(default_factory=set)
    #: (held lock or None, called method name, self_call) tuples.
    calls: set[tuple[LockNode | None, str, bool]] = field(default_factory=set)
    #: Locks created as threading.RLock() in __init__ (reentrant).
    reentrant: set[str] = field(default_factory=set)


class _LockVisitor(ast.NodeVisitor):
    def __init__(self, info: _MethodInfo):
        self.info = info
        self.held: list[LockNode] = []

    def visit_With(self, node: ast.With) -> None:
        acquired: list[LockNode] = []
        for item in node.items:
            attr = self_attr_name(item.context_expr)
            if attr is not None:
                lock = (self.info.cls, attr)
                self.info.direct_locks.add(lock)
                for holder in self.held + acquired:
                    self.info.nested.add((holder, lock))
                acquired.append(lock)
        self.held.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        del self.held[len(self.held) - len(acquired) :]

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        outer, self.held = self.held, []
        for stmt in node.body:
            self.visit(stmt)
        self.held = outer

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            self_call = isinstance(func.value, ast.Name) and func.value.id == "self"
            holder = self.held[-1] if self.held else None
            self.info.calls.add((holder, func.attr, self_call))
        self.generic_visit(node)


def _collect(modules: ModuleSet) -> tuple[list[_MethodInfo], dict[str, list[str]]]:
    methods: list[_MethodInfo] = []
    bases: dict[str, list[str]] = {}
    for module in modules:
        for cls in [
            n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)
        ]:
            bases[cls.name] = [
                b.id if isinstance(b, ast.Name) else getattr(b, "attr", "")
                for b in cls.bases
            ]
            reentrant: set[str] = set()
            for node in ast.walk(cls):
                if (
                    isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr == "RLock"
                ):
                    for target in node.targets:
                        attr = self_attr_name(target)
                        if attr is not None:
                            reentrant.add(attr)
            for fn in cls.body:
                if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                info = _MethodInfo(
                    cls=cls.name,
                    name=fn.name,
                    path=str(module.path),
                    line=fn.lineno,
                    reentrant=reentrant,
                )
                visitor = _LockVisitor(info)
                for stmt in fn.body:
                    visitor.visit(stmt)
                methods.append(info)
    return methods, bases


def check(modules: ModuleSet) -> Iterator[Finding]:
    methods, bases = _collect(modules)
    by_name: dict[str, list[_MethodInfo]] = {}
    by_cls_name: dict[tuple[str, str], _MethodInfo] = {}
    for info in methods:
        by_name.setdefault(info.name, []).append(info)
        by_cls_name[(info.cls, info.name)] = info

    def ancestors(cls: str, seen: set[str]) -> Iterator[str]:
        for base in bases.get(cls, ()):
            if base and base not in seen:
                seen.add(base)
                yield base
                yield from ancestors(base, seen)

    def resolve(caller_cls: str, name: str, self_call: bool) -> list[_MethodInfo]:
        if self_call:
            hit = by_cls_name.get((caller_cls, name))
            if hit is not None:
                return [hit]
            for ancestor in ancestors(caller_cls, {caller_cls}):
                hit = by_cls_name.get((ancestor, name))
                if hit is not None:
                    return [hit]
            return []
        if name in UNRESOLVED_NAMES:
            return []
        return by_name.get(name, [])

    # Transitive summary: every lock a method can end up holding.
    summary: dict[tuple[str, str], set[LockNode]] = {
        (i.cls, i.name): set(i.direct_locks) for i in methods
    }
    changed = True
    while changed:
        changed = False
        for info in methods:
            mine = summary[(info.cls, info.name)]
            before = len(mine)
            for _, callee, self_call in info.calls:
                for target in resolve(info.cls, callee, self_call):
                    mine |= summary[(target.cls, target.name)]
            if len(mine) != before:
                changed = True

    # Edges, each with one witness site for the report.
    edges: dict[tuple[LockNode, LockNode], tuple[str, int, str]] = {}
    for info in methods:
        where = f"{info.cls}.{info.name}"
        for held, nested in info.nested:
            edges.setdefault((held, nested), (info.path, info.line, where))
        for held, callee, self_call in info.calls:
            if held is None:
                continue
            for target in resolve(info.cls, callee, self_call):
                for lock in summary[(target.cls, target.name)]:
                    edges.setdefault(
                        (held, lock),
                        (
                            info.path,
                            info.line,
                            f"{where} -> {target.cls}.{target.name}",
                        ),
                    )

    graph: dict[LockNode, set[LockNode]] = {}
    for (src, dst), _ in edges.items():
        graph.setdefault(src, set()).add(dst)

    def fmt(node: LockNode) -> str:
        return f"{node[0]}.{node[1]}"

    # Self-edges: re-acquiring a non-reentrant lock deadlocks immediately.
    reported: set[tuple[LockNode, ...]] = set()
    for (src, dst), (path, line, where) in sorted(edges.items()):
        if src == dst:
            holder_cls, attr = src
            reentrant = any(
                attr in i.reentrant for i in methods if i.cls == holder_cls
            )
            if not reentrant:
                yield Finding(
                    path=path,
                    line=line,
                    col=0,
                    rule=RULE_ID,
                    message=(
                        f"re-acquisition of non-reentrant lock {fmt(src)} "
                        f"while already held (in {where})"
                    ),
                )
                reported.add((src,))

    # Cycles via DFS over the lock graph.
    def find_cycle(start: LockNode) -> list[LockNode] | None:
        stack: list[tuple[LockNode, list[LockNode]]] = [(start, [start])]
        while stack:
            node, trail = stack.pop()
            for succ in sorted(graph.get(node, ())):
                if succ == start and len(trail) > 1:
                    return trail
                if succ not in trail:
                    stack.append((succ, trail + [succ]))
        return None

    for start in sorted(graph):
        cycle = find_cycle(start)
        if cycle is None:
            continue
        canon = tuple(sorted(cycle))
        if canon in reported:
            continue
        reported.add(canon)
        first_edge = (cycle[0], cycle[1 % len(cycle)])
        path, line, where = edges.get(first_edge, ("", 0, "?"))
        chain = " -> ".join(fmt(n) for n in [*cycle, cycle[0]])
        yield Finding(
            path=path,
            line=line,
            col=0,
            rule=RULE_ID,
            message=(
                f"lock acquisition cycle {chain} (witness: {where}); "
                f"impose a global order or merge the locks"
            ),
        )
